"""Disk characteristics: the hardware parameters of the HDD cost model.

Defaults are the paper's Bonnie++ measurements of its testbed (Section 4):
a read bandwidth of 90.07 MB/s, a write bandwidth of 64.37 MB/s and an average
seek time of 4.84 ms, combined with the experiment defaults of an 8 KB block
and an 8 MB I/O buffer (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Number of bytes per kilobyte/megabyte, used consistently across the library.
KB = 1024
MB = 1024 * 1024


class DiskParameterError(ValueError):
    """Raised when disk characteristics are physically meaningless."""


@dataclass(frozen=True)
class DiskCharacteristics:
    """Hardware/software parameters of the disk I/O cost model.

    Attributes
    ----------
    block_size:
        Size of one disk block in bytes (default 8 KB).
    buffer_size:
        Size of the database I/O buffer in bytes (default 8 MB).  The buffer
        is shared among the vertical partitions a query reads, in proportion
        to their row sizes.
    read_bandwidth:
        Sequential read bandwidth in bytes per second (default 90.07 MB/s).
    write_bandwidth:
        Sequential write bandwidth in bytes per second (default 64.37 MB/s),
        used by the layout-creation-time model.
    seek_time:
        Average seek time in seconds (default 4.84 ms).
    """

    block_size: int = 8 * KB
    buffer_size: int = 8 * MB
    read_bandwidth: float = 90.07 * MB
    write_bandwidth: float = 64.37 * MB
    seek_time: float = 4.84e-3

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise DiskParameterError("block_size must be positive")
        if self.buffer_size <= 0:
            raise DiskParameterError("buffer_size must be positive")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise DiskParameterError("bandwidths must be positive")
        if self.seek_time < 0:
            raise DiskParameterError("seek_time must be non-negative")

    # -- convenient copies ----------------------------------------------------

    def with_buffer_size(self, buffer_size: int) -> "DiskCharacteristics":
        """Copy with a different buffer size (Figures 8, 9, 13)."""
        return replace(self, buffer_size=int(buffer_size))

    def with_block_size(self, block_size: int) -> "DiskCharacteristics":
        """Copy with a different block size (Figures 11a, 12a)."""
        return replace(self, block_size=int(block_size))

    def with_read_bandwidth(self, read_bandwidth: float) -> "DiskCharacteristics":
        """Copy with a different read bandwidth (Figures 11b, 12b)."""
        return replace(self, read_bandwidth=float(read_bandwidth))

    def with_seek_time(self, seek_time: float) -> "DiskCharacteristics":
        """Copy with a different seek time (Figures 11c, 12c)."""
        return replace(self, seek_time=float(seek_time))

    def describe(self) -> str:
        """One-line summary of the parameters."""
        return (
            f"block={self.block_size / KB:g}KB buffer={self.buffer_size / MB:g}MB "
            f"read={self.read_bandwidth / MB:.2f}MB/s "
            f"write={self.write_bandwidth / MB:.2f}MB/s "
            f"seek={self.seek_time * 1e3:.2f}ms"
        )


#: The paper's measured testbed.
DEFAULT_DISK = DiskCharacteristics()

#: A PostgreSQL-like configuration (the paper notes PostgreSQL defaults to an
#: 8 MB buffer); identical to the testbed default but kept as a named constant
#: for readability in the examples.
POSTGRES_LIKE_DISK = DiskCharacteristics(buffer_size=8 * MB)
