"""HYRISE-style main-memory (cache miss) cost model.

Table 6 of the paper re-evaluates the layouts under a main-memory cost model:
instead of seeks and disk bandwidth, the dominant cost is the number of CPU
cache misses incurred while scanning the referenced column groups.  The key
property of such a model is that *seek-like* costs (switching between
partitions) are tiny compared to the cost of streaming data, so grouping
columns can no longer amortise random I/O — it can only force queries to read
unnecessary bytes.  Consequently nothing beats a pure column layout on data
access cost, which is exactly the paper's finding (0.00% improvement for the
HillClimb-class algorithms, negative for Navathe/O2P).

The model charges, per referenced partition:

* one cache miss per cache line occupied by the partition's rows (full group
  width — a projection still streams the whole group through the cache), and
* a fixed per-partition access penalty (TLB / pointer chasing), standing in
  for the partition-switch overhead, orders of magnitude cheaper than a disk
  seek.

Costs are reported in seconds, derived from a nominal cache-miss latency, so
they can be compared and normalised exactly like the HDD model's outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.cost.base import CostModel
from repro.workload.query import ResolvedQuery

if TYPE_CHECKING:  # imported for type hints only, avoids a circular import
    from repro.core.partitioning import Partition, Partitioning


class MemoryParameterError(ValueError):
    """Raised when main-memory characteristics are physically meaningless."""


@dataclass(frozen=True)
class MainMemoryCharacteristics:
    """Parameters of the cache-miss model.

    Attributes
    ----------
    cache_line_size:
        Bytes per cache line (64 B on the paper's Xeon testbed).
    cache_miss_latency:
        Seconds per last-level cache miss (~100 ns).
    partition_access_penalty:
        Fixed cost of touching one additional column group per query
        (seconds); stands in for per-partition pointer/TLB overhead and is
        deliberately tiny relative to streaming costs.
    """

    cache_line_size: int = 64
    cache_miss_latency: float = 100e-9
    partition_access_penalty: float = 1e-6

    def __post_init__(self) -> None:
        if self.cache_line_size <= 0:
            raise MemoryParameterError("cache_line_size must be positive")
        if self.cache_miss_latency <= 0:
            raise MemoryParameterError("cache_miss_latency must be positive")
        if self.partition_access_penalty < 0:
            raise MemoryParameterError("partition_access_penalty must be non-negative")

    def with_cache_line_size(self, cache_line_size: int) -> "MainMemoryCharacteristics":
        """Copy with a different cache-line size."""
        return replace(self, cache_line_size=int(cache_line_size))


#: Sensible defaults for the paper's testbed (64 B lines, ~100 ns miss).
DEFAULT_MEMORY = MainMemoryCharacteristics()


class MainMemoryCostModel(CostModel):
    """Cache-miss based cost model for main-memory systems (HYRISE setting)."""

    name = "main-memory"
    supports_fast_costing = True

    def __init__(self, memory: MainMemoryCharacteristics = DEFAULT_MEMORY) -> None:
        self.memory = memory

    def _misses_for_row_size(self, row_count: int, row_size: int) -> int:
        """Cache misses of streaming a group of ``row_size``-byte rows."""
        line = self.memory.cache_line_size
        if row_size <= line:
            return math.ceil(row_count * row_size / line)
        return row_count * math.ceil(row_size / line)

    def cache_misses(self, partition: Partition, partitioning: Partitioning) -> int:
        """Cache misses incurred by streaming one full column group.

        Rows of a group are stored contiguously, so the group occupies
        ``ceil(N * s_i / L)`` cache lines when the row width is at most a
        line; wider rows touch ``ceil(s_i / L)`` lines per row because
        consecutive projections of a row no longer share lines.
        """
        schema = partitioning.schema
        return self._misses_for_row_size(schema.row_count, partition.row_size(schema))

    # -- fast-costing hooks (CostEvaluator) -----------------------------------

    def group_read_profile(self, schema, row_size: int):
        """Cache-miss count of the group — the only group-local quantity used."""
        return self._misses_for_row_size(schema.row_count, row_size)

    def co_read_set_cost(self, schema, profiles) -> float:
        """Streaming + access-penalty cost of a co-read set from cached misses.

        The single summation shared by the naive :meth:`query_cost` and the
        fast evaluator; per-group arithmetic lives in :meth:`_read_seconds`.
        """
        total = 0.0
        for misses in profiles:
            total += self._read_seconds(misses)
        return total

    def _read_seconds(self, misses: int) -> float:
        """Streaming cost of one group plus the per-group access penalty."""
        return (
            misses * self.memory.cache_miss_latency
            + self.memory.partition_access_penalty
        )

    def partition_read_cost(
        self,
        partition: Partition,
        co_read: Sequence[Partition],
        partitioning: Partitioning,
    ) -> float:
        """Streaming cost of one group plus the per-group access penalty."""
        return self._read_seconds(self.cache_misses(partition, partitioning))

    def query_cost(self, query: ResolvedQuery, partitioning: Partitioning) -> float:
        """Sum of per-group costs over the referenced groups.

        Kept as per-partition calls (the pre-kernel reference the cost-kernel
        microbenchmark compares against); the arithmetic is the same
        :meth:`_read_seconds` helper :meth:`co_read_set_cost` uses, so the
        two paths cannot diverge in value.
        """
        referenced = partitioning.referenced_partitions(query)
        if not referenced:
            return 0.0
        return sum(
            self.partition_read_cost(partition, referenced, partitioning)
            for partition in referenced
        )

    def with_memory(self, memory: MainMemoryCharacteristics) -> "MainMemoryCostModel":
        """A new model over different memory characteristics."""
        return MainMemoryCostModel(memory)

    def describe(self) -> str:
        # Every behavioural knob must appear here: the cost-evaluator's shared
        # cache pool and the grid result cache key models by this string, so an
        # omitted parameter would let differently-behaving models share entries.
        return (
            f"main-memory(line={self.memory.cache_line_size}B, "
            f"miss={self.memory.cache_miss_latency * 1e9:g}ns, "
            f"penalty={self.memory.partition_access_penalty * 1e9:g}ns)"
        )
