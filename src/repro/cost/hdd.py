"""The paper's disk (HDD) I/O cost model.

Section 4 of the paper defines the cost of a query Q over a partitioning as
follows.  Let ``P_Q`` be the set of partitions containing at least one
attribute referenced by Q (all of them must be read in full), ``s_i`` the row
size of partition i, ``S`` the sum of the row sizes of the referenced
partitions, ``Buff`` the I/O buffer size, ``b`` the block size, ``N`` the row
count, ``t_s`` the average seek time and ``BW`` the read bandwidth:

.. math::

    buff_i   &= \\lfloor Buff \\cdot s_i / S \\rfloor            \\\\
    bblk_i   &= \\lfloor buff_i / b \\rfloor                      \\\\
    blocks_i &= \\lceil N / \\lfloor b / s_i \\rfloor \\rceil      \\\\
    seek_i   &= t_s \\cdot \\lceil blocks_i / bblk_i \\rceil       \\\\
    scan_i   &= blocks_i \\cdot b / BW                            \\\\
    cost(Q)  &= \\sum_{i \\in P_Q} (seek_i + scan_i)

The buffer is shared among the co-read partitions proportionally to their row
sizes because tuples are reconstructed tuple-by-tuple, so every referenced
partition must stream through the buffer simultaneously.  Narrow partitions
therefore pay many more seeks when read together with other partitions — the
"random I/O" effect that makes column layouts lose against wider groups for
small buffers.

Two guard rails make the formulas total:

* ``rows_per_block = floor(b / s_i)`` is clamped to at least 1 (a row wider
  than a block simply spans blocks),
* ``bblk_i`` is clamped to at least 1 (a partition always gets at least one
  block of buffer; otherwise no progress could ever be made).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from repro.cost.base import CostModel
from repro.cost.disk import DEFAULT_DISK, DiskCharacteristics
from repro.workload.query import ResolvedQuery

if TYPE_CHECKING:  # imported for type hints only, avoids a circular import
    from repro.core.partitioning import Partition, Partitioning


class HDDCostModel(CostModel):
    """Buffered seek + scan cost model for disk-based row stores.

    ``buffer_sharing`` selects how the I/O buffer is divided among the
    partitions a query co-reads: ``"proportional"`` (the paper's model —
    shares proportional to row sizes) or ``"equal"`` (a naive even split,
    kept for the ablation benchmark that quantifies how much this design
    choice matters).
    """

    name = "hdd"
    supports_fast_costing = True

    #: Valid buffer sharing policies.
    BUFFER_SHARING_POLICIES = ("proportional", "equal")

    def __init__(
        self,
        disk: DiskCharacteristics = DEFAULT_DISK,
        buffer_sharing: str = "proportional",
    ) -> None:
        if buffer_sharing not in self.BUFFER_SHARING_POLICIES:
            raise ValueError(
                f"buffer_sharing must be one of {self.BUFFER_SHARING_POLICIES}, "
                f"got {buffer_sharing!r}"
            )
        self.disk = disk
        self.buffer_sharing = buffer_sharing

    # -- building blocks ------------------------------------------------------

    def _blocks_for_row_size(self, row_count: int, row_size: int) -> int:
        """Blocks occupied by a column-group file of ``row_size``-byte rows."""
        rows_per_block = max(1, self.disk.block_size // row_size)
        return math.ceil(row_count / rows_per_block)

    def blocks_on_disk(self, partition: Partition, partitioning: Partitioning) -> int:
        """Number of disk blocks the column-group file of ``partition`` occupies."""
        schema = partitioning.schema
        return self._blocks_for_row_size(schema.row_count, partition.row_size(schema))

    def _buffer_share_bytes(
        self, row_size: int, total_row_size: int, co_read_count: int
    ) -> int:
        """Buffer bytes for one group of a co-read set (single formula copy)."""
        if self.buffer_sharing == "equal":
            return self.disk.buffer_size // max(1, co_read_count)
        if total_row_size <= 0:
            return self.disk.buffer_size
        return int(self.disk.buffer_size * row_size / total_row_size)

    def buffer_share(
        self, partition: Partition, co_read: Sequence[Partition], partitioning: Partitioning
    ) -> int:
        """Bytes of I/O buffer allocated to ``partition`` within a co-read set."""
        schema = partitioning.schema
        return self._buffer_share_bytes(
            partition.row_size(schema),
            sum(p.row_size(schema) for p in co_read),
            len(co_read),
        )

    def _seek_seconds(self, blocks: int, buffer_bytes: int) -> float:
        """Seek time for streaming ``blocks`` through ``buffer_bytes`` of buffer."""
        buffer_blocks = max(1, buffer_bytes // self.disk.block_size)
        refills = math.ceil(blocks / buffer_blocks)
        return self.disk.seek_time * refills

    def seek_cost(
        self, partition: Partition, co_read: Sequence[Partition], partitioning: Partitioning
    ) -> float:
        """Seek component of reading ``partition`` alongside ``co_read``."""
        return self._seek_seconds(
            self.blocks_on_disk(partition, partitioning),
            self.buffer_share(partition, co_read, partitioning),
        )

    def _scan_seconds(self, blocks: int) -> float:
        """Sequential transfer time for ``blocks`` full blocks."""
        return blocks * self.disk.block_size / self.disk.read_bandwidth

    def scan_cost(self, partition: Partition, partitioning: Partitioning) -> float:
        """Sequential scan component of reading ``partition`` in full."""
        return self._scan_seconds(self.blocks_on_disk(partition, partitioning))

    # -- CostModel interface --------------------------------------------------

    def partition_read_cost(
        self,
        partition: Partition,
        co_read: Sequence[Partition],
        partitioning: Partitioning,
    ) -> float:
        """Seek + scan cost of one partition within a co-read set."""
        return self.seek_cost(partition, co_read, partitioning) + self.scan_cost(
            partition, partitioning
        )

    def query_cost(self, query: ResolvedQuery, partitioning: Partitioning) -> float:
        """Total I/O cost of one query: sum over all referenced partitions.

        Deliberately orchestrated the unoptimized way (per-partition calls
        that re-derive shares and block counts) so it stays an authentic
        pre-kernel reference for the cost-kernel microbenchmark; the
        *arithmetic* is the same ``_buffer_share_bytes`` / ``_seek_seconds``
        / ``_scan_seconds`` helpers :meth:`co_read_set_cost` uses, so the two
        paths cannot diverge in value.
        """
        referenced = partitioning.referenced_partitions(query)
        if not referenced:
            return 0.0
        return sum(
            self.partition_read_cost(partition, referenced, partitioning)
            for partition in referenced
        )

    # -- fast-costing hooks (CostEvaluator) -----------------------------------

    def group_read_profile(self, schema, row_size: int):
        """(row_size, blocks_on_disk) — everything group-local the formulas need."""
        return (row_size, self._blocks_for_row_size(schema.row_count, row_size))

    def co_read_set_cost(self, schema, profiles) -> float:
        """Seek + scan cost of reading a co-read set, from cached group profiles.

        This is the single summation the naive :meth:`query_cost` and the fast
        evaluator both go through; the per-group arithmetic is the same
        :meth:`_buffer_share_bytes`/:meth:`_seek_seconds`/:meth:`_scan_seconds`
        helpers :meth:`partition_read_cost` uses, so the two paths cannot
        diverge.
        """
        total_row_size = sum(row_size for row_size, _ in profiles)
        count = len(profiles)
        total = 0.0
        for row_size, blocks in profiles:
            buffer_bytes = self._buffer_share_bytes(row_size, total_row_size, count)
            total += self._seek_seconds(blocks, buffer_bytes) + self._scan_seconds(blocks)
        return total

    # -- introspection helpers used by metrics --------------------------------

    def bytes_read(self, query: ResolvedQuery, partitioning: Partitioning) -> int:
        """Bytes physically read for ``query`` (whole referenced partitions)."""
        referenced = partitioning.referenced_partitions(query)
        return sum(
            self.blocks_on_disk(partition, partitioning) * self.disk.block_size
            for partition in referenced
        )

    def bytes_needed(self, query: ResolvedQuery, partitioning: Partitioning) -> int:
        """Bytes the query actually needs (referenced attributes only)."""
        schema = partitioning.schema
        needed_width = sum(schema.width_of(index) for index in query.attribute_indices)
        return needed_width * schema.row_count

    def with_disk(self, disk: DiskCharacteristics) -> "HDDCostModel":
        """A new model over different disk characteristics."""
        return HDDCostModel(disk, buffer_sharing=self.buffer_sharing)

    def describe(self) -> str:
        # Every behavioural knob must appear here: the cost-evaluator's shared
        # cache pool and the grid result cache key models by this string, so an
        # omitted parameter would let differently-behaving models share entries.
        sharing = "" if self.buffer_sharing == "proportional" else f" sharing={self.buffer_sharing}"
        return f"hdd({self.disk.describe()}{sharing})"
