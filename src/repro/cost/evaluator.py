"""Bitmask cost-evaluation kernel: memoized, delta-aware workload costing.

The partitioning algorithms spend almost all of their time asking one
question — *what would the workload cost be under this candidate layout?* —
thousands of times per run.  Answered naively, every candidate allocates fresh
:class:`~repro.core.partitioning.Partition` / ``Partitioning`` objects,
re-sorts the groups, re-derives row sizes and block counts, and rescans all
partitions per query.  :class:`CostEvaluator` removes that overhead without
changing a single cost value:

* **Column groups are integer bitmasks** (bit ``i`` = attribute ``i``), so
  intersection tests, merges and layout signatures are single machine-word
  operations instead of frozenset algebra.
* **Everything layout-independent or group-local is memoized**: each query's
  attribute mask (precomputed on
  :class:`~repro.workload.query.ResolvedQuery`), each group's
  :meth:`~repro.cost.base.CostModel.group_read_profile` (row size, block
  count, cache misses — keyed by the group bitmask, valid across *all*
  layouts of a schema), and each *(co-read signature → query cost)* pair.
  A query's cost depends only on the ordered set of groups it must co-read,
  so layouts that differ in irrelevant groups share cache entries.
* **Merges are costed as deltas**: :meth:`evaluate_merge` (or a reusable
  :meth:`bind` + :meth:`BoundLayout.merge_cost`) re-derives the co-read
  signature only for the queries that actually touch one of the merged
  groups; every other query reuses its cached cost unchanged.

Exactness invariants
--------------------

The evaluator is exact, not approximate — its results are bit-identical to
``cost_model.workload_cost`` on the equivalent ``Partitioning`` because:

1. groups are always iterated in the canonical ``Partitioning`` order
   (ascending tuple of attribute indices), so floating-point sums accumulate
   in the same order,
2. both paths run the *same* formulas: the models keep the per-group
   arithmetic in single private helpers that the naive ``query_cost`` path
   and the :meth:`~repro.cost.base.CostModel.co_read_set_cost` hook both
   call, so the models remain the single source of truth and the two paths
   cannot diverge in value — only in how much redundant orchestration they
   perform,
3. cached values are reused only where the naive path would recompute the
   same expression from the same inputs (schema and group widths are
   immutable for the evaluator's lifetime).

Models that do not implement the fast hooks (``supports_fast_costing`` is
False), and callers that pass ``naive=True`` (the benchmark's comparison
flag), fall back to building a throwaway ``Partitioning`` per candidate and
calling ``workload_cost`` — the pre-kernel behaviour.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.partitioning import (
    Partition,
    Partitioning,
    indices_of_mask,
    mask_of,
    merge_group_pair,
)
from repro.cost.base import CostModel
from repro.obs.metrics import counter as _obs_counter
from repro.workload.schema import TableSchema
from repro.workload.workload import Workload

# Memo-effectiveness counters (docs/OBSERVABILITY.md).  Module-level bound
# instruments incremented by bare attribute ops: `_signature_cost` sits on the
# hottest path in the repository and must not pay a registry lookup or method
# call per candidate layout.
_MEMO_HITS = _obs_counter("cost.evaluator.memo.hits")
_MEMO_MISSES = _obs_counter("cost.evaluator.memo.misses")
_PROFILE_HITS = _obs_counter("cost.evaluator.profile.hits")
_PROFILE_MISSES = _obs_counter("cost.evaluator.profile.misses")

#: Anything the algorithms use to describe one column group: a bitmask, a
#: ``Partition``, or an iterable of attribute indices (frozenset, list, ...).
GroupLike = Union[int, Partition, Iterable[int]]


# -- process-local cache sharing ------------------------------------------------
#
# The grid runner executes many cells (algorithm x cost model) on the *same*
# schema inside one worker process.  The evaluator's group-profile and
# co-read-cost caches depend only on the schema and the cost model — never on
# the workload or the algorithm — so cells can share them.  When sharing is
# enabled (the grid worker initializer turns it on), every evaluator
# constructed for the same ``(schema, cost-model description, naive)`` triple
# adopts one process-local set of cache dicts instead of private ones.
#
# The pool is keyed by the current PID: a forked or spawned worker never
# mutates cache dicts aliased by another process (after ``fork`` the memory is
# copy-on-write anyway, but discarding the inherited pool keeps the semantics
# identical under every start method), which is what makes the sharing
# process-safe.  Sharing never changes any cost value — the caches only ever
# hold values the exactness invariants above pin down uniquely.

_shared_pool: Dict[Tuple[TableSchema, str, str, bool], Tuple[dict, dict, dict]] = {}
_shared_pool_pid: Optional[int] = None
_sharing_enabled: bool = False


def enable_cache_sharing(enabled: bool = True) -> bool:
    """Turn process-local evaluator cache sharing on or off.

    Returns the previous setting so callers can restore it.  Intended for
    long-lived worker processes (see :mod:`repro.grid.worker`); the default is
    off, preserving the one-evaluator-per-run isolation of direct library use.
    """
    global _sharing_enabled
    previous = _sharing_enabled
    _sharing_enabled = bool(enabled)
    return previous


def cache_sharing_enabled() -> bool:
    """True if evaluators currently adopt the process-local shared caches."""
    return _sharing_enabled


def clear_shared_caches() -> None:
    """Drop every process-local shared cache (memory reclamation hook)."""
    _shared_pool.clear()


def _shared_caches(
    schema: TableSchema, cost_model: CostModel, naive: bool
) -> Tuple[dict, dict, dict]:
    """The process-local ``(group_keys, group_profiles, signature_costs)`` dicts.

    The pool key includes the model's *class* (unwrapping the algorithm
    framework's counting wrapper) on top of ``describe()``, so two custom
    model classes that both inherit the bare default ``describe()`` cannot
    share entries.  Two differently-parameterised instances of the *same*
    class remain indistinguishable unless ``describe()`` spells out every
    behavioural knob — which is the documented contract for fast-costing
    models (see :meth:`repro.cost.base.CostModel.describe`).
    """
    global _shared_pool, _shared_pool_pid
    pid = os.getpid()
    if _shared_pool_pid != pid:
        _shared_pool = {}
        _shared_pool_pid = pid
    inner = getattr(cost_model, "inner", cost_model)
    model_class = f"{type(inner).__module__}.{type(inner).__qualname__}"
    key = (schema, model_class, cost_model.describe(), naive)
    caches = _shared_pool.get(key)
    if caches is None:
        caches = ({}, {}, {(): 0.0})
        _shared_pool[key] = caches
    return caches


class CostEvaluator:
    """Memoized workload costing for candidate layouts of one workload.

    One evaluator is bound to a ``(workload, cost_model)`` pair; its caches
    are valid for the lifetime of that pair because both are immutable.

    Parameters
    ----------
    workload:
        The workload whose cost is evaluated.
    cost_model:
        Any :class:`~repro.cost.base.CostModel`.  Models advertising
        ``supports_fast_costing`` are accelerated through their
        ``group_read_profile`` / ``co_read_set_cost`` hooks; others are
        costed through the naive ``workload_cost`` path.
    naive:
        Force the naive path even for fast-capable models (used by the
        cost-kernel microbenchmark as the before/after comparison).
    """

    def __init__(
        self,
        workload: Workload,
        cost_model: CostModel,
        naive: bool = False,
    ) -> None:
        self.workload = workload
        self.cost_model = cost_model
        self.schema = workload.schema
        self.naive = naive or not getattr(cost_model, "supports_fast_costing", False)
        self._query_masks: Tuple[int, ...] = tuple(
            query.index_mask for query in workload
        )
        self._weights: Tuple[float, ...] = tuple(query.weight for query in workload)
        # Group-local caches, keyed by group bitmask; valid across all layouts.
        # With process-local sharing enabled they are adopted from the shared
        # pool so evaluators on the same (schema, model) reuse each other's
        # memoized profiles and co-read costs.
        if _sharing_enabled:
            caches = _shared_caches(self.schema, cost_model, self.naive)
            self._group_keys, self._group_profiles, self._signature_costs = caches
        else:
            self._group_keys = {}
            self._group_profiles = {}
            # Per-co-read-set cache: ordered tuple of group masks -> query cost.
            self._signature_costs = {(): 0.0}
        self._bound: Optional[BoundLayout] = None
        #: Number of candidate layouts costed through the memoized kernel (the
        #: algorithms' effort proxy).  The naive fallback path is excluded:
        #: those candidates already surface as one ``workload_cost`` call each
        #: on the model itself, so counting them here would double-count.
        self.evaluations = 0

    # -- group normalisation ---------------------------------------------------

    def masks_of(self, groups: Iterable[GroupLike]) -> List[int]:
        """Normalise a layout description to a list of group bitmasks."""
        masks: List[int] = []
        for group in groups:
            if isinstance(group, int):
                masks.append(group)
            elif isinstance(group, Partition):
                masks.append(group.mask)
            else:
                masks.append(mask_of(group))
        return masks

    def _key(self, mask: int) -> Tuple[int, ...]:
        """Canonical sort key of a group: its ascending attribute tuple."""
        key = self._group_keys.get(mask)
        if key is None:
            key = indices_of_mask(mask)
            self._group_keys[mask] = key
        return key

    def _ordered(self, masks: List[int]) -> List[int]:
        """Group masks in ``Partitioning``'s canonical order."""
        return sorted(masks, key=self._key)

    def _profile(self, mask: int) -> object:
        """The model's cached group-local read profile for one group."""
        profile = self._group_profiles.get(mask)
        if profile is None:
            _PROFILE_MISSES.value += 1
            row_size = self.schema.subset_row_size(self._key(mask))
            profile = self.cost_model.group_read_profile(self.schema, row_size)
            self._group_profiles[mask] = profile
        else:
            _PROFILE_HITS.value += 1
        return profile

    def _signature_cost(self, signature: Tuple[int, ...]) -> float:
        """Cost of one query whose co-read set is ``signature`` (cached)."""
        cost = self._signature_costs.get(signature)
        if cost is None:
            _MEMO_MISSES.value += 1
            profiles = [self._profile(mask) for mask in signature]
            cost = self.cost_model.co_read_set_cost(self.schema, profiles)
            self._signature_costs[signature] = cost
        else:
            _MEMO_HITS.value += 1
        return cost

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, groups: Iterable[GroupLike]) -> float:
        """Workload cost of the layout described by ``groups``.

        Bit-identical to ``cost_model.workload_cost(workload, Partitioning(
        schema, groups))``, without constructing the partitioning.
        """
        masks = self.masks_of(groups)
        if self.naive:
            return self._naive_cost(masks)
        self.evaluations += 1
        ordered = self._ordered(masks)
        total = 0.0
        for query_mask, weight in zip(self._query_masks, self._weights):
            signature = tuple(mask for mask in ordered if mask & query_mask)
            total += weight * self._signature_cost(signature)
        return total

    def query_cost(self, query_mask: int, groups: Iterable[GroupLike]) -> float:
        """Cost of a single query (given by attribute bitmask) under a layout.

        The online subsystem charges every arriving query its scan cost under
        the currently deployed layout; going through the evaluator makes that
        a cache hit on the *(co-read signature → cost)* table for every
        repeated footprint.  Bit-identical to
        ``cost_model.query_cost(query, Partitioning(schema, groups))``.
        """
        masks = self.masks_of(groups)
        if self.naive:
            from repro.workload.query import ResolvedQuery

            query = ResolvedQuery(
                name="q", attribute_indices=indices_of_mask(query_mask)
            )
            return self.cost_model.query_cost(
                query, Partitioning.from_masks(self.schema, masks, validate=False)
            )
        ordered = self._ordered(masks)
        signature = tuple(mask for mask in ordered if mask & query_mask)
        return self._signature_cost(signature)

    def rebind(self, workload: Workload) -> "CostEvaluator":
        """A fresh evaluator for another workload over the same schema, sharing caches.

        The group-profile and co-read-cost caches are keyed by group bitmask
        and co-read signature only — they depend on the *schema* and the cost
        model, never on which queries are in the workload — so windowed/online
        callers can re-bind a sliding-window snapshot every few arrivals
        without losing anything already memoized.  The schemas must be equal
        (same attribute widths and row count); rebinding to a different table
        would poison the shared caches.
        """
        if workload.schema != self.schema:
            raise ValueError(
                "rebind requires an identical schema; got "
                f"{workload.schema.name!r} for evaluator bound to {self.schema.name!r}"
            )
        clone = CostEvaluator(workload, self.cost_model, naive=self.naive)
        clone._group_keys = self._group_keys
        clone._group_profiles = self._group_profiles
        clone._signature_costs = self._signature_costs
        return clone

    def bind(self, groups: Iterable[GroupLike]) -> "BoundLayout":
        """Bind a base layout for repeated delta costing.

        The bound layout caches each query's base cost and, per group, the set
        of queries touching it, so :meth:`BoundLayout.merge_cost` re-derives
        co-read signatures only for affected queries.  Binding the same layout
        again returns the cached binding.
        """
        masks = tuple(self.masks_of(groups))
        if self._bound is not None and self._bound.masks == masks:
            return self._bound
        self._bound = BoundLayout(self, masks)
        return self._bound

    def evaluate_merge(self, groups: Iterable[GroupLike], a: int, b: int) -> float:
        """Workload cost of ``groups`` with groups at indices ``a``/``b`` merged.

        The delta path of the kernel: only queries touching one of the two
        merged groups are re-costed; all other per-query costs are reused.
        """
        if self.naive:
            return self._naive_cost(merge_group_pair(self.masks_of(groups), a, b))
        return self.bind(groups).merge_cost(a, b)

    def _naive_cost(self, masks: List[int]) -> float:
        """Pre-kernel behaviour: build a real ``Partitioning`` and cost it."""
        partitioning = Partitioning.from_masks(self.schema, masks, validate=False)
        return self.cost_model.workload_cost(self.workload, partitioning)


class BoundLayout:
    """A base layout bound to a :class:`CostEvaluator` for delta costing."""

    def __init__(self, evaluator: CostEvaluator, masks: Tuple[int, ...]) -> None:
        self.evaluator = evaluator
        self.masks = masks
        ordered = evaluator._ordered(list(masks))
        self._ordered_masks = ordered
        # Per-query base cost, and per-group bitmask over query indices (bit q
        # set iff query q touches the group) to find affected queries fast.
        costs: List[float] = []
        touched = [0] * len(masks)
        for query_index, query_mask in enumerate(evaluator._query_masks):
            signature = tuple(mask for mask in ordered if mask & query_mask)
            costs.append(evaluator._signature_cost(signature))
            bit = 1 << query_index
            for group_index, mask in enumerate(masks):
                if mask & query_mask:
                    touched[group_index] |= bit
        self._costs = costs
        self._touched = touched
        total = 0.0
        for weight, cost in zip(evaluator._weights, costs):
            total += weight * cost
        #: Workload cost of the base layout itself.
        self.total = total

    def merge_cost(self, a: int, b: int) -> float:
        """Workload cost of this layout with groups ``a`` and ``b`` merged.

        Bit-identical to ``evaluator.evaluate`` on the merged layout: the
        weighted sum still accumulates over *all* queries in workload order,
        but only queries touching group ``a`` or ``b`` recompute their
        co-read signature — the rest reuse their cached base cost.
        """
        evaluator = self.evaluator
        evaluator.evaluations += 1
        mask_a = self.masks[a]
        mask_b = self.masks[b]
        merged_mask = mask_a | mask_b
        merged_key = evaluator._key(merged_mask)
        # The merged group list in canonical order: drop one occurrence of each
        # original (dropping *every* equal mask would over-remove when a layout
        # contains duplicate groups), insert the union at its sorted position.
        ordered: List[int] = []
        inserted = False
        drop_a = True
        drop_b = True
        for mask in self._ordered_masks:
            if drop_a and mask == mask_a:
                drop_a = False
                continue
            if drop_b and mask == mask_b:
                drop_b = False
                continue
            if not inserted and evaluator._key(mask) > merged_key:
                ordered.append(merged_mask)
                inserted = True
            ordered.append(mask)
        if not inserted:
            ordered.append(merged_mask)
        affected = self._touched[a] | self._touched[b]
        total = 0.0
        for query_index, (weight, base_cost) in enumerate(
            zip(evaluator._weights, self._costs)
        ):
            if affected >> query_index & 1:
                query_mask = evaluator._query_masks[query_index]
                signature = tuple(mask for mask in ordered if mask & query_mask)
                total += weight * evaluator._signature_cost(signature)
            else:
                total += weight * base_cost
        return total
