"""Cost models.

The paper evaluates every algorithm with an analytical I/O cost model
(Section 4) rather than by executing queries in a real DBMS, because no freely
available system can read vertically partitioned data without tuple
reconstruction joins polluting the measurement.

* :mod:`repro.cost.disk` — :class:`DiskCharacteristics`, the hardware
  parameters (block size, buffer size, read/write bandwidth, seek time).
* :mod:`repro.cost.hdd` — :class:`HDDCostModel`, the paper's buffered seek +
  scan model for disk-based systems.
* :mod:`repro.cost.mainmemory` — :class:`MainMemoryCostModel`, a HYRISE-style
  cache-miss model used for Table 6.
* :mod:`repro.cost.creation` — layout transformation (creation) time model
  used by the pay-off metric.
* :mod:`repro.cost.evaluator` — :class:`CostEvaluator`, the memoized bitmask
  costing kernel the partitioning algorithms evaluate candidate layouts with.
"""

from repro.cost.base import CostModel
from repro.cost.disk import (
    DEFAULT_DISK,
    POSTGRES_LIKE_DISK,
    DiskCharacteristics,
)
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCharacteristics, MainMemoryCostModel
from repro.cost.creation import estimate_creation_time
from repro.cost.evaluator import (
    BoundLayout,
    CostEvaluator,
    cache_sharing_enabled,
    clear_shared_caches,
    enable_cache_sharing,
)

__all__ = [
    "CostModel",
    "CostEvaluator",
    "BoundLayout",
    "enable_cache_sharing",
    "cache_sharing_enabled",
    "clear_shared_caches",
    "DiskCharacteristics",
    "DEFAULT_DISK",
    "POSTGRES_LIKE_DISK",
    "HDDCostModel",
    "MainMemoryCostModel",
    "MainMemoryCharacteristics",
    "estimate_creation_time",
]
