"""Layout creation (transformation) time model.

The pay-off metric (paper Appendix A.1, Figure 10) compares the time invested
— optimisation time plus the time to physically rewrite the table into the new
layout — against the workload cost improvement.  The paper measured roughly
420 seconds to transform TPC-H scale factor 10 from a row layout into a
vertically partitioned layout.

We model creation as reading the table once at the disk's read bandwidth and
writing it once, column group by column group, at the write bandwidth.  With
the paper's measured bandwidths this lands in the same few-hundred-second
range for SF 10, which is all the pay-off metric needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cost.disk import DEFAULT_DISK, DiskCharacteristics

if TYPE_CHECKING:  # imported for type hints only, avoids a circular import
    from repro.core.partitioning import Partitioning


def estimate_creation_time(
    partitioning: "Partitioning",
    disk: DiskCharacteristics = DEFAULT_DISK,
    include_read: bool = True,
) -> float:
    """Seconds needed to materialise ``partitioning`` from a row layout.

    Parameters
    ----------
    partitioning:
        The target layout; its schema supplies row count and widths.
    disk:
        Disk characteristics providing read/write bandwidths.
    include_read:
        Whether to include the initial sequential read of the source table
        (True for a row-to-partitioned transformation; False when the data is
        already cached or generated in memory).
    """
    schema = partitioning.schema
    total_bytes = schema.row_size * schema.row_count
    write_time = total_bytes / disk.write_bandwidth
    # One extra seek per column-group file being created.
    seek_time = disk.seek_time * partitioning.partition_count
    read_time = total_bytes / disk.read_bandwidth if include_read else 0.0
    return read_time + write_time + seek_time
