"""Abstract cost model interface.

Every cost model estimates the cost of one query against one partitioning; the
workload cost is the weighted sum over queries.  Algorithms only ever call
:meth:`CostModel.workload_cost` / :meth:`CostModel.query_cost`, so swapping
the disk model for the main-memory model (Table 6 of the paper) requires no
algorithm changes.

Cost models also expose :meth:`CostModel.partition_read_cost`, the cost of
reading a single column group for a given set of co-read groups, which the
metrics module uses to attribute costs to partitions.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload

if TYPE_CHECKING:  # imported for type hints only, avoids a circular import
    from repro.core.partitioning import Partition, Partitioning


class CostModel(abc.ABC):
    """Estimates I/O (or memory-access) cost of queries over a partitioning."""

    #: Short identifier used in reports, e.g. ``"hdd"`` or ``"main-memory"``.
    name: str = "abstract"

    @abc.abstractmethod
    def query_cost(self, query: ResolvedQuery, partitioning: "Partitioning") -> float:
        """Estimated cost (seconds) of one query over ``partitioning``."""

    def workload_cost(self, workload: Workload, partitioning: "Partitioning") -> float:
        """Weighted sum of per-query costs over the whole workload."""
        return sum(
            query.weight * self.query_cost(query, partitioning) for query in workload
        )

    def per_query_costs(
        self, workload: Workload, partitioning: "Partitioning"
    ) -> Dict[str, float]:
        """Unweighted cost of each query, keyed by query name."""
        return {
            query.name: self.query_cost(query, partitioning) for query in workload
        }

    @abc.abstractmethod
    def partition_read_cost(
        self,
        partition: "Partition",
        co_read: Sequence["Partition"],
        partitioning: "Partitioning",
    ) -> float:
        """Cost of reading ``partition`` when ``co_read`` partitions are read together.

        ``co_read`` must include ``partition`` itself; the disk model uses the
        co-read set to split the I/O buffer.
        """

    def describe(self) -> str:
        """Human-readable description of the model and its parameters."""
        return self.name
