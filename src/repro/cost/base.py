"""Abstract cost model interface.

Every cost model estimates the cost of one query against one partitioning; the
workload cost is the weighted sum over queries.  Algorithms only ever call
:meth:`CostModel.workload_cost` / :meth:`CostModel.query_cost`, so swapping
the disk model for the main-memory model (Table 6 of the paper) requires no
algorithm changes.

Cost models also expose :meth:`CostModel.partition_read_cost`, the cost of
reading a single column group for a given set of co-read groups, which the
metrics module uses to attribute costs to partitions.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload

if TYPE_CHECKING:  # imported for type hints only, avoids a circular import
    from repro.core.partitioning import Partition, Partitioning
    from repro.workload.schema import TableSchema


class CostModel(abc.ABC):
    """Estimates I/O (or memory-access) cost of queries over a partitioning."""

    #: Short identifier used in reports, e.g. ``"hdd"`` or ``"main-memory"``.
    name: str = "abstract"

    #: True if the model implements the fast per-co-read-set hooks below
    #: (:meth:`group_read_profile` / :meth:`co_read_set_cost`), which the
    #: :class:`repro.cost.evaluator.CostEvaluator` uses to cost candidate
    #: layouts without materialising ``Partition``/``Partitioning`` objects.
    #: Models that leave this False are still supported — the evaluator falls
    #: back to the naive :meth:`query_cost` path.
    supports_fast_costing: bool = False

    @abc.abstractmethod
    def query_cost(self, query: ResolvedQuery, partitioning: "Partitioning") -> float:
        """Estimated cost (seconds) of one query over ``partitioning``."""

    def workload_cost(self, workload: Workload, partitioning: "Partitioning") -> float:
        """Weighted sum of per-query costs over the whole workload."""
        return sum(
            query.weight * self.query_cost(query, partitioning) for query in workload
        )

    def per_query_costs(
        self, workload: Workload, partitioning: "Partitioning"
    ) -> Dict[str, float]:
        """Unweighted cost of each query, keyed by query name."""
        return {
            query.name: self.query_cost(query, partitioning) for query in workload
        }

    @abc.abstractmethod
    def partition_read_cost(
        self,
        partition: "Partition",
        co_read: Sequence["Partition"],
        partitioning: "Partitioning",
    ) -> float:
        """Cost of reading ``partition`` when ``co_read`` partitions are read together.

        ``co_read`` must include ``partition`` itself; the disk model uses the
        co-read set to split the I/O buffer.
        """

    # -- fast-costing hooks (used by repro.cost.evaluator.CostEvaluator) ------

    def group_read_profile(self, schema: "TableSchema", row_size: int) -> object:
        """Layout-independent, group-local data for one column group.

        Whatever this returns is cached per group bitmask by the evaluator and
        handed back to :meth:`co_read_set_cost`, so models should precompute
        here everything that depends only on the group's row width and the
        schema (e.g. block counts).  The default is the bare row size.
        """
        return row_size

    def co_read_set_cost(
        self, schema: "TableSchema", profiles: Sequence[object]
    ) -> float:
        """Cost of one query reading the groups with ``profiles`` together.

        ``profiles`` are :meth:`group_read_profile` results of the referenced
        groups, in the same canonical order :meth:`query_cost` iterates
        referenced partitions.  For exact agreement, implementations must
        share the per-group arithmetic with :meth:`query_cost` — the built-in
        models keep that arithmetic in single private helpers both paths
        call, so only the orchestration differs.  Models that support this
        hook set ``supports_fast_costing = True``.
        """
        raise NotImplementedError(
            f"cost model {self.name!r} does not implement fast co-read costing"
        )

    def describe(self) -> str:
        """Human-readable description of the model and its parameters.

        Contract: the string must spell out **every** parameter that can
        change a cost value.  The evaluator's shared cache pool and the grid
        result cache both key models by this description (plus the model
        class), so an omitted knob would let differently-behaving instances
        of one class share cached costs.
        """
        return self.name
