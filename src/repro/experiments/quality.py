"""Figures 3–6 and Tables 5–6: layout quality.

* Figure 3 — estimated workload runtime (total I/O cost over all TPC-H tables)
  per algorithm, with Row and Column as baselines.
* Figure 4 — fraction of unnecessary data read.
* Figure 5 — average tuple-reconstruction joins per tuple.
* Figure 6 — distance from perfect materialised views.
* Table 5 — improvement over the column layout on TPC-H versus SSB.
* Table 6 — improvement over the column layout under the HDD versus the
  main-memory cost model.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.algorithms.baselines import PerfectMaterializedViews
from repro.core.partitioning import column_partitioning, row_partitioning
from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.experiments.runner import (
    DEFAULT_ALGORITHM_ORDER,
    SuiteResult,
    baseline_costs,
    run_suite,
)
from repro.metrics.quality import (
    average_reconstruction_joins,
    bytes_needed,
    bytes_read,
    improvement_over,
    unnecessary_data_fraction,
)
from repro.workload import ssb, tpch
from repro.workload.workload import Workload


def _default_suite(scale_factor: float, algorithms: Sequence[str]) -> SuiteResult:
    return run_suite(
        tpch.tpch_workloads(scale_factor=scale_factor), algorithms=algorithms
    )


def estimated_workload_runtimes(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
) -> List[Dict[str, object]]:
    """Figure 3 rows: total estimated workload cost per algorithm + baselines."""
    if suite is None:
        suite = _default_suite(scale_factor, algorithms)
    rows = []
    order = list(algorithms) + ["column", "row"]
    for algorithm in order:
        if algorithm not in suite.runs:
            continue
        rows.append(
            {
                "algorithm": algorithm,
                "estimated_runtime_s": suite.total_cost(algorithm),
                "approximate": suite.is_approximate(algorithm),
            }
        )
    return rows


def unnecessary_data_read(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
) -> List[Dict[str, object]]:
    """Figure 4 rows: fraction of the data read that no query needed."""
    if suite is None:
        suite = _default_suite(scale_factor, algorithms)
    rows = []
    order = list(algorithms) + ["column", "row"]
    for algorithm in order:
        if algorithm not in suite.runs:
            continue
        read = 0.0
        needed = 0.0
        for table, workload in suite.workloads.items():
            layout = suite.layout(algorithm, table)
            read += bytes_read(workload, layout)
            needed += bytes_needed(workload, layout)
        fraction = 0.0 if read <= 0 else max(0.0, (read - needed) / read)
        rows.append({"algorithm": algorithm, "unnecessary_data_fraction": fraction})
    return rows


def tuple_reconstruction_joins(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
) -> List[Dict[str, object]]:
    """Figure 5 rows: average tuple-reconstruction joins per tuple.

    The average is taken over all queries of all tables, weighted by query
    weight, matching the paper's "averaged over all tuples and all queries".
    """
    if suite is None:
        suite = _default_suite(scale_factor, algorithms)
    rows = []
    order = list(algorithms) + ["column", "row"]
    for algorithm in order:
        if algorithm not in suite.runs:
            continue
        weighted_joins = 0.0
        total_weight = 0.0
        for table, workload in suite.workloads.items():
            layout = suite.layout(algorithm, table)
            weighted_joins += average_reconstruction_joins(workload, layout) * workload.total_weight
            total_weight += workload.total_weight
        average = weighted_joins / total_weight if total_weight else 0.0
        rows.append({"algorithm": algorithm, "avg_reconstruction_joins": average})
    return rows


def distance_from_pmv(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
) -> List[Dict[str, object]]:
    """Figure 6 rows: relative distance of each layout from perfect materialised views."""
    if suite is None:
        suite = _default_suite(scale_factor, algorithms)
    pmv = PerfectMaterializedViews()
    pmv_total = sum(
        pmv.workload_cost(workload, suite.cost_model)
        for workload in suite.workloads.values()
    )
    rows = []
    order = list(algorithms) + ["column", "row"]
    for algorithm in order:
        if algorithm not in suite.runs:
            continue
        cost = suite.total_cost(algorithm)
        distance = 0.0 if pmv_total <= 0 else (cost - pmv_total) / pmv_total
        rows.append({"algorithm": algorithm, "distance_from_pmv": distance})
    return rows


def improvement_over_column_by_benchmark(
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
    cost_model: Optional[CostModel] = None,
) -> List[Dict[str, object]]:
    """Table 5 rows: improvement over column layout on TPC-H versus SSB."""
    model = cost_model if cost_model is not None else HDDCostModel()
    benchmarks = {
        "TPC-H": tpch.tpch_workloads(scale_factor=scale_factor),
        "SSB": ssb.ssb_workloads(scale_factor=scale_factor),
    }
    suites = {
        name: run_suite(workloads, algorithms=algorithms, cost_model=model)
        for name, workloads in benchmarks.items()
    }
    rows = []
    for algorithm in algorithms:
        row: Dict[str, object] = {"algorithm": algorithm}
        for name, suite in suites.items():
            column_total = suite.total_cost("column")
            row[name] = improvement_over(column_total, suite.total_cost(algorithm))
        rows.append(row)
    return rows


def improvement_over_column_by_cost_model(
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
) -> List[Dict[str, object]]:
    """Table 6 rows: improvement over column under the HDD vs main-memory model.

    Each algorithm optimises *for* the respective cost model, exactly as in
    the paper's re-evaluation.
    """
    models = {
        "HDD": HDDCostModel(),
        "MM": MainMemoryCostModel(),
    }
    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    suites = {
        label: run_suite(workloads, algorithms=algorithms, cost_model=model)
        for label, model in models.items()
    }
    rows = []
    for algorithm in algorithms:
        row: Dict[str, object] = {"algorithm": algorithm}
        for label, suite in suites.items():
            column_total = suite.total_cost("column")
            row[label] = improvement_over(column_total, suite.total_cost(algorithm))
        rows.append(row)
    return rows
