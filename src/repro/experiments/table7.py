"""The shared Table-7 report schema: one row per (engine, encoding).

The paper's Table 7 measures TPC-H workload runtimes inside a column-grouping
DBMS the authors don't control, across three layouts (row, column, HillClimb)
and two record encodings.  This repro produces Table-7 rows from two engines —
the simulated DBMS-X (:mod:`repro.experiments.dbms_x_experiment`) and real
embedded SQLite (:mod:`repro.experiments.engine_x`) — and both emit the *same*
row schema so they render in one headline table::

    {"engine": <engine label>, "encoding": <record encoding label>,
     "row": <seconds>, "column": <seconds>, "hillclimb": <seconds>}

This module owns the schema, the layout computation the drivers share (the
HillClimb layout is optimised under the paper's HDD model, exactly as the
paper loads the HillClimb-computed layout), and the combined renderer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.workload.workload import Workload

#: The layouts compared in Table 7 (also the per-layout column names).
TABLE7_LAYOUTS = ("row", "column", "hillclimb")

#: Fixed column order of a Table-7 row.
TABLE7_COLUMNS = ("engine", "encoding") + TABLE7_LAYOUTS


def table7_layouts(
    workloads: Mapping[str, Workload],
    layouts: Sequence[str] = TABLE7_LAYOUTS,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, Dict[str, Partitioning]]:
    """The physical layouts both engines load: layout name -> table -> layout.

    Row and Column are the baselines; any other name is resolved as an
    algorithm and optimised per table under ``cost_model`` (default: the
    paper's testbed HDD model).
    """
    model = cost_model if cost_model is not None else HDDCostModel()
    layout_map: Dict[str, Dict[str, Partitioning]] = {}
    for name in layouts:
        layout_map[name] = {}
        for table, workload in workloads.items():
            if name == "row":
                layout_map[name][table] = row_partitioning(workload.schema)
            elif name == "column":
                layout_map[name][table] = column_partitioning(workload.schema)
            else:
                layout_map[name][table] = (
                    get_algorithm(name).run(workload, model).partitioning
                )
    return layout_map


def table7_row(
    engine: str,
    encoding: str,
    runtimes: Mapping[str, float],
    layouts: Sequence[str] = TABLE7_LAYOUTS,
) -> Dict[str, object]:
    """One canonical Table-7 row (validates the layout keys)."""
    missing = [name for name in layouts if name not in runtimes]
    if missing:
        raise ValueError(f"Table-7 runtimes missing layouts {missing}")
    row: Dict[str, object] = {"engine": engine, "encoding": encoding}
    for name in layouts:
        row[name] = float(runtimes[name])
    return row


def format_table7(rows: Iterable[Mapping[str, object]], title: str = "") -> str:
    """Render Table-7 rows (from any mix of engines) as one aligned table."""
    from repro.experiments.report import format_table

    return format_table(
        list(rows),
        columns=TABLE7_COLUMNS,
        title=title or "Table 7 — workload runtimes by engine (s)",
    )
