"""Table 7: TPC-H runtimes in a column-grouping DBMS under two compressions.

The paper loads TPC-H (SF 10) into a commercial column store (DBMS-X) in a
row layout, a column layout and the HillClimb layout, under the system's
default varying-length compression and with dictionary compression forced,
and reports the total workload runtime (excluding query 9).

This driver reproduces the experiment on the simulated DBMS-X of
:mod:`repro.storage.dbms_x`: absolute seconds differ from the paper's
hardware, but the shape — Row ≫ Column, Column ≤ HillClimb, and a narrower
gap under dictionary compression — is preserved and asserted by the
integration tests.  Rows use the shared Table-7 schema of
:mod:`repro.experiments.table7` (``engine``/``encoding`` + one column per
layout) so they render in the same headline table as the real-engine rows
from :mod:`repro.experiments.engine_x`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.table7 import TABLE7_LAYOUTS, table7_layouts, table7_row
from repro.storage.compression import DictionaryCompression, VaryingLengthCompression
from repro.storage.dbms_x import DbmsX, DbmsXConfig
from repro.workload import tpch

#: Engine label the simulated rows carry in the shared Table-7 schema.
ENGINE_LABEL = "dbms-x (simulated)"


def dbms_x_runtimes(
    scale_factor: float = 10.0,
    layouts: Sequence[str] = TABLE7_LAYOUTS,
    tables: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Table 7 rows: one row per record encoding with a column per layout."""
    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    if tables is not None:
        workloads = {name: workloads[name] for name in tables}

    layout_map = table7_layouts(workloads, layouts)

    schemes = {
        "Default (LZO or Delta)": VaryingLengthCompression(),
        "Dictionary": DictionaryCompression(),
    }
    rows = []
    for scheme_name, scheme in schemes.items():
        dbms = DbmsX(DbmsXConfig(compression=scheme))
        runtimes = {
            name: dbms.run_benchmark(workloads, layout_map[name])
            for name in layouts
        }
        rows.append(table7_row(ENGINE_LABEL, scheme_name, runtimes, layouts))
    return rows
