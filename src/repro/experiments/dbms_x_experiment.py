"""Table 7: TPC-H runtimes in a column-grouping DBMS under two compressions.

The paper loads TPC-H (SF 10) into a commercial column store (DBMS-X) in a
row layout, a column layout and the HillClimb layout, under the system's
default varying-length compression and with dictionary compression forced,
and reports the total workload runtime (excluding query 9).

This driver reproduces the experiment on the simulated DBMS-X of
:mod:`repro.storage.dbms_x`: absolute seconds differ from the paper's
hardware, but the shape — Row ≫ Column, Column ≤ HillClimb, and a narrower
gap under dictionary compression — is preserved and asserted by the
integration tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import column_partitioning, row_partitioning
from repro.cost.hdd import HDDCostModel
from repro.storage.compression import DictionaryCompression, VaryingLengthCompression
from repro.storage.dbms_x import DbmsX, DbmsXConfig
from repro.workload import tpch

#: The layouts compared in Table 7.
TABLE7_LAYOUTS = ("row", "column", "hillclimb")


def dbms_x_runtimes(
    scale_factor: float = 10.0,
    layouts: Sequence[str] = TABLE7_LAYOUTS,
    tables: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Table 7 rows: one row per compression scheme with a column per layout."""
    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    if tables is not None:
        workloads = {name: workloads[name] for name in tables}

    # Compute the layouts once (HillClimb optimises under the HDD cost model,
    # exactly as the paper loads the HillClimb-computed layout).
    cost_model = HDDCostModel()
    layout_map: Dict[str, Dict[str, object]] = {}
    for name in layouts:
        layout_map[name] = {}
        for table, workload in workloads.items():
            if name == "row":
                layout_map[name][table] = row_partitioning(workload.schema)
            elif name == "column":
                layout_map[name][table] = column_partitioning(workload.schema)
            else:
                layout_map[name][table] = (
                    get_algorithm(name).run(workload, cost_model).partitioning
                )

    schemes = {
        "Default (LZO or Delta)": VaryingLengthCompression(),
        "Dictionary": DictionaryCompression(),
    }
    rows = []
    for scheme_name, scheme in schemes.items():
        dbms = DbmsX(DbmsXConfig(compression=scheme))
        row: Dict[str, object] = {"compression": scheme_name}
        for name in layouts:
            row[name] = dbms.run_benchmark(workloads, layout_map[name])
        rows.append(row)
    return rows
