"""Adaptive re-partitioning experiment: policies on a drifting query stream.

This driver opens the scenario class the paper's offline comparison leaves
out: the workload *shifts* while the system runs, and the question (begged by
the paper's own pay-off metric, Appendix A.1) becomes *when is
re-partitioning worth it?*  Four policies replay the same seeded drifting
stream and are charged cumulative scan + re-organisation + optimisation
seconds (see :mod:`repro.online.controller`):

* ``static-hindsight`` — the offline ideal-one-layout baseline: the
  algorithm sees the whole stream up front, deploys once;
* ``o2p-incremental`` — the paper's online algorithm as an always-on
  incremental policy (one greedy split per arrival, never revisited);
* ``adaptive`` — the drift-triggered, pay-off-gated
  :class:`~repro.online.controller.AdaptiveAdvisor`;
* ``reorg-every-query`` — the eager extreme: re-optimise the window on every
  arrival and deploy whatever comes back.

The default stream interleaves two kinds of non-stationarity the controller
must tell apart: *drift* (template blocks rotate at phase boundaries — worth
re-partitioning for) and *noise* (one-off random footprints — not worth it).
The default hardware is the paper's testbed with a small I/O buffer (the
regime in which column grouping genuinely matters, Figure 9) and a loaded
write path, so re-organisations are a real investment rather than free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cost.base import CostModel
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.cost.hdd import HDDCostModel
from repro.online.controller import (
    AdaptiveAdvisor,
    O2PPolicy,
    OnlineRunResult,
    ReorgEveryQueryPolicy,
    hindsight_policy,
    run_policy,
)
from repro.online.stream import QueryStream, phase_shift_stream
from repro.workload.query import Query
from repro.workload.synthetic import synthetic_table

#: Policy order of the report rows.
DEFAULT_POLICY_ORDER = (
    "static-hindsight",
    "o2p-incremental",
    "adaptive",
    "reorg-every-query",
)

#: Hardware of the adaptive scenario: the paper's testbed disk with a small
#: I/O buffer (column grouping matters, cf. Figure 9's sweet spots) and a
#: write path loaded to ~20 MB/s, so a full-table re-organisation costs real
#: time relative to the queries it is supposed to pay for.
ADAPTIVE_DISK = DiskCharacteristics(buffer_size=512 * KB, write_bandwidth=20 * MB)

#: Window used by the windowed policies (adaptive and reorg-every-query).
DEFAULT_WINDOW = 24


def default_drifting_stream(
    num_attributes: int = 12,
    template_size: int = 6,
    rotation: int = 2,
    num_phases: int = 4,
    queries_per_phase: int = 100,
    noise: float = 0.1,
    row_count: int = 400_000,
    seed: int = 11,
) -> QueryStream:
    """The driver's seeded drifting stream: rotating template blocks + noise.

    Each phase draws uniformly from ``num_attributes / template_size``
    templates of ``template_size`` consecutive attributes; the blocks rotate
    by ``rotation`` attributes per phase, so the co-access structure of the
    *same* attributes changes at every boundary — the situation in which any
    single compromise layout reads unnecessary data in every phase.  A
    ``noise`` fraction of arrivals are one-off random footprints (workload
    noise, not drift).
    """
    if num_attributes % template_size != 0:
        raise ValueError("template_size must divide num_attributes")
    schema = synthetic_table(num_attributes, row_count=row_count, random_state=seed)
    names = schema.attribute_names
    phases: List[List[Query]] = []
    for phase in range(num_phases):
        offset = (phase * rotation) % num_attributes
        phases.append(
            [
                Query(
                    f"p{phase}t{template}",
                    [
                        names[(offset + template_size * template + j) % num_attributes]
                        for j in range(template_size)
                    ],
                )
                for template in range(num_attributes // template_size)
            ]
        )
    return phase_shift_stream(
        schema,
        phases,
        queries_per_phase=queries_per_phase,
        noise=noise,
        random_state=seed,
        name=f"drifting-templates-seed{seed}",
    )


def adaptive_policy_comparison(
    stream: Optional[QueryStream] = None,
    cost_model: Optional[CostModel] = None,
    algorithm: str = "hillclimb",
    window: int = DEFAULT_WINDOW,
    policies: Sequence[str] = DEFAULT_POLICY_ORDER,
) -> List[Dict[str, object]]:
    """Compare the online policies on one drifting stream.

    Returns one row per policy with the cumulative cost breakdown
    (``scan_cost_s``, ``creation_cost_s``, ``optimization_time_s``,
    ``total_cost_s``), the re-organisation count and the final partition
    count — the adaptive report's table.
    """
    stream = stream if stream is not None else default_drifting_stream()
    model = cost_model if cost_model is not None else HDDCostModel(ADAPTIVE_DISK)
    rows: List[Dict[str, object]] = []
    for result in run_policies(stream, model, algorithm, window, policies):
        rows.append(result.to_row())
    return rows


def run_policies(
    stream: QueryStream,
    cost_model: CostModel,
    algorithm: str = "hillclimb",
    window: int = DEFAULT_WINDOW,
    policies: Sequence[str] = DEFAULT_POLICY_ORDER,
) -> List[OnlineRunResult]:
    """Run the named policies over ``stream`` and return the full results."""
    factories = {
        "static-hindsight": lambda: hindsight_policy(
            stream, cost_model, algorithm=algorithm
        ),
        "o2p-incremental": lambda: O2PPolicy(),
        "adaptive": lambda: AdaptiveAdvisor(
            cost_model, algorithm=algorithm, window=window
        ),
        "reorg-every-query": lambda: ReorgEveryQueryPolicy(
            cost_model, algorithm=algorithm, window=window
        ),
    }
    results: List[OnlineRunResult] = []
    for name in policies:
        try:
            factory = factories[name]
        except KeyError:
            raise ValueError(
                f"unknown policy {name!r}; available: {sorted(factories)}"
            ) from None
        results.append(run_policy(stream, factory(), cost_model))
    return results
