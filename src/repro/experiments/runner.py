"""Shared experiment runner.

Most figures of the paper need the same ingredients: every algorithm run on
every table of a benchmark under a given cost model, together with the row and
column baselines.  :func:`run_suite` produces that once and the individual
experiment drivers derive their figure/table from the returned
:class:`SuiteResult`, so a benchmark that regenerates several figures does not
re-run the algorithms for each one.

Brute force handling
--------------------

Brute force is exact only for tables whose number of enumeration units
(primary partitions) stays within ``brute_force_unit_limit``.  Wider tables —
in TPC-H only Lineitem, whose 13 primary partitions would require evaluating
27.6 million layouts — fall back to the best layout found by the heuristic
algorithms in the same suite; the corresponding :class:`TableRun` is marked
``approximate=True`` and EXPERIMENTS.md documents the substitution.  (The
paper's Lesson 1 — AutoPart and HillClimb find exactly the brute force layouts
— makes this a faithful stand-in.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.core.algorithm import PartitioningResult, get_algorithm
from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.workload.workload import Workload

if TYPE_CHECKING:  # imported for type hints only, avoids a circular import
    from repro.grid.cache import ResultCache

#: The paper's presentation order for algorithm bars/series.
DEFAULT_ALGORITHM_ORDER = (
    "autopart",
    "hillclimb",
    "hyrise",
    "navathe",
    "o2p",
    "trojan",
    "brute-force",
)

#: Baseline layouts appended to every figure that shows them.
BASELINES = ("column", "row")


@dataclass
class TableRun:
    """One algorithm's result on one table."""

    algorithm: str
    table: str
    result: PartitioningResult
    approximate: bool = False

    @property
    def partitioning(self) -> Partitioning:
        """The produced layout."""
        return self.result.partitioning

    @property
    def estimated_cost(self) -> float:
        """Estimated workload cost of the layout."""
        return self.result.estimated_cost

    @property
    def optimization_time(self) -> float:
        """Wall-clock optimisation time in seconds."""
        return self.result.optimization_time


@dataclass
class SuiteResult:
    """All algorithms run over all tables of a benchmark."""

    cost_model: CostModel
    workloads: Dict[str, Workload]
    runs: Dict[str, Dict[str, TableRun]] = field(default_factory=dict)

    # -- access ----------------------------------------------------------------

    @property
    def algorithms(self) -> List[str]:
        """Algorithm names present in the suite, in insertion order."""
        return list(self.runs)

    @property
    def tables(self) -> List[str]:
        """Table names of the benchmark, in insertion order."""
        return list(self.workloads)

    def run(self, algorithm: str, table: str) -> TableRun:
        """The run of ``algorithm`` on ``table``."""
        return self.runs[algorithm][table]

    def layout(self, algorithm: str, table: str) -> Partitioning:
        """The layout ``algorithm`` computed for ``table``."""
        return self.run(algorithm, table).partitioning

    def layouts(self, algorithm: str) -> Dict[str, Partitioning]:
        """All layouts of one algorithm, keyed by table."""
        return {table: run.partitioning for table, run in self.runs[algorithm].items()}

    # -- aggregates --------------------------------------------------------------

    def total_cost(self, algorithm: str) -> float:
        """Summed estimated workload cost over all tables."""
        return sum(run.estimated_cost for run in self.runs[algorithm].values())

    def total_optimization_time(self, algorithm: str) -> float:
        """Summed optimisation time over all tables."""
        return sum(run.optimization_time for run in self.runs[algorithm].values())

    def is_approximate(self, algorithm: str) -> bool:
        """True if any table's run for this algorithm used the fallback."""
        return any(run.approximate for run in self.runs[algorithm].values())


def run_suite(
    workloads: Mapping[str, Workload],
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
    cost_model: Optional[CostModel] = None,
    include_baselines: bool = True,
    brute_force_unit_limit: int = 10,
    algorithm_options: Optional[Mapping[str, Mapping[str, object]]] = None,
    cache: Optional["ResultCache"] = None,
) -> SuiteResult:
    """Run every algorithm on every workload and collect the results.

    Parameters
    ----------
    workloads:
        Per-table workloads (e.g. from :func:`repro.workload.tpch.tpch_workloads`).
    algorithms:
        Registry names to run, in presentation order.
    cost_model:
        Cost model used both for optimisation and evaluation (default: the
        paper's HDD model with the testbed disk characteristics).
    include_baselines:
        Also add the ``row`` and ``column`` baselines to the suite.
    brute_force_unit_limit:
        Maximum number of enumeration units for exact brute force; wider
        tables use the best heuristic layout and are flagged approximate.
    algorithm_options:
        Optional per-algorithm constructor keyword arguments.
    cache:
        Optional :class:`~repro.grid.cache.ResultCache`.  Runs whose inputs
        (workload content, algorithm options, cost model parameters) match a
        trusted cache entry are served from disk instead of recomputed; fresh
        runs are stored.  Brute force is exempt — its heuristic-fallback path
        depends on the other runs of the suite, not only on its own inputs.
    """
    model = cost_model if cost_model is not None else HDDCostModel()
    options = dict(algorithm_options or {})
    suite = SuiteResult(cost_model=model, workloads=dict(workloads))

    names = list(algorithms)
    if include_baselines:
        names.extend(name for name in BASELINES if name not in names)

    heuristic_names = [
        name for name in names if name not in ("brute-force", "row", "column")
    ]

    for name in names:
        suite.runs[name] = {}
        for table, workload in workloads.items():
            if name == "brute-force":
                run = _run_brute_force(
                    workload, table, model, brute_force_unit_limit, suite,
                    heuristic_names, options,
                )
            else:
                run = _run_algorithm(
                    name, table, workload, model,
                    dict(options.get(name, {})), cache,
                )
            suite.runs[name][table] = run
    return suite


def _run_algorithm(
    name: str,
    table: str,
    workload: Workload,
    cost_model: CostModel,
    options: Mapping[str, object],
    cache: Optional["ResultCache"],
) -> TableRun:
    """One algorithm on one table, served from the result cache when possible."""
    if cache is None:
        algorithm = get_algorithm(name, **dict(options))
        return TableRun(algorithm=name, table=table, result=algorithm.run(workload, cost_model))

    # Imported here to avoid a circular import at package load time.
    from repro.grid.cache import cell_inputs, content_key
    from repro.grid.worker import (
        baseline_costs_for,
        payload_to_result,
        result_to_payload,
    )

    inputs = cell_inputs(
        name, options, f"suite:{table}", workload, cost_model.name, cost_model
    )
    key = content_key(inputs)
    payload = cache.load(key)
    if payload is not None:
        return TableRun(
            algorithm=name, table=table, result=payload_to_result(payload, workload)
        )
    algorithm = get_algorithm(name, **dict(options))
    result = algorithm.run(workload, cost_model)
    row_cost, column_cost = baseline_costs_for(workload, cost_model)
    cache.store(key, inputs, result_to_payload(result, workload, row_cost, column_cost))
    return TableRun(algorithm=name, table=table, result=result)


def _run_brute_force(
    workload: Workload,
    table: str,
    cost_model: CostModel,
    unit_limit: int,
    suite: SuiteResult,
    heuristic_names: Sequence[str],
    options: Mapping[str, Mapping[str, object]],
) -> TableRun:
    """Exact brute force when feasible, best-heuristic fallback otherwise."""
    units = len(workload.primary_partitions())
    if units <= unit_limit:
        algorithm = get_algorithm(
            "brute-force",
            max_attributes=unit_limit,
            **dict(options.get("brute-force", {})),
        )
        return TableRun(
            algorithm="brute-force",
            table=table,
            result=algorithm.run(workload, cost_model),
        )

    # Fallback: cheapest layout among the heuristics already run on this table.
    best: Optional[TableRun] = None
    for name in heuristic_names:
        candidate = suite.runs.get(name, {}).get(table)
        if candidate is None:
            continue
        if best is None or candidate.estimated_cost < best.estimated_cost:
            best = candidate
    if best is None:
        # No heuristic ran before brute force; run HillClimb as the stand-in.
        algorithm = get_algorithm("hillclimb")
        result = algorithm.run(workload, cost_model)
    else:
        result = best.result
    fallback = PartitioningResult(
        algorithm="brute-force",
        workload_name=workload.name,
        partitioning=result.partitioning,
        optimization_time=result.optimization_time,
        estimated_cost=result.estimated_cost,
        cost_model=result.cost_model,
        cost_evaluations=result.cost_evaluations,
        metadata={"approximated_by": result.algorithm, "enumeration_units": units},
    )
    return TableRun(
        algorithm="brute-force", table=table, result=fallback, approximate=True
    )


def baseline_costs(
    workloads: Mapping[str, Workload], cost_model: Optional[CostModel] = None
) -> Dict[str, Dict[str, float]]:
    """Row and column layout costs per table (no algorithm involved)."""
    model = cost_model if cost_model is not None else HDDCostModel()
    costs: Dict[str, Dict[str, float]] = {"row": {}, "column": {}}
    for table, workload in workloads.items():
        costs["row"][table] = model.workload_cost(
            workload, row_partitioning(workload.schema)
        )
        costs["column"][table] = model.workload_cost(
            workload, column_partitioning(workload.schema)
        )
    return costs
