"""Figures 8 and 11: algorithm fragility.

Fragility asks: if the layouts were computed for one hardware/software setting
and that setting changes *at query time* (without recomputing the layouts),
how much does the estimated workload runtime change?

* Figure 8 varies the I/O buffer size (0.08 MB … 8000 MB around the 8 MB
  default) — the parameter with by far the largest impact (up to ~24x).
* Figure 11 varies the block size, the disk read bandwidth and the seek time —
  all of which turn out to matter far less (<1%, ~40%, <5% respectively).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.cost.disk import DEFAULT_DISK, KB, MB, DiskCharacteristics
from repro.cost.hdd import HDDCostModel
from repro.core.algorithm import get_algorithm
from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.metrics.fragility import fragility
from repro.workload import tpch
from repro.workload.workload import Workload

#: Layout producers compared in the fragility figures: the two representative
#: algorithms plus both baselines, as in the paper.
FRAGILITY_SUBJECTS = ("hillclimb", "navathe", "column", "row")

#: Buffer sizes of Figure 8 (bytes).
FIGURE8_BUFFER_SIZES = (
    int(0.08 * MB),
    int(0.8 * MB),
    8 * MB,
    80 * MB,
    800 * MB,
    8000 * MB,
)

#: Block sizes of Figure 11(a) (bytes).
FIGURE11_BLOCK_SIZES = (512, 1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB)

#: Read bandwidths of Figure 11(b) (bytes/second).
FIGURE11_BANDWIDTHS = tuple(int(mbps * MB) for mbps in (60, 70, 80, 90, 100, 110, 120))

#: Seek times of Figure 11(c) (seconds).
FIGURE11_SEEK_TIMES = (3.5e-3, 4e-3, 4.5e-3, 4.84e-3, 5e-3, 5.5e-3, 6e-3)


def _layouts_for(
    subjects: Sequence[str],
    workloads: Mapping[str, Workload],
    cost_model: HDDCostModel,
) -> Dict[str, Dict[str, Partitioning]]:
    """Layouts of every subject per table, computed under ``cost_model``."""
    layouts: Dict[str, Dict[str, Partitioning]] = {}
    for subject in subjects:
        layouts[subject] = {}
        for table, workload in workloads.items():
            if subject == "row":
                layouts[subject][table] = row_partitioning(workload.schema)
            elif subject == "column":
                layouts[subject][table] = column_partitioning(workload.schema)
            else:
                result = get_algorithm(subject).run(workload, cost_model)
                layouts[subject][table] = result.partitioning
    return layouts


def _total_cost(
    layouts: Mapping[str, Partitioning],
    workloads: Mapping[str, Workload],
    cost_model: HDDCostModel,
) -> float:
    return sum(
        cost_model.workload_cost(workload, layouts[table])
        for table, workload in workloads.items()
    )


def buffer_size_fragility(
    buffer_sizes: Sequence[int] = FIGURE8_BUFFER_SIZES,
    subjects: Sequence[str] = FRAGILITY_SUBJECTS,
    scale_factor: float = 10.0,
    base_disk: DiskCharacteristics = DEFAULT_DISK,
) -> List[Dict[str, object]]:
    """Figure 8 rows: fragility (relative cost change) per buffer size and subject."""
    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    base_model = HDDCostModel(base_disk)
    layouts = _layouts_for(subjects, workloads, base_model)
    base_costs = {
        subject: _total_cost(layouts[subject], workloads, base_model)
        for subject in subjects
    }
    rows = []
    for buffer_size in buffer_sizes:
        new_model = HDDCostModel(base_disk.with_buffer_size(buffer_size))
        row: Dict[str, object] = {"buffer_size_mb": buffer_size / MB}
        for subject in subjects:
            new_cost = _total_cost(layouts[subject], workloads, new_model)
            base = base_costs[subject]
            row[subject] = 0.0 if base <= 0 else (new_cost - base) / base
        rows.append(row)
    return rows


def parameter_fragility(
    parameter: str,
    values: Optional[Sequence[float]] = None,
    subjects: Sequence[str] = FRAGILITY_SUBJECTS,
    scale_factor: float = 10.0,
    base_disk: DiskCharacteristics = DEFAULT_DISK,
) -> List[Dict[str, object]]:
    """Figure 11 rows: fragility when changing one disk parameter at query time.

    ``parameter`` is one of ``"block_size"``, ``"read_bandwidth"``,
    ``"seek_time"``; ``values`` defaults to the paper's sweep for that
    parameter.
    """
    defaults = {
        "block_size": FIGURE11_BLOCK_SIZES,
        "read_bandwidth": FIGURE11_BANDWIDTHS,
        "seek_time": FIGURE11_SEEK_TIMES,
    }
    if parameter not in defaults:
        raise ValueError(
            f"parameter must be one of {sorted(defaults)}, got {parameter!r}"
        )
    sweep = values if values is not None else defaults[parameter]

    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    base_model = HDDCostModel(base_disk)
    layouts = _layouts_for(subjects, workloads, base_model)
    base_costs = {
        subject: _total_cost(layouts[subject], workloads, base_model)
        for subject in subjects
    }
    rows = []
    for value in sweep:
        if parameter == "block_size":
            disk = base_disk.with_block_size(int(value))
        elif parameter == "read_bandwidth":
            disk = base_disk.with_read_bandwidth(float(value))
        else:
            disk = base_disk.with_seek_time(float(value))
        new_model = HDDCostModel(disk)
        row: Dict[str, object] = {parameter: value}
        for subject in subjects:
            new_cost = _total_cost(layouts[subject], workloads, new_model)
            base = base_costs[subject]
            row[subject] = 0.0 if base <= 0 else (new_cost - base) / base
        rows.append(row)
    return rows
