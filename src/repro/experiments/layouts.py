"""Figure 14: the computed layouts for every TPC-H table.

The paper closes with a picture of the partitionings each algorithm computes
per table, showing two clear classes: the "HillClimb class" (AutoPart,
HillClimb, HYRISE, Trojan, BruteForce) whose layouts are identical or nearly
identical, and the Navathe/O2P class whose order-constrained layouts differ
significantly.  This driver returns the layouts (as attribute-name groups) so
the benchmark can print them and the tests can compare the classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import (
    DEFAULT_ALGORITHM_ORDER,
    SuiteResult,
    run_suite,
)
from repro.workload import tpch


def computed_layouts(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
) -> List[Dict[str, object]]:
    """Figure 14 rows: one row per (table, algorithm) with the layout's groups."""
    if suite is None:
        suite = run_suite(
            tpch.tpch_workloads(scale_factor=scale_factor), algorithms=algorithms
        )
    rows = []
    for table in suite.tables:
        for algorithm in algorithms:
            if algorithm not in suite.runs:
                continue
            layout = suite.layout(algorithm, table)
            rows.append(
                {
                    "table": table,
                    "algorithm": algorithm,
                    "partition_count": layout.partition_count,
                    "groups": [list(group) for group in layout.as_names()],
                }
            )
    return rows


def layout_classes(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
) -> Dict[str, Dict[str, List[str]]]:
    """Group algorithms by identical layout signature, per table.

    Returns ``{table: {signature_key: [algorithms...]}}`` where algorithms that
    produced exactly the same partitioning share a signature key — the
    "HillClimb class" versus "Navathe class" structure of Figure 14.
    """
    if suite is None:
        suite = run_suite(tpch.tpch_workloads(scale_factor=scale_factor))
    classes: Dict[str, Dict[str, List[str]]] = {}
    for table in suite.tables:
        classes[table] = {}
        for algorithm in suite.algorithms:
            if algorithm in ("row", "column"):
                continue
            layout = suite.layout(algorithm, table)
            key = " | ".join(
                ",".join(group) for group in sorted(layout.as_names())
            )
            classes[table].setdefault(key, []).append(algorithm)
    return classes
