"""Plain-text report rendering used by the benchmark harnesses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_percentage(value: float, decimals: int = 2) -> str:
    """Format a fraction as a signed percentage string, e.g. ``+3.71%``."""
    return f"{value * 100:+.{decimals}f}%"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Parameters
    ----------
    rows:
        The data; every row is a mapping from column name to value.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    float_format:
        Format applied to float values.
    """
    if not rows:
        return title or "(empty table)"
    column_names = list(columns) if columns else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(name, "")) for name in column_names] for row in rows]
    widths = [
        max(len(column_names[i]), *(len(row[i]) for row in rendered))
        for i in range(len(column_names))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(column_names))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
