"""Figures 1 and 2: optimisation time.

Figure 1 shows the total optimisation time of each algorithm over all TPC-H
tables (log scale); the paper's headline is that every heuristic is 3–5 orders
of magnitude faster than brute force while O2P is the fastest.  Figure 2 shows
how the optimisation time of the five fast algorithms grows with the workload
size (the first ``k`` TPC-H queries, k = 1..22); Navathe and AutoPart grow
more steeply than HillClimb, HYRISE and O2P.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.core.algorithm import get_algorithm
from repro.experiments.runner import DEFAULT_ALGORITHM_ORDER, SuiteResult, run_suite
from repro.workload import tpch

#: Algorithms shown in Figure 2 (Trojan and brute force are excluded by the
#: paper because their times are orders of magnitude larger and distort the
#: graph).
FIGURE2_ALGORITHMS = ("autopart", "hillclimb", "hyrise", "navathe", "o2p")


def optimization_times(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
) -> List[Dict[str, object]]:
    """Figure 1 rows: total optimisation time per algorithm over all tables.

    Returns one row per algorithm with the summed wall-clock optimisation time
    and whether any per-table run used the brute-force fallback.
    """
    if suite is None:
        suite = run_suite(
            tpch.tpch_workloads(scale_factor=scale_factor), algorithms=algorithms
        )
    rows = []
    for algorithm in algorithms:
        if algorithm not in suite.runs:
            continue
        rows.append(
            {
                "algorithm": algorithm,
                "optimization_time_s": suite.total_optimization_time(algorithm),
                "approximate": suite.is_approximate(algorithm),
            }
        )
    return rows


def optimization_time_vs_workload_size(
    max_queries: int = 22,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = FIGURE2_ALGORITHMS,
    cost_model: Optional[CostModel] = None,
) -> List[Dict[str, object]]:
    """Figure 2 rows: optimisation time of each algorithm for the first k queries.

    Returns one row per ``k`` with a column per algorithm holding the summed
    optimisation time over all TPC-H tables touched by the first ``k`` queries.
    """
    model = cost_model if cost_model is not None else HDDCostModel()
    rows = []
    for k in range(1, max_queries + 1):
        workloads = tpch.tpch_workloads(scale_factor=scale_factor, num_queries=k)
        row: Dict[str, object] = {"k": k}
        for name in algorithms:
            total = 0.0
            for workload in workloads.values():
                algorithm = get_algorithm(name)
                result = algorithm.run(workload, model)
                total += result.optimization_time
            row[name] = total
        rows.append(row)
    return rows
