"""Experiment drivers: one function per table/figure of the paper.

Every driver returns plain data structures (lists of dicts keyed by the same
labels the paper uses) so that the benchmark harnesses in ``benchmarks/`` can
print them and the integration tests can assert on their shape.  The mapping
from paper artefact to driver:

==============  ==========================================================
Figure 1        :func:`repro.experiments.optimization_time.optimization_times`
Figure 2        :func:`repro.experiments.optimization_time.optimization_time_vs_workload_size`
Figure 3        :func:`repro.experiments.quality.estimated_workload_runtimes`
Figure 4        :func:`repro.experiments.quality.unnecessary_data_read`
Figure 5        :func:`repro.experiments.quality.tuple_reconstruction_joins`
Figure 6        :func:`repro.experiments.quality.distance_from_pmv`
Figure 7        :func:`repro.experiments.workload_scaling.improvement_over_column_vs_k`
Table 3         :func:`repro.experiments.workload_scaling.unnecessary_reads_vs_k`
Table 4         :func:`repro.experiments.workload_scaling.reconstruction_joins_vs_k`
Figure 8        :func:`repro.experiments.fragility.buffer_size_fragility`
Figure 9        :func:`repro.experiments.sweet_spots.buffer_size_sweet_spots`
Figure 10       :func:`repro.experiments.payoff.payoff_over_baselines`
Figure 11       :func:`repro.experiments.fragility.parameter_fragility`
Figure 12       :func:`repro.experiments.sweet_spots.parameter_sweet_spots`
Figure 13       :func:`repro.experiments.sweet_spots.scale_factor_sweet_spots`
Figure 14       :func:`repro.experiments.layouts.computed_layouts`
Table 1 / 2     :mod:`repro.core.classification`
Table 5         :func:`repro.experiments.quality.improvement_over_column_by_benchmark`
Table 6         :func:`repro.experiments.quality.improvement_over_column_by_cost_model`
Table 7         :func:`repro.experiments.dbms_x_experiment.dbms_x_runtimes`
                (simulated) and :func:`repro.experiments.engine_x.engine_x_runtimes`
                (measured on SQLite); both emit the shared row schema of
                :mod:`repro.experiments.table7`
==============  ==========================================================

Beyond the paper's figures, :func:`repro.experiments.adaptive.adaptive_policy_comparison`
drives the dynamic-workload scenario (``docs/ONLINE.md``): online policies on
a drifting query stream, charged cumulative scan + re-organisation cost, and
:mod:`repro.experiments.validation` re-derives Figure 3's *measured* shape by
executing every algorithm's layout on the vectorized scan backend
(``docs/EXECUTION.md``) and comparing against the estimates.
"""

from repro.experiments.runner import (
    SuiteResult,
    TableRun,
    run_suite,
    DEFAULT_ALGORITHM_ORDER,
)
from repro.experiments import (
    optimization_time,
    quality,
    workload_scaling,
    fragility,
    sweet_spots,
    payoff,
    layouts,
    dbms_x_experiment,
    engine_x,
    table7,
    adaptive,
    validation,
)
from repro.experiments.report import format_table, format_percentage

__all__ = [
    "run_suite",
    "SuiteResult",
    "TableRun",
    "DEFAULT_ALGORITHM_ORDER",
    "optimization_time",
    "quality",
    "workload_scaling",
    "fragility",
    "sweet_spots",
    "payoff",
    "layouts",
    "dbms_x_experiment",
    "engine_x",
    "table7",
    "adaptive",
    "validation",
    "format_table",
    "format_percentage",
]
