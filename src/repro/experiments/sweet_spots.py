"""Figures 9, 12 and 13: where does vertical partitioning make sense?

Instead of keeping a stale layout (the fragility experiments), these
experiments *re-optimise* the layouts for every parameter value and report the
workload cost normalised by the column layout's cost under the same
parameters.  Values below 100% mean the column-grouped layout beats the pure
column layout for that setting.

* Figure 9 sweeps the I/O buffer size and also shows the perfect materialised
  views reference.  The paper's key finding: vertical partitioning beats the
  column layout only for buffers below roughly 100 MB.
* Figure 12 sweeps block size, read bandwidth and seek time (little effect,
  "no interesting regions").
* Figure 13 sweeps buffer size and the dataset scale factor together for
  HillClimb and Navathe.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.algorithms.baselines import PerfectMaterializedViews
from repro.core.algorithm import get_algorithm
from repro.core.partitioning import column_partitioning, row_partitioning
from repro.cost.disk import DEFAULT_DISK, KB, MB, DiskCharacteristics
from repro.cost.hdd import HDDCostModel
from repro.workload import tpch
from repro.workload.workload import Workload

#: Buffer sizes of Figure 9 / 13 (bytes): 0.01 MB .. 10 000 MB, log-spaced.
FIGURE9_BUFFER_SIZES = tuple(
    int(size * MB) for size in (0.01, 0.1, 1, 10, 100, 1_000, 10_000)
)

#: Algorithms shown in Figures 9, 12 and 13.
SWEET_SPOT_ALGORITHMS = ("hillclimb", "navathe")

#: Parameter sweeps for Figure 12.
FIGURE12_BLOCK_SIZES = (2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB)
FIGURE12_BANDWIDTHS = tuple(int(m * MB) for m in (70, 90, 110, 130, 150, 170, 190))
FIGURE12_SEEK_TIMES = (1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3, 7e-3)

#: Scale factors of Figure 13.
FIGURE13_SCALE_FACTORS = (0.1, 1.0, 10.0, 100.0)


def _normalized_costs_for_disk(
    disk: DiskCharacteristics,
    workloads: Mapping[str, Workload],
    algorithms: Sequence[str],
    include_pmv: bool = True,
    include_row: bool = False,
) -> Dict[str, float]:
    """Re-optimise for ``disk`` and return per-subject cost / column cost."""
    model = HDDCostModel(disk)
    column_total = sum(
        model.workload_cost(workload, column_partitioning(workload.schema))
        for workload in workloads.values()
    )
    results: Dict[str, float] = {}
    for name in algorithms:
        total = 0.0
        for workload in workloads.values():
            result = get_algorithm(name).run(workload, model)
            total += result.estimated_cost
        results[name] = total / column_total if column_total > 0 else 0.0
    if include_pmv:
        pmv = PerfectMaterializedViews()
        pmv_total = sum(
            pmv.workload_cost(workload, model) for workload in workloads.values()
        )
        results["pmv"] = pmv_total / column_total if column_total > 0 else 0.0
    if include_row:
        row_total = sum(
            model.workload_cost(workload, row_partitioning(workload.schema))
            for workload in workloads.values()
        )
        results["row"] = row_total / column_total if column_total > 0 else 0.0
    results["column"] = 1.0
    return results


def buffer_size_sweet_spots(
    buffer_sizes: Sequence[int] = FIGURE9_BUFFER_SIZES,
    algorithms: Sequence[str] = SWEET_SPOT_ALGORITHMS,
    scale_factor: float = 10.0,
    tables: Optional[Sequence[str]] = None,
    base_disk: DiskCharacteristics = DEFAULT_DISK,
) -> List[Dict[str, object]]:
    """Figure 9 rows: normalised cost per buffer size when re-optimising each time."""
    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    if tables is not None:
        workloads = {name: workloads[name] for name in tables}
    rows = []
    for buffer_size in buffer_sizes:
        disk = base_disk.with_buffer_size(buffer_size)
        normalized = _normalized_costs_for_disk(disk, workloads, algorithms)
        row: Dict[str, object] = {"buffer_size_mb": buffer_size / MB}
        row.update(normalized)
        rows.append(row)
    return rows


def parameter_sweet_spots(
    parameter: str,
    values: Optional[Sequence[float]] = None,
    algorithms: Sequence[str] = SWEET_SPOT_ALGORITHMS,
    scale_factor: float = 10.0,
    tables: Optional[Sequence[str]] = None,
    base_disk: DiskCharacteristics = DEFAULT_DISK,
) -> List[Dict[str, object]]:
    """Figure 12 rows: absolute estimated runtimes when re-optimising per value.

    Unlike Figure 9 the paper plots absolute runtimes here, so the rows hold
    the total estimated cost per subject (including Row, Column and the
    query-optimal PMV reference).
    """
    defaults = {
        "block_size": FIGURE12_BLOCK_SIZES,
        "read_bandwidth": FIGURE12_BANDWIDTHS,
        "seek_time": FIGURE12_SEEK_TIMES,
    }
    if parameter not in defaults:
        raise ValueError(
            f"parameter must be one of {sorted(defaults)}, got {parameter!r}"
        )
    sweep = values if values is not None else defaults[parameter]
    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    if tables is not None:
        workloads = {name: workloads[name] for name in tables}

    rows = []
    for value in sweep:
        if parameter == "block_size":
            disk = base_disk.with_block_size(int(value))
        elif parameter == "read_bandwidth":
            disk = base_disk.with_read_bandwidth(float(value))
        else:
            disk = base_disk.with_seek_time(float(value))
        model = HDDCostModel(disk)
        row: Dict[str, object] = {parameter: value}
        for name in algorithms:
            total = 0.0
            for workload in workloads.values():
                total += get_algorithm(name).run(workload, model).estimated_cost
            row[name] = total
        row["column"] = sum(
            model.workload_cost(w, column_partitioning(w.schema))
            for w in workloads.values()
        )
        row["row"] = sum(
            model.workload_cost(w, row_partitioning(w.schema))
            for w in workloads.values()
        )
        pmv = PerfectMaterializedViews()
        row["query_optimal"] = sum(
            pmv.workload_cost(w, model) for w in workloads.values()
        )
        rows.append(row)
    return rows


def scale_factor_sweet_spots(
    algorithm: str = "hillclimb",
    buffer_sizes: Sequence[int] = FIGURE9_BUFFER_SIZES,
    scale_factors: Sequence[float] = FIGURE13_SCALE_FACTORS,
    tables: Optional[Sequence[str]] = None,
    base_disk: DiskCharacteristics = DEFAULT_DISK,
) -> List[Dict[str, object]]:
    """Figure 13 rows: normalised cost per (scale factor, buffer size) pair."""
    rows = []
    for scale_factor in scale_factors:
        workloads = tpch.tpch_workloads(scale_factor=scale_factor)
        if tables is not None:
            workloads = {name: workloads[name] for name in tables}
        for buffer_size in buffer_sizes:
            disk = base_disk.with_buffer_size(buffer_size)
            normalized = _normalized_costs_for_disk(
                disk, workloads, [algorithm], include_pmv=False
            )
            rows.append(
                {
                    "scale_factor": scale_factor,
                    "buffer_size_mb": buffer_size / MB,
                    algorithm: normalized[algorithm],
                }
            )
    return rows
