"""Figure 7 and Tables 3–4: behaviour as the workload grows query by query.

The paper re-optimises the layouts for the first ``k`` TPC-H queries
(k = 1..22) and reports, over the Lineitem table,

* Figure 7 — the improvement of HillClimb and Navathe over the column layout,
* Table 3 — the fraction of unnecessary data read for k = 1..6, and
* Table 4 — the average number of tuple-reconstruction joins for k = 1..6
  (HillClimb versus Column).

The findings: Navathe's improvement collapses (and goes negative) once the
fourth query arrives because its layout starts reading >30% unnecessary data,
while HillClimb's improvement shrinks gradually because more and more
tuple-reconstruction joins (random I/O) are needed as partitions get narrower.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import column_partitioning
from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.metrics.quality import (
    average_reconstruction_joins,
    improvement_over,
    unnecessary_data_fraction,
)
from repro.workload import tpch

#: Algorithms compared in Figure 7 (the paper singles out one representative
#: per class: HillClimb for the bottom-up/optimal class, Navathe for top-down).
FIGURE7_ALGORITHMS = ("hillclimb", "navathe")


def improvement_over_column_vs_k(
    table: str = "lineitem",
    max_queries: int = 22,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = FIGURE7_ALGORITHMS,
    cost_model: Optional[CostModel] = None,
) -> List[Dict[str, object]]:
    """Figure 7 rows: improvement over Column when re-optimising for the first k queries."""
    model = cost_model if cost_model is not None else HDDCostModel()
    rows = []
    for k in range(1, max_queries + 1):
        workload = tpch.tpch_workload(table, scale_factor=scale_factor, num_queries=k)
        column_cost = model.workload_cost(
            workload, column_partitioning(workload.schema)
        )
        row: Dict[str, object] = {"k": k}
        for name in algorithms:
            result = get_algorithm(name).run(workload, model)
            row[name] = improvement_over(column_cost, result.estimated_cost)
        rows.append(row)
    return rows


def unnecessary_reads_vs_k(
    table: str = "lineitem",
    max_queries: int = 6,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = FIGURE7_ALGORITHMS,
    cost_model: Optional[CostModel] = None,
) -> List[Dict[str, object]]:
    """Table 3 rows: unnecessary data read on ``table`` for the first k queries."""
    model = cost_model if cost_model is not None else HDDCostModel()
    rows = []
    for k in range(1, max_queries + 1):
        workload = tpch.tpch_workload(table, scale_factor=scale_factor, num_queries=k)
        row: Dict[str, object] = {"k": k}
        for name in algorithms:
            result = get_algorithm(name).run(workload, model)
            row[name] = unnecessary_data_fraction(workload, result.partitioning)
        rows.append(row)
    return rows


def reconstruction_joins_vs_k(
    table: str = "lineitem",
    max_queries: int = 6,
    scale_factor: float = 10.0,
    algorithm: str = "hillclimb",
    cost_model: Optional[CostModel] = None,
) -> List[Dict[str, object]]:
    """Table 4 rows: average tuple-reconstruction joins for the first k queries.

    Compares the named algorithm's layout against the column layout, exactly
    as Table 4 does for HillClimb.
    """
    model = cost_model if cost_model is not None else HDDCostModel()
    rows = []
    for k in range(1, max_queries + 1):
        workload = tpch.tpch_workload(table, scale_factor=scale_factor, num_queries=k)
        result = get_algorithm(algorithm).run(workload, model)
        column_layout = column_partitioning(workload.schema)
        rows.append(
            {
                "k": k,
                algorithm: average_reconstruction_joins(workload, result.partitioning),
                "column": average_reconstruction_joins(workload, column_layout),
            }
        )
    return rows
