"""Figure 10: pay-off of vertical partitioning over Row and over Column.

The pay-off is the fraction (or multiple) of the workload that must execute
before the time invested in partitioning (optimisation plus layout creation)
is recovered by the runtime improvement over a baseline.  The paper finds that
every algorithm pays off over Row after about a quarter of the TPC-H workload,
while paying off over Column takes tens to hundreds of workload executions —
and never happens for Navathe and O2P, whose layouts are worse than Column.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cost.creation import estimate_creation_time
from repro.cost.disk import DEFAULT_DISK, DiskCharacteristics
from repro.experiments.runner import (
    DEFAULT_ALGORITHM_ORDER,
    SuiteResult,
    run_suite,
)
from repro.metrics.payoff import payoff_fraction
from repro.workload import tpch


def payoff_over_baselines(
    suite: Optional[SuiteResult] = None,
    scale_factor: float = 10.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
    disk: DiskCharacteristics = DEFAULT_DISK,
) -> List[Dict[str, object]]:
    """Figure 10 rows: pay-off of each algorithm over Row and over Column.

    Returns one row per algorithm with ``payoff_over_row`` and
    ``payoff_over_column`` expressed as a fraction of one workload execution
    (0.25 = a quarter of the workload; 44.5 = forty-four and a half workload
    executions; negative = never pays off).
    """
    if suite is None:
        suite = run_suite(
            tpch.tpch_workloads(scale_factor=scale_factor), algorithms=algorithms
        )
    row_total = suite.total_cost("row")
    column_total = suite.total_cost("column")
    rows = []
    for algorithm in algorithms:
        if algorithm not in suite.runs:
            continue
        creation_time = sum(
            estimate_creation_time(run.partitioning, disk)
            for run in suite.runs[algorithm].values()
        )
        optimization_time = suite.total_optimization_time(algorithm)
        cost = suite.total_cost(algorithm)
        rows.append(
            {
                "algorithm": algorithm,
                "optimization_time_s": optimization_time,
                "creation_time_s": creation_time,
                "payoff_over_row": payoff_fraction(
                    optimization_time, creation_time, row_total, cost
                ),
                "payoff_over_column": payoff_fraction(
                    optimization_time, creation_time, column_total, cost
                ),
            }
        )
    return rows
