"""Estimated-vs-measured validation: Figure 3's shape, executed.

Figure 3 of the paper plots the *measured* workload runtime of every
algorithm's layout (plus the Row and Column baselines) on its test system;
the reproduction's other drivers report the analytical estimate instead.
This driver closes the gap on synthetic TPC-H: it runs every algorithm per
table, executes each recommended layout on the vectorized scan executor
(:mod:`repro.exec`), and reports the estimated and measured runtimes side by
side — the figure's shape (which algorithms cluster at the bottom, Row at the
top, the affinity family in between) should survive measurement, and the
agreement summary quantifies how well it does.

Like every driver in this package, the functions return plain list-of-dict
rows for the benchmark harness to print and the integration tests to assert
on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.advisor import LayoutAdvisor
from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.exec.validation import CostValidationReport
from repro.metrics.agreement import relative_error, spearman_rank_correlation
from repro.workload import tpch

#: Tables small enough to validate in seconds at the default measured scale.
DEFAULT_TABLES = ("partsupp", "customer", "supplier")

#: Algorithms of the Figure 3 comparison; brute force is excluded by default
#: because its enumeration explodes on the wider tables (narrow tables can
#: pass ``algorithms=(..., "brute-force")`` explicitly).
DEFAULT_ALGORITHMS = ("autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan")


def validation_reports(
    tables: Sequence[str] = DEFAULT_TABLES,
    scale_factor: float = 0.1,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    rows: Optional[int] = None,
    data_seed: int = 0,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, CostValidationReport]:
    """One :class:`CostValidationReport` per TPC-H table.

    Each table's report validates every algorithm's recommendation plus the
    Row and Column baselines at the executor's measured scale.
    """
    model = cost_model if cost_model is not None else HDDCostModel()
    advisor = LayoutAdvisor(cost_model=model, algorithms=algorithms)
    reports: Dict[str, CostValidationReport] = {}
    for table in tables:
        workload = tpch.tpch_workload(table, scale_factor=scale_factor)
        reports[table] = advisor.validate_costs(
            workload, rows=rows, data_seed=data_seed
        )
    return reports


def estimated_vs_measured_runtimes(
    reports: Optional[Dict[str, CostValidationReport]] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """Figure 3 rows, twice over: per layout, total runtime across tables.

    One row per layout label (each algorithm plus ``row`` and ``column``),
    summed over every validated table, sorted cheapest-measured first —
    the figure's bar ordering, with the estimated bars alongside.
    """
    if reports is None:
        reports = validation_reports(**kwargs)
    predicted: Dict[str, float] = {}
    measured: Dict[str, float] = {}
    for report in reports.values():
        for validation in report.validations:
            predicted[validation.label] = (
                predicted.get(validation.label, 0.0) + validation.predicted_seconds
            )
            measured[validation.label] = (
                measured.get(validation.label, 0.0) + validation.measured_io_seconds
            )
    rows = []
    for label in sorted(measured, key=measured.get):
        rows.append(
            {
                "layout": label,
                "estimated_runtime_s": predicted[label],
                "measured_runtime_s": measured[label],
                "rel err %": 100.0 * relative_error(predicted[label], measured[label]),
            }
        )
    return rows


def agreement_summary(
    reports: Optional[Dict[str, CostValidationReport]] = None,
    **kwargs,
) -> Dict[str, object]:
    """Headline agreement numbers over a set of validation reports.

    ``rank_correlation`` pools every (predicted, measured) pair across all
    tables; ``per_table`` keeps each table's own correlation and error
    statistics so a single misbehaving schema cannot hide in the pool.
    """
    if reports is None:
        reports = validation_reports(**kwargs)
    predicted: List[float] = []
    measured: List[float] = []
    per_table: Dict[str, Dict[str, float]] = {}
    worst = 0.0
    for table, report in reports.items():
        for validation in report.validations:
            predicted.append(validation.predicted_seconds)
            measured.append(validation.measured_io_seconds)
        worst = max(worst, report.max_absolute_relative_error)
        per_table[table] = {
            "rank_correlation": report.rank_correlation,
            "mean_absolute_relative_error": report.mean_absolute_relative_error,
            "max_absolute_relative_error": report.max_absolute_relative_error,
        }
    return {
        "rank_correlation": spearman_rank_correlation(predicted, measured),
        "max_absolute_relative_error": worst,
        "layouts_validated": len(predicted),
        "per_table": per_table,
    }
