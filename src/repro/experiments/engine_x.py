"""Table 7 on a real engine: TPC-H layouts executed on embedded SQLite.

The simulated driver (:mod:`repro.experiments.dbms_x_experiment`) reproduces
Table 7 on a DBMS-X model we wrote ourselves.  This driver replaces guesswork
with measurement: it materialises the same three layouts (row, column,
HillClimb) as real SQLite tables via
:class:`repro.engine_x.executor.SQLiteExecutor` and times the TPC-H
workloads — query 9 excluded, exactly as the paper's DBMS-X runs exclude it —
under two record encodings:

* **rowid tables** — SQLite's default varint-packed records, the analogue of
  DBMS-X's varying-length default encoding;
* **``WITHOUT ROWID`` tables** — records clustered on the fixed-width
  ``__rid__`` key, the closest SQLite analogue of a fixed-width/dictionary
  encoding.

Rows use the shared Table-7 schema of :mod:`repro.experiments.table7`, so
simulated and real rows render in one headline table
(:func:`table7_report`).  Absolute seconds are host hardware, not the paper's
2005 testbed, and one shape diverges by design: the paper's Row >> Column is
a disk-bandwidth effect, while these warm in-memory runs make byte savings
cheap and rowid joins expensive, so Row stays fastest (see
``docs/ENGINE_X.md``).  The paper's *grouping* claim does transfer — at every
scale tested HillClimb beats Column because it avoids unnecessary
tuple-reconstruction joins, and that is the shape the benchmark asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine_x.executor import DEFAULT_PAGE_SIZE, SQLiteExecutor
from repro.experiments.table7 import (
    TABLE7_LAYOUTS,
    format_table7,
    table7_layouts,
    table7_row,
)
from repro.storage.data import generate_table_data
from repro.storage.dbms_x import EXCLUDED_QUERIES
from repro.workload import tpch
from repro.workload.workload import Workload

#: Engine label the real-engine rows carry in the shared Table-7 schema.
ENGINE_LABEL = "sqlite"

#: The two record encodings, mapped to the executor's ``without_rowid`` flag.
ENCODINGS: Tuple[Tuple[str, bool], ...] = (
    ("Varying length (rowid)", False),
    ("Fixed width (WITHOUT ROWID)", True),
)

#: Row count the tables are materialised at.  Large enough that scan cost
#: dominates SQLite's fixed per-query overhead (the regime where the
#: HillClimb-beats-Column shape is stable), small enough to materialise in
#: seconds.
DEFAULT_ENGINE_ROWS = 20_000

#: Tables the driver runs by default — the same trio the simulated Table-7
#: integration test exercises.
DEFAULT_TABLES = ("partsupp", "customer", "supplier")


def engine_x_workloads(
    scale_factor: float = 10.0,
    tables: Optional[Sequence[str]] = DEFAULT_TABLES,
) -> Dict[str, Workload]:
    """The TPC-H workloads the engine runs: per table, query 9 excluded."""
    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    if tables is not None:
        workloads = {name: workloads[name] for name in tables}
    filtered: Dict[str, Workload] = {}
    for name, workload in workloads.items():
        queries = [
            query for query in workload.queries
            if query.name not in EXCLUDED_QUERIES
        ]
        if queries:
            filtered[name] = Workload(workload.schema, queries, name=workload.name)
    return filtered


def engine_x_runtimes(
    scale_factor: float = 10.0,
    layouts: Sequence[str] = TABLE7_LAYOUTS,
    tables: Optional[Sequence[str]] = DEFAULT_TABLES,
    rows: int = DEFAULT_ENGINE_ROWS,
    data_seed: int = 0,
    page_size: int = DEFAULT_PAGE_SIZE,
    repeats: int = 3,
    database_dir: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Table 7 rows measured on SQLite: one row per encoding, column per layout.

    Every (encoding, layout, table) combination materialises its own database
    but all share one deterministic dataset per table, so the timed runs
    differ only in physical design.
    """
    workloads = engine_x_workloads(scale_factor=scale_factor, tables=tables)
    layout_map = table7_layouts(workloads, layouts)

    data: Dict[str, Dict[str, np.ndarray]] = {}
    capped: Dict[str, int] = {}
    for table, workload in workloads.items():
        capped[table] = max(1, min(int(rows), workload.schema.row_count))
        schema = workload.schema.with_row_count(capped[table])
        data[table] = generate_table_data(schema, random_state=data_seed)

    result: List[Dict[str, object]] = []
    for encoding, without_rowid in ENCODINGS:
        runtimes = {name: 0.0 for name in layouts}
        for table, workload in workloads.items():
            for name in layouts:
                executor = SQLiteExecutor(
                    layout_map[name][table],
                    rows=capped[table],
                    data_seed=data_seed,
                    page_size=page_size,
                    without_rowid=without_rowid,
                    repeats=repeats,
                    database_dir=database_dir,
                    data=data[table],
                )
                try:
                    runtimes[name] += executor.execute_workload(workload).elapsed_seconds
                finally:
                    executor.close()
        result.append(table7_row(ENGINE_LABEL, encoding, runtimes, layouts))
    return result


def table7_report(
    scale_factor: float = 10.0,
    tables: Optional[Sequence[str]] = DEFAULT_TABLES,
    rows: int = DEFAULT_ENGINE_ROWS,
    **engine_options,
) -> str:
    """The combined Table-7 report: simulated DBMS-X rows above SQLite rows."""
    from repro.experiments.dbms_x_experiment import dbms_x_runtimes

    combined = dbms_x_runtimes(scale_factor=scale_factor, tables=tables)
    combined += engine_x_runtimes(
        scale_factor=scale_factor, tables=tables, rows=rows, **engine_options
    )
    return format_table7(combined)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(table7_report())
