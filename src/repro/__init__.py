"""repro — a vertical partitioning advisor library.

This package reproduces *"A Comparison of Knives for Bread Slicing"*
(Jindal, Palatinus, Pavlov, Dittrich — PVLDB 6(6), 2013): an experimental
comparison of vertical partitioning algorithms for row-oriented database
systems under a unified setting.

Quickstart
----------

>>> from repro import LayoutAdvisor, tpch
>>> workload = tpch.tpch_workload("partsupp", scale_factor=1)
>>> advisor = LayoutAdvisor()
>>> report = advisor.recommend(workload)
>>> print(report.best.partitioning.describe())

The public surface re-exported here:

* workload model — :class:`Column`, :class:`TableSchema`, :class:`Query`,
  :class:`Workload`, plus the :mod:`~repro.workload.tpch`,
  :mod:`~repro.workload.ssb` and :mod:`~repro.workload.synthetic` generators;
* cost models — :class:`DiskCharacteristics`, :class:`HDDCostModel`,
  :class:`MainMemoryCostModel`;
* core API — :class:`Partition`, :class:`Partitioning`,
  :class:`LayoutAdvisor`, :func:`get_algorithm`,
  :func:`available_algorithms`;
* metrics — :mod:`repro.metrics`;
* experiment drivers for every table and figure — :mod:`repro.experiments`;
* the streaming/adaptive re-partitioning subsystem — :mod:`repro.online`
  (query streams, windowed statistics, drift triggers, the pay-off-gated
  :class:`~repro.online.controller.AdaptiveAdvisor`; see ``docs/ONLINE.md``);
* the comparison-grid subsystem — :mod:`repro.grid` (declarative
  algorithm x workload x cost model grids, parallel execution, persistent
  content-hash result cache; ``python -m repro.grid``, see ``docs/GRID.md``);
* the measured-execution backend — :mod:`repro.exec` (vectorized scan
  executor over numpy-materialised layouts, estimated-vs-measured validation
  via :meth:`~repro.core.advisor.LayoutAdvisor.validate_costs` and
  ``python -m repro.grid --backend measured``; see ``docs/EXECUTION.md``).
"""

from repro.workload import Column, Query, TableSchema, Workload
from repro.workload import tpch, ssb, star, synthetic, telemetry
from repro.cost import (
    DEFAULT_DISK,
    DiskCharacteristics,
    HDDCostModel,
    MainMemoryCostModel,
)
from repro.core import (
    LayoutAdvisor,
    Partition,
    Partitioning,
    available_algorithms,
    column_partitioning,
    get_algorithm,
    row_partitioning,
)
from repro import algorithms, grid, metrics, online
from repro import exec as exec_backend  # "exec" shadows the builtin if imported bare

__version__ = "1.0.0"

__all__ = [
    "Column",
    "TableSchema",
    "Query",
    "Workload",
    "tpch",
    "ssb",
    "star",
    "synthetic",
    "telemetry",
    "DiskCharacteristics",
    "DEFAULT_DISK",
    "HDDCostModel",
    "MainMemoryCostModel",
    "Partition",
    "Partitioning",
    "row_partitioning",
    "column_partitioning",
    "LayoutAdvisor",
    "get_algorithm",
    "available_algorithms",
    "algorithms",
    "grid",
    "metrics",
    "online",
    "exec_backend",
    "__version__",
]
