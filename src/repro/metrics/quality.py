""""How good" metrics: data read, reconstruction joins, improvements, PMV distance.

These are the derived measures behind Figures 3–7 and Tables 3–6 of the paper:

* ``unnecessary_data_fraction`` — Figure 4: the share of bytes read that no
  query needed (``(read - needed) / read``).
* ``average_reconstruction_joins`` — Figure 5 and Table 4: the number of
  tuple-reconstruction joins per tuple, i.e. referenced partitions minus one,
  averaged over queries.
* ``improvement_over`` — the relative improvement of a layout over a baseline
  cost (used against Row and Column, Figures 3 and 7, Tables 5 and 6).
* ``distance_from_pmv`` — Figure 6: how far a layout's cost is from the cost
  of perfect materialised views.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.baselines import PerfectMaterializedViews
from repro.core.partitioning import Partitioning
from repro.cost.base import CostModel
from repro.workload.workload import Workload


def bytes_read(
    workload: Workload, partitioning: Partitioning, weighted: bool = True
) -> float:
    """Total bytes read by the workload under ``partitioning``.

    Every referenced partition is read in full (whole column-group files, as
    per the unified storage setting).  Uses logical bytes (row width x row
    count) rather than block-rounded bytes so the measure is independent of
    the disk's block size.
    """
    schema = partitioning.schema
    total = 0.0
    for query in workload:
        weight = query.weight if weighted else 1.0
        referenced = partitioning.referenced_partitions(query)
        row_bytes = sum(partition.row_size(schema) for partition in referenced)
        total += weight * row_bytes * schema.row_count
    return total


def bytes_needed(
    workload: Workload, partitioning: Partitioning, weighted: bool = True
) -> float:
    """Bytes the workload actually needs (referenced attributes only)."""
    schema = partitioning.schema
    total = 0.0
    for query in workload:
        weight = query.weight if weighted else 1.0
        needed_width = sum(schema.width_of(index) for index in query.attribute_indices)
        total += weight * needed_width * schema.row_count
    return total


def unnecessary_data_fraction(workload: Workload, partitioning: Partitioning) -> float:
    """Fraction of the data read that was not needed by any query (Figure 4)."""
    read = bytes_read(workload, partitioning)
    if read <= 0.0:
        return 0.0
    needed = bytes_needed(workload, partitioning)
    return max(0.0, (read - needed) / read)


def average_reconstruction_joins(
    workload: Workload, partitioning: Partitioning
) -> float:
    """Average number of tuple-reconstruction joins per tuple (Figure 5).

    For each query the number of joins is the number of referenced partitions
    minus one; the result is the weighted average over queries.
    """
    total_weight = workload.total_weight
    if total_weight <= 0.0:
        return 0.0
    joins = 0.0
    for query in workload:
        referenced = partitioning.referenced_partitions(query)
        joins += query.weight * max(0, len(referenced) - 1)
    return joins / total_weight


def improvement_over(baseline_cost: float, layout_cost: float) -> float:
    """Relative improvement of a layout over a baseline: (base - cost) / base.

    Positive values mean the layout is cheaper than the baseline; negative
    values mean it is worse (e.g. Navathe and O2P against Column in Table 5).
    """
    if baseline_cost <= 0.0:
        return 0.0
    return (baseline_cost - layout_cost) / baseline_cost


def distance_from_pmv(
    workload: Workload,
    partitioning: Partitioning,
    cost_model: CostModel,
    pmv_cost: Optional[float] = None,
) -> float:
    """Relative distance of a layout's cost from perfect materialised views.

    ``(cost(layout) - cost(PMV)) / cost(PMV)`` — Figure 6.  ``pmv_cost`` can
    be supplied to avoid recomputing the PMV reference in sweeps.
    """
    if pmv_cost is None:
        pmv_cost = PerfectMaterializedViews().workload_cost(workload, cost_model)
    if pmv_cost <= 0.0:
        return 0.0
    layout_cost = cost_model.workload_cost(workload, partitioning)
    return (layout_cost - pmv_cost) / pmv_cost
