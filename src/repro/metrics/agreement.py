"""Estimated-vs-measured agreement metrics.

The paper's credibility argument (Figure 3's workload runtimes, Table 7's
DBMS-X numbers) is that the analytical cost model *agrees* with what a real
execution measures.  Two aspects of agreement matter and are measured
separately:

* **Ranking** — does the model order layouts/cells the same way execution
  does?  :func:`spearman_rank_correlation` (with average ranks for ties); a
  correlation near 1.0 means every comparative conclusion drawn from
  estimates (algorithm A beats B, layout X beats Column) survives
  measurement.
* **Magnitude** — how far off is each individual prediction?
  :func:`relative_error` per pair, :func:`mean_absolute_relative_error` over
  a set of pairs.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def _average_ranks(values: Sequence[float]) -> List[float]:
    """Ranks (1-based), ties receiving the average of their positions."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tied_end = position
        while (
            tied_end + 1 < len(order)
            and values[order[tied_end + 1]] == values[order[position]]
        ):
            tied_end += 1
        average = (position + tied_end) / 2.0 + 1.0
        for tied in range(position, tied_end + 1):
            ranks[order[tied]] = average
        position = tied_end + 1
    return ranks


def spearman_rank_correlation(
    predicted: Sequence[float], measured: Sequence[float]
) -> float:
    """Spearman's rho between two paired value sequences.

    Computed as the Pearson correlation of average ranks (the tie-correct
    form).  Degenerate inputs are resolved in favour of agreement: fewer than
    two pairs, or a constant sequence on either side, yield 1.0 — with no
    variation there is no ranking left to disagree about.
    """
    if len(predicted) != len(measured):
        raise ValueError(
            f"paired sequences must have equal length, got "
            f"{len(predicted)} and {len(measured)}"
        )
    n = len(predicted)
    if n < 2:
        return 1.0
    ranks_p = _average_ranks(predicted)
    ranks_m = _average_ranks(measured)
    mean_p = sum(ranks_p) / n
    mean_m = sum(ranks_m) / n
    covariance = sum(
        (p - mean_p) * (m - mean_m) for p, m in zip(ranks_p, ranks_m)
    )
    variance_p = sum((p - mean_p) ** 2 for p in ranks_p)
    variance_m = sum((m - mean_m) ** 2 for m in ranks_m)
    if variance_p == 0.0 or variance_m == 0.0:
        return 1.0
    return covariance / math.sqrt(variance_p * variance_m)


def relative_error(predicted: float, measured: float) -> float:
    """Signed relative error of a prediction: ``(measured - predicted) / predicted``.

    Positive means the measurement came in above the prediction.  A zero
    prediction with a zero measurement is a perfect prediction (0.0); a zero
    prediction with a non-zero measurement is infinitely wrong.
    """
    if predicted == 0.0:
        return 0.0 if measured == 0.0 else math.inf
    return (measured - predicted) / predicted


def mean_absolute_relative_error(
    pairs: Iterable[Tuple[float, float]]
) -> float:
    """Mean of ``|relative_error|`` over ``(predicted, measured)`` pairs.

    Returns 0.0 for an empty input (no predictions, no error).
    """
    errors = [abs(relative_error(p, m)) for p, m in pairs]
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


def max_absolute_relative_error(
    pairs: Iterable[Tuple[float, float]]
) -> float:
    """Worst ``|relative_error|`` over ``(predicted, measured)`` pairs."""
    errors = [abs(relative_error(p, m)) for p, m in pairs]
    if not errors:
        return 0.0
    return max(errors)
