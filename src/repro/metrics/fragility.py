""""How fragile" and "where does it make sense" metrics.

*Fragility* (Section 6.3, Figures 8 and 11): compute a layout under one cost
model setting, then measure how much the estimated workload cost changes if a
cost-model parameter (buffer size, block size, bandwidth, seek time) changes
at query time **without** recomputing the layout:

``fragility = (cost_new - cost_old) / cost_old``

*Where does it make sense* (Section 6.4, Figures 9, 12 and 13): re-optimise
the layout for every parameter value and report the cost normalised by the
column layout's cost under the same parameters:

``normalized cost = cost(layout) / cost(column) * 100%``
"""

from __future__ import annotations

from repro.core.partitioning import Partitioning, column_partitioning
from repro.cost.base import CostModel
from repro.workload.workload import Workload


def fragility(
    workload: Workload,
    partitioning: Partitioning,
    old_cost_model: CostModel,
    new_cost_model: CostModel,
) -> float:
    """Relative change in workload cost when the setting changes at query time.

    A value of 0 means the layout's cost is unaffected; 24 means the workload
    became 24x more expensive (the paper's worst case when shrinking the
    buffer from 8 MB to 80 KB).
    """
    old_cost = old_cost_model.workload_cost(workload, partitioning)
    if old_cost <= 0.0:
        return 0.0
    new_cost = new_cost_model.workload_cost(workload, partitioning)
    return (new_cost - old_cost) / old_cost


def normalized_cost(
    workload: Workload,
    partitioning: Partitioning,
    cost_model: CostModel,
) -> float:
    """Workload cost normalised by the column layout's cost (as a fraction).

    Values below 1.0 mean the layout beats the column layout under this cost
    model; Figure 9 plots this (as a percentage) against the buffer size.
    """
    column_cost = cost_model.workload_cost(
        workload, column_partitioning(workload.schema)
    )
    if column_cost <= 0.0:
        return 0.0
    return cost_model.workload_cost(workload, partitioning) / column_cost
