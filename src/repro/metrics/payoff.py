"""Pay-off metric (Appendix A.1, Figure 10).

The pay-off expresses how much of the workload has to run before the time
invested in vertical partitioning (optimisation time plus layout creation
time) is recovered by the workload runtime improvement over a baseline:

``pay-off = (optimization_time + creation_time) / improvement``

where ``improvement = cost(baseline) - cost(layout)`` for one execution of the
workload.  A pay-off of 0.25 means a quarter of one workload execution
suffices (the paper's result against Row); a pay-off of 44.5 means the whole
workload must run 44.5 times (AutoPart against Column).  Negative values mean
the layout never pays off because it is worse than the baseline (Navathe and
O2P against Column).
"""

from __future__ import annotations

import math


def payoff_fraction(
    optimization_time: float,
    creation_time: float,
    baseline_cost: float,
    layout_cost: float,
) -> float:
    """Fraction (or multiple) of the workload needed to amortise the investment.

    Returns ``0.0`` when nothing was invested and nothing was gained (keeping
    the current layout is "paid off" immediately — the adaptive controller
    relies on this when it declines a re-partitioning), ``math.inf`` if time
    was invested but the layout's cost equals the baseline exactly (no
    improvement, nothing ever pays off), and a negative number if the layout
    is worse than the baseline.
    """
    if optimization_time < 0 or creation_time < 0:
        raise ValueError("times must be non-negative")
    improvement = baseline_cost - layout_cost
    invested = optimization_time + creation_time
    if improvement == 0.0:
        return 0.0 if invested == 0.0 else math.inf
    return invested / improvement
