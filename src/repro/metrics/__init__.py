"""Comparison metrics (Section 5 of the paper).

The paper introduces four metrics for comparing vertical partitioning
algorithms; this package implements them together with the derived measures
used in the evaluation figures:

* **How fast** — optimisation time (measured by
  :meth:`repro.core.algorithm.PartitioningAlgorithm.run`).
* **How good** — estimated workload cost, improvement over row and column
  layouts, fraction of unnecessary data read, average tuple-reconstruction
  joins, distance from perfect materialised views (:mod:`repro.metrics.quality`).
* **How fragile** — change in workload cost when a cost-model parameter
  changes after the layout was computed (:mod:`repro.metrics.fragility`).
* **Where does it make sense** — workload cost when re-optimising for each
  parameter value, normalised to the column layout
  (:mod:`repro.metrics.fragility`, re-optimising variant), plus the pay-off
  metric of Appendix A.1 (:mod:`repro.metrics.payoff`).

Beyond the paper's four axes, :mod:`repro.metrics.agreement` measures how well
the estimates hold up against the measured-execution backend
(:mod:`repro.exec`): rank correlation and relative error between predicted
and measured runtimes.
"""

from repro.metrics.quality import (
    average_reconstruction_joins,
    bytes_needed,
    bytes_read,
    distance_from_pmv,
    improvement_over,
    unnecessary_data_fraction,
)
from repro.metrics.fragility import fragility, normalized_cost
from repro.metrics.payoff import payoff_fraction
from repro.metrics.agreement import (
    max_absolute_relative_error,
    mean_absolute_relative_error,
    relative_error,
    spearman_rank_correlation,
)

__all__ = [
    "bytes_read",
    "bytes_needed",
    "unnecessary_data_fraction",
    "average_reconstruction_joins",
    "improvement_over",
    "distance_from_pmv",
    "fragility",
    "normalized_cost",
    "payoff_fraction",
    "spearman_rank_correlation",
    "relative_error",
    "mean_absolute_relative_error",
    "max_absolute_relative_error",
]
