"""Measured execution: the backend that makes the cost models falsifiable.

Everywhere else in the library a layout's "runtime" is an *estimate* — a
closed formula over block counts and seek times.  This package actually runs
the layout: :class:`~repro.exec.executor.VectorizedScanExecutor` materialises
a partitioning into numpy-backed column-group files and replays a workload
with bulk buffered scans, tracing blocks and seeks from the walk itself and
measuring the vectorized CPU work.  :mod:`repro.exec.validation` compares
those measurements with the analytical predictions (relative error per
layout, Spearman rank correlation across layouts).

Entry points, closest to farthest:

* :func:`~repro.exec.validation.validate_layouts` — one workload, a named
  set of layouts, one report.
* :meth:`repro.core.advisor.LayoutAdvisor.validate_costs` — run the
  configured algorithms and validate their recommendations in one call.
* ``python -m repro.grid --backend measured`` — every grid cell carries a
  measured section; the aggregate tables add estimated-vs-measured agreement.

See ``docs/EXECUTION.md`` for the measured/modeled split and the invariants.
"""

from repro.exec.executor import (
    DEFAULT_MEASURED_ROWS,
    MeasuredRun,
    MeasuredWorkloadRun,
    VectorizedScanExecutor,
    measured_buffer_sharing,
    measured_disk,
    unwrap_cost_model,
)
from repro.exec.validation import (
    CostValidationReport,
    LayoutValidation,
    validate_layouts,
)

__all__ = [
    "DEFAULT_MEASURED_ROWS",
    "MeasuredRun",
    "MeasuredWorkloadRun",
    "VectorizedScanExecutor",
    "measured_disk",
    "measured_buffer_sharing",
    "unwrap_cost_model",
    "CostValidationReport",
    "LayoutValidation",
    "validate_layouts",
]
