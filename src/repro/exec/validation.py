"""Layout-set validation: estimated costs against measured execution.

:func:`validate_layouts` is the library entry point behind
:meth:`repro.core.advisor.LayoutAdvisor.validate_costs` and the
:mod:`repro.experiments.validation` driver: given one workload and a set of
named layouts (typically each algorithm's recommendation plus the Row and
Column baselines), it executes every layout on the
:class:`~repro.exec.executor.VectorizedScanExecutor`, predicts the same
runtimes with the analytical model at the same measured scale, and packages
the agreement — per-layout relative errors plus the Spearman rank correlation
across layouts — into a :class:`CostValidationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.core.partitioning import Partitioning
from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.exec.executor import VectorizedScanExecutor, unwrap_cost_model
from repro.metrics.agreement import (
    max_absolute_relative_error,
    mean_absolute_relative_error,
    relative_error,
    spearman_rank_correlation,
)
from repro.workload.workload import Workload


def require_measurable(cost_model: CostModel) -> HDDCostModel:
    """The HDD model inside ``cost_model``, unwrapping counting wrappers.

    The measured backend replays buffered disk scans, so only disk-based
    models have a measurable counterpart; a main-memory (cache-miss) model
    predicts a quantity the executor does not observe.
    """
    inner = unwrap_cost_model(cost_model)
    if not isinstance(inner, HDDCostModel):
        raise ValueError(
            f"measured execution validates disk I/O cost models only; "
            f"{inner.describe()} has no buffered-scan counterpart"
        )
    return inner


@dataclass(frozen=True)
class LayoutValidation:
    """Estimated-vs-measured agreement of one layout."""

    label: str
    partitions: int
    predicted_seconds: float
    measured_io_seconds: float
    measured_cpu_seconds: float
    blocks_read: int
    seeks: int
    checksum: int

    @property
    def relative_error(self) -> float:
        """Signed relative error of the prediction against the measured I/O."""
        return relative_error(self.predicted_seconds, self.measured_io_seconds)


@dataclass
class CostValidationReport:
    """Agreement of a whole layout set: per-layout errors plus the ranking."""

    workload_name: str
    cost_model_description: str
    rows: int
    data_seed: int
    validations: List[LayoutValidation]

    @property
    def rank_correlation(self) -> float:
        """Spearman's rho between predicted and measured layout orderings."""
        return spearman_rank_correlation(
            [validation.predicted_seconds for validation in self.validations],
            [validation.measured_io_seconds for validation in self.validations],
        )

    @property
    def mean_absolute_relative_error(self) -> float:
        """Mean |relative error| of the predictions."""
        return mean_absolute_relative_error(self._pairs())

    @property
    def max_absolute_relative_error(self) -> float:
        """Worst |relative error| of the predictions."""
        return max_absolute_relative_error(self._pairs())

    def _pairs(self):
        return [
            (validation.predicted_seconds, validation.measured_io_seconds)
            for validation in self.validations
        ]

    def by_label(self, label: str) -> LayoutValidation:
        """The validation record of one named layout."""
        for validation in self.validations:
            if validation.label == label:
                return validation
        raise KeyError(f"no layout labelled {label!r} in this validation")

    def to_rows(self) -> List[dict]:
        """Tabular form, cheapest measured layout first."""
        rows = []
        for validation in sorted(
            self.validations, key=lambda v: v.measured_io_seconds
        ):
            rows.append(
                {
                    "layout": validation.label,
                    "parts": validation.partitions,
                    "predicted (s)": validation.predicted_seconds,
                    "measured io (s)": validation.measured_io_seconds,
                    "rel err %": 100.0 * validation.relative_error,
                    "cpu (ms)": 1e3 * validation.measured_cpu_seconds,
                    "blocks": validation.blocks_read,
                    "seeks": validation.seeks,
                }
            )
        return rows

    def describe(self) -> str:
        """The agreement table plus the summary line."""
        # Imported here to avoid a circular import at package load time.
        from repro.experiments.report import format_table

        table = format_table(
            self.to_rows(),
            title=(
                f"Estimated vs measured — {self.workload_name} "
                f"({self.cost_model_description}, {self.rows:,} measured rows)"
            ),
        )
        summary = (
            f"rank correlation: {self.rank_correlation:.4f}   "
            f"mean |rel err|: {self.mean_absolute_relative_error * 100:.2f}%   "
            f"max |rel err|: {self.max_absolute_relative_error * 100:.2f}%"
        )
        return f"{table}\n{summary}"


def validate_layouts(
    workload: Workload,
    layouts: Mapping[str, Partitioning],
    cost_model: Optional[CostModel] = None,
    rows: Optional[int] = None,
    data_seed: int = 0,
) -> CostValidationReport:
    """Execute every layout measured and compare against the model's estimate.

    Parameters
    ----------
    workload:
        The workload to replay (full-scale; it is predicted and measured at
        the executor's measured scale).
    layouts:
        Named layouts over ``workload``'s schema, e.g. one per algorithm.
    cost_model:
        The model whose predictions are validated; must contain an
        :class:`~repro.cost.hdd.HDDCostModel` (defaults to the paper's
        testbed model).  Its disk characteristics also price the executor's
        traced I/O.
    rows / data_seed:
        Measured scale and data seed, forwarded to the executor.  All layouts
        share one generated dataset, so the comparison is apples to apples.
    """
    if not layouts:
        raise ValueError("validate_layouts needs at least one layout")
    model = require_measurable(cost_model if cost_model is not None else HDDCostModel())
    validations: List[LayoutValidation] = []
    shared_data = None
    executor = None
    for label, layout in layouts.items():
        executor = VectorizedScanExecutor(
            layout,
            disk=model.disk,
            rows=rows,
            buffer_sharing=model.buffer_sharing,
            data_seed=data_seed,
            data=shared_data,
        )
        if shared_data is None:
            shared_data = executor.data
        run = executor.execute_workload(workload)
        validations.append(
            LayoutValidation(
                label=label,
                partitions=layout.partition_count,
                predicted_seconds=executor.predicted_cost(workload, model),
                measured_io_seconds=run.io_seconds,
                measured_cpu_seconds=run.cpu_seconds,
                blocks_read=run.blocks_read,
                seeks=run.seeks,
                checksum=run.checksum,
            )
        )
    return CostValidationReport(
        workload_name=workload.name,
        cost_model_description=model.describe(),
        rows=executor.rows,
        data_seed=int(data_seed),
        validations=validations,
    )
