"""Vectorized measured-execution backend.

The analytical cost models *predict* workload runtimes with closed formulas;
:class:`VectorizedScanExecutor` closes the loop by *running* the layout: it
materialises a :class:`~repro.core.partitioning.Partitioning` into
numpy-backed column-group files (real arrays from
:mod:`repro.storage.data`, file/page bookkeeping from
:class:`~repro.storage.engine.StorageEngine`) and replays a
:class:`~repro.workload.workload.Workload` with bulk scans — whole
buffer-refill chunks sliced out of each column array at once — instead of the
simulator's tuple-at-a-time walk.

What is measured versus modeled
-------------------------------

There is no real spinning disk in the loop, so the split is:

* **Block and seek counts are traced, not computed**: the executor walks the
  materialised files chunk by chunk exactly as the unified system would (the
  I/O buffer shared among co-read partitions in proportion to their row
  sizes, one seek per refill per partition) and counts what the walk actually
  does.  The trace is produced by a different mechanism than the model's
  closed formulas, so it catches counting bugs (ceil/floor, buffer sharing,
  block packing) the formulas could hide.
* **I/O seconds are the traced counts priced at the disk characteristics**
  (``seeks * seek_time + blocks * block_size / read_bandwidth``) — a
  deterministic function of the trace, which is what lets grid results carry
  measured numbers through the content-addressed cache.
* **CPU seconds are genuinely measured wall clock** of the vectorized numpy
  work (slicing every column of every referenced partition and folding it
  into a checksum, which forces the memory reads).  Wall clock is not
  deterministic, so callers that persist results keep it out of
  content-hashed payload sections (the grid stores it under ``timing``).

Execution runs at a reduced *measured scale*: the schema's row count is
capped at ``rows`` (default :data:`DEFAULT_MEASURED_ROWS`) so that even
``lineitem``-sized tables materialise in milliseconds.  Predictions for the
agreement comparison must be computed over the same scaled schema —
:meth:`VectorizedScanExecutor.predicted_cost` does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.partitioning import Partitioning
from repro.cost.disk import DEFAULT_DISK, DiskCharacteristics
from repro.obs.metrics import counter as _obs_counter, histogram as _obs_histogram
from repro.obs.trace import timed
from repro.storage.data import generate_table_data
from repro.storage.engine import SimulatedDisk, StorageEngine
from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload

# Executor telemetry (docs/OBSERVABILITY.md): traced I/O volume plus the
# genuinely measured CPU seconds of the vectorized scans.
_EXEC_QUERIES = _obs_counter("exec.queries")
_EXEC_BLOCKS = _obs_counter("exec.blocks_read")
_EXEC_SEEKS = _obs_counter("exec.seeks")
_EXEC_CPU_SECONDS = _obs_histogram("exec.cpu_seconds")

#: Row count the executor scales tables down to unless told otherwise — big
#: enough that every layout occupies many blocks (the buffer-sharing effects
#: the paper studies stay visible), small enough to materialise instantly.
DEFAULT_MEASURED_ROWS = 20_000

#: Buffer-sharing policies the walk can trace (mirrors
#: :attr:`repro.cost.hdd.HDDCostModel.BUFFER_SHARING_POLICIES`).
BUFFER_SHARING_POLICIES = ("proportional", "equal")

_CHECKSUM_MASK = (1 << 64) - 1


def unwrap_cost_model(cost_model):
    """The bare model inside an instrumentation wrapper, if any.

    The library's only wrapper shape is the algorithm framework's counting
    wrapper, which exposes the wrapped model as ``inner``.  Every consumer
    that reads execution-relevant attributes off a model — the grid cache's
    :func:`~repro.grid.cache.execution_fingerprint`, the grid worker, and
    :func:`~repro.exec.validation.require_measurable` — must unwrap through
    this one helper so they can never disagree about which model they saw.
    """
    return getattr(cost_model, "inner", cost_model)


def measured_disk(cost_model) -> Optional[DiskCharacteristics]:
    """The disk characteristics a measured execution of ``cost_model`` would
    price its trace with, or ``None`` for models with no disk (not measurable)."""
    return getattr(unwrap_cost_model(cost_model), "disk", None)


def measured_buffer_sharing(cost_model) -> str:
    """The buffer-sharing policy a measured execution must trace with.

    Models that do not define one (they have no shared buffer) default to the
    paper's proportional policy.
    """
    return getattr(unwrap_cost_model(cost_model), "buffer_sharing", "proportional")


def _array_checksum(chunk: np.ndarray) -> int:
    """A cheap order-independent checksum that forces the chunk to be read."""
    if chunk.size == 0:
        return 0
    if chunk.dtype.kind in ("S", "U", "V"):
        return int(chunk.view(np.uint8).sum(dtype=np.uint64)) & _CHECKSUM_MASK
    if chunk.dtype.kind == "f":
        # Reinterpret the (deterministic pairwise) sum's bits as an integer so
        # the checksum is exact, not subject to decimal formatting.
        return int(np.float64(chunk.sum()).view(np.uint64)) & _CHECKSUM_MASK
    return int(chunk.sum(dtype=np.int64)) & _CHECKSUM_MASK


@dataclass(frozen=True)
class MeasuredRun:
    """Counters and timings from executing one query once.

    ``io_seconds`` is the traced block/seek counts priced at the disk
    characteristics (deterministic); ``cpu_seconds`` is measured wall clock of
    the vectorized scan (not deterministic).  ``weight`` is carried along so
    workload aggregation can apply the paper's weighted-sum convention.
    """

    query: str
    weight: float
    partitions_read: int
    blocks_read: int
    seeks: int
    bytes_read: int
    rows_scanned: int
    #: Logical bytes the walk covered (rows x row size of each referenced
    #: partition) — unlike ``bytes_read`` it ignores block padding, so it is
    #: directly comparable across backends (see repro.engine_x.differential).
    bytes_scanned: int
    io_seconds: float
    cpu_seconds: float
    checksum: int

    @property
    def elapsed_seconds(self) -> float:
        """Total per-execution time: modeled I/O plus measured CPU."""
        return self.io_seconds + self.cpu_seconds


@dataclass
class MeasuredWorkloadRun:
    """All per-query runs of one workload replay plus weighted totals.

    Counter totals (``blocks_read``, ``seeks``, ...) sum each query's single
    execution — they describe the trace.  Time totals (``io_seconds``,
    ``cpu_seconds``) are weighted by query frequency, matching the convention
    of :meth:`repro.cost.base.CostModel.workload_cost` so the two are directly
    comparable.
    """

    workload_name: str
    layout_signature: List[List[int]]
    rows: int
    data_seed: int
    runs: List[MeasuredRun]

    @property
    def io_seconds(self) -> float:
        """Weighted I/O seconds — the number the cost model predicts."""
        return sum(run.weight * run.io_seconds for run in self.runs)

    @property
    def cpu_seconds(self) -> float:
        """Weighted measured CPU seconds of the vectorized scans."""
        return sum(run.weight * run.cpu_seconds for run in self.runs)

    @property
    def elapsed_seconds(self) -> float:
        """Weighted total time (I/O + CPU)."""
        return self.io_seconds + self.cpu_seconds

    @property
    def blocks_read(self) -> int:
        """Blocks read executing each query once (trace total, unweighted)."""
        return sum(run.blocks_read for run in self.runs)

    @property
    def seeks(self) -> int:
        """Seeks performed executing each query once (trace total, unweighted)."""
        return sum(run.seeks for run in self.runs)

    @property
    def bytes_scanned(self) -> int:
        """Logical bytes covered executing each query once (unweighted)."""
        return sum(run.bytes_scanned for run in self.runs)

    @property
    def checksum(self) -> int:
        """Combined data checksum over every query's scan (deterministic)."""
        total = 0
        for run in self.runs:
            total = (total + run.checksum) & _CHECKSUM_MASK
        return total

    def describe(self) -> str:
        """One-line summary of the replay."""
        return (
            f"measured {self.workload_name!r} @ {self.rows:,} rows: "
            f"{self.io_seconds:.4f}s io + {self.cpu_seconds:.4f}s cpu, "
            f"{self.blocks_read} blocks, {self.seeks} seeks"
        )


class VectorizedScanExecutor:
    """Materialises a layout at measured scale and replays workloads over it.

    Parameters
    ----------
    partitioning:
        The layout to materialise.  It may be bound to a schema of any row
        count; the executor rebinds it to the measured scale.
    disk:
        Disk characteristics pricing the traced I/O (defaults to the paper's
        testbed).
    rows:
        Measured row count; capped at the schema's row count and defaulting
        to :data:`DEFAULT_MEASURED_ROWS`.
    buffer_sharing:
        How the I/O buffer is divided among co-read partitions during the
        walk: ``"proportional"`` (the paper's policy, the default) or
        ``"equal"`` — must match the policy of the model whose predictions
        are being validated, otherwise the policy difference masquerades as
        model error (:func:`measured_buffer_sharing` reads it off a model).
    data_seed:
        Seed for the deterministic synthetic data generator; the same seed
        always produces (and therefore checksums) the same data.
    data:
        Optional pre-generated column arrays (``name -> array`` of exactly
        ``rows`` values), letting callers that execute many layouts of one
        schema (e.g. :func:`repro.exec.validation.validate_layouts`) share
        one generation pass.
    """

    def __init__(
        self,
        partitioning: Partitioning,
        disk: DiskCharacteristics = DEFAULT_DISK,
        rows: Optional[int] = None,
        buffer_sharing: str = "proportional",
        data_seed: int = 0,
        data: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        if buffer_sharing not in BUFFER_SHARING_POLICIES:
            raise ValueError(
                f"buffer_sharing must be one of {BUFFER_SHARING_POLICIES}, "
                f"got {buffer_sharing!r}"
            )
        self.buffer_sharing = buffer_sharing
        source_schema = partitioning.schema
        requested = DEFAULT_MEASURED_ROWS if rows is None else int(rows)
        if requested < 1:
            raise ValueError("rows must be >= 1")
        measured_rows = max(1, min(requested, source_schema.row_count))
        self.schema = source_schema.with_row_count(measured_rows)
        self.partitioning = Partitioning(
            self.schema, [partition.attributes for partition in partitioning.partitions]
        )
        self.data_seed = int(data_seed)
        self.engine = StorageEngine(self.partitioning, disk=SimulatedDisk(disk))
        if data is None:
            data = generate_table_data(self.schema, random_state=self.data_seed)
        for column in self.schema.columns:
            array = data.get(column.name)
            if array is None or len(array) != measured_rows:
                raise ValueError(
                    f"data for column {column.name!r} must hold exactly "
                    f"{measured_rows} values"
                )
        self.data = data
        # Per-partition column arrays, aligned with partitioning.partitions.
        self._partition_columns: List[List[np.ndarray]] = [
            [data[name] for name in partition.attribute_names(self.schema)]
            for partition in self.partitioning.partitions
        ]

    @property
    def disk(self) -> DiskCharacteristics:
        """The disk characteristics pricing the traced I/O."""
        return self.engine.disk.characteristics

    @property
    def rows(self) -> int:
        """The measured row count the table was materialised at."""
        return self.schema.row_count

    # -- execution -------------------------------------------------------------

    def execute_query(self, query: ResolvedQuery) -> MeasuredRun:
        """Execute one query: bulk scans of every referenced column group.

        The walk mirrors :meth:`repro.storage.engine.StorageEngine.scan_query`
        block for block and seek for seek — the buffer is shared among the
        referenced partitions per the configured policy (proportionally to
        their row sizes by default), each refill costs one seek — but each
        refill is one vectorized slice of every column array rather than a
        tuple-at-a-time reconstruction.
        """
        characteristics = self.disk
        referenced = [
            (file, columns)
            for partition, file, columns in zip(
                self.partitioning.partitions, self.engine.files, self._partition_columns
            )
            if partition.is_referenced_by(query)
        ]
        blocks_read = 0
        seeks = 0
        rows_scanned = 0
        bytes_scanned = 0
        checksum = 0
        cpu_seconds = 0.0
        total_row_size = sum(file.row_size for file, _ in referenced)
        for file, columns in referenced:
            if self.buffer_sharing == "equal":
                buffer_bytes = characteristics.buffer_size // max(1, len(referenced))
            else:
                buffer_bytes = int(
                    characteristics.buffer_size * file.row_size / total_row_size
                )
            buffer_blocks = max(1, buffer_bytes // characteristics.block_size)
            rows_per_page = file.rows_per_page
            page_count = file.page_count
            row_count = file.row_count
            with timed("exec.scan", query=query.name) as timer:
                position = 0
                while position < page_count:
                    chunk_blocks = min(buffer_blocks, page_count - position)
                    row_start = position * rows_per_page
                    row_stop = min(row_count, (position + chunk_blocks) * rows_per_page)
                    for array in columns:
                        checksum = (
                            checksum + _array_checksum(array[row_start:row_stop])
                        ) & _CHECKSUM_MASK
                    rows_scanned += row_stop - row_start
                    bytes_scanned += (row_stop - row_start) * file.row_size
                    seeks += 1
                    blocks_read += chunk_blocks
                    position += chunk_blocks
            cpu_seconds += timer.wall
        io_seconds = (
            seeks * characteristics.seek_time
            + blocks_read * characteristics.block_size / characteristics.read_bandwidth
        )
        _EXEC_QUERIES.value += 1
        _EXEC_BLOCKS.value += blocks_read
        _EXEC_SEEKS.value += seeks
        _EXEC_CPU_SECONDS.observe(cpu_seconds)
        return MeasuredRun(
            query=query.name,
            weight=query.weight,
            partitions_read=len(referenced),
            blocks_read=blocks_read,
            seeks=seeks,
            bytes_read=blocks_read * characteristics.block_size,
            rows_scanned=rows_scanned,
            bytes_scanned=bytes_scanned,
            io_seconds=io_seconds,
            cpu_seconds=cpu_seconds,
            checksum=checksum,
        )

    def execute_workload(self, workload: Workload) -> MeasuredWorkloadRun:
        """Replay every query of ``workload`` once and collect the runs.

        The workload may be bound to the full-scale schema; only the queries'
        attribute footprints and weights are used, so no rebinding is needed.
        """
        if workload.schema.attribute_names != self.schema.attribute_names:
            raise ValueError(
                f"workload {workload.name!r} is over different attributes than "
                f"the materialised table {self.schema.name!r}"
            )
        runs = [self.execute_query(query) for query in workload]
        return MeasuredWorkloadRun(
            workload_name=workload.name,
            layout_signature=[
                list(partition.sorted_attributes())
                for partition in self.partitioning.partitions
            ],
            rows=self.rows,
            data_seed=self.data_seed,
            runs=runs,
        )

    # -- the estimated side of the comparison ----------------------------------

    def predicted_cost(self, workload: Workload, cost_model) -> float:
        """The model's workload cost at the executor's measured scale.

        Estimated-vs-measured comparisons must predict over the *same* scaled
        schema the executor materialised, otherwise the comparison conflates
        model error with the scale difference.
        """
        scaled = (
            workload
            if workload.schema.row_count == self.schema.row_count
            else workload.with_schema(self.schema)
        )
        return cost_model.workload_cost(scaled, self.partitioning)
