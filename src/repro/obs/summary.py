"""Run telemetry and trace summarisation.

Two consumers live here:

* :class:`RunTelemetry` — the in-process summary a grid run attaches to its
  ``GridReport`` (and the CLI prints): phase timings, cell accounting,
  retry/crash/timeout counts, cache and evaluator-memo effectiveness.
* :func:`summarize` / :func:`render_summary` — the offline path behind
  ``python -m repro.obs summary <trace.jsonl>``: reconstructs the same story
  from a trace file, attributing every retry, crash, and timeout to its cell
  and ranking the slowest cells.

Both read the canonical span/event names emitted by :mod:`repro.grid.runner`
(``grid.resolve`` / ``grid.cache-scan`` / ``grid.execute`` phases,
``grid.cell`` attempt spans, ``grid.retry`` / ``grid.worker-crash`` /
``grid.cell-timeout`` / ``grid.cache-hit`` events) and the metric names
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.trace import read_trace

#: Phase span names, in emission order, that the summary breaks time into.
PHASE_SPANS = ("grid.resolve", "grid.cache-scan", "grid.execute")


def _rate(hits: int, misses: int) -> Optional[float]:
    total = hits + misses
    return hits / total if total else None


def _fmt_rate(hits: int, misses: int) -> str:
    rate = _rate(hits, misses)
    if rate is None:
        return f"{hits} hits / {misses} misses"
    return f"{hits} hits / {misses} misses ({rate:.1%})"


@dataclass
class RunTelemetry:
    """What a grid run can tell about itself without reading the trace file.

    Attached to ``GridReport.telemetry`` by :func:`repro.grid.runner.run_grid`
    whether or not tracing was on — the metrics registry is always live.
    """

    run: str
    wall_seconds: float
    phases: Dict[str, float] = field(default_factory=dict)
    cells_total: int = 0
    cells_cached: int = 0
    cells_computed: int = 0
    cells_failed: int = 0
    retries: int = 0
    worker_crashes: int = 0
    cell_timeouts: int = 0
    cache_stores: int = 0
    cache_store_failures: int = 0
    cache_load_failures: int = 0
    metrics: Dict = field(default_factory=dict)
    trace_path: Optional[str] = None

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "run": self.run,
            "wall_seconds": self.wall_seconds,
            "phases": dict(self.phases),
            "cells": {
                "total": self.cells_total,
                "cached": self.cells_cached,
                "computed": self.cells_computed,
                "failed": self.cells_failed,
            },
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "cell_timeouts": self.cell_timeouts,
            "cache": {
                "stores": self.cache_stores,
                "store_failures": self.cache_store_failures,
                "load_failures": self.cache_load_failures,
            },
            "metrics": self.metrics,
            "trace_path": self.trace_path,
        }

    def describe(self) -> str:
        """Multi-line human summary the CLI appends to the run report."""
        phase_bits = " · ".join(
            f"{name.split('.', 1)[1]} {seconds:.2f}s"
            for name, seconds in self.phases.items()
        )
        lines = [
            f"telemetry: {self.wall_seconds:.2f}s wall"
            + (f" ({phase_bits})" if phase_bits else ""),
            f"  cells: {self.cells_total} total · {self.cells_cached} cached "
            f"· {self.cells_computed} computed · {self.cells_failed} failed",
        ]
        if self.retries or self.worker_crashes or self.cell_timeouts:
            lines.append(
                f"  faults: {self.retries} retries · "
                f"{self.worker_crashes} worker crashes · "
                f"{self.cell_timeouts} cell timeouts"
            )
        cache_line = (
            f"  result cache: {self.cells_cached} hits · "
            f"{self.cache_stores} stores"
        )
        if self.cache_store_failures or self.cache_load_failures:
            cache_line += (
                f" · degraded: {self.cache_store_failures} store / "
                f"{self.cache_load_failures} load I/O failures"
            )
        lines.append(cache_line)
        counters = self.metrics.get("counters", {})
        memo_hits = counters.get("cost.evaluator.memo.hits", 0)
        memo_misses = counters.get("cost.evaluator.memo.misses", 0)
        if memo_hits or memo_misses:
            lines.append(f"  evaluator memo: {_fmt_rate(memo_hits, memo_misses)}")
        if self.trace_path:
            lines.append(f"  trace: {self.trace_path}")
        return "\n".join(lines)


@dataclass
class CellTrace:
    """Everything the trace attributes to one grid cell."""

    label: str
    attempts: int = 0
    wall: float = 0.0
    status: str = "ok"
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    errors: List[str] = field(default_factory=list)


@dataclass
class TraceSummary:
    """The digest :func:`summarize` extracts from one trace file."""

    meta: Dict
    phases: Dict[str, float]
    cells: Dict[str, CellTrace]
    cache_hits: int
    metrics: Dict
    span_count: int
    event_count: int

    @property
    def failed_cells(self) -> List[CellTrace]:
        return [c for c in self.cells.values() if c.status == "error"]

    def slowest_cells(self, top: int = 10) -> List[CellTrace]:
        ranked = sorted(self.cells.values(), key=lambda c: -c.wall)
        return ranked[:top]

    def counter(self, name: str) -> int:
        """A counter's value from the trace's final metrics record (0 if absent)."""
        return int(self.metrics.get("counters", {}).get(name, 0))


def summarize(path: str) -> TraceSummary:
    """Digest a trace file: phases, per-cell attribution, metrics.

    Raises ``ValueError`` for files that are not (supported) traces.
    """
    meta, records = read_trace(path)
    phases: Dict[str, float] = {}
    cells: Dict[str, CellTrace] = {}
    cache_hits = 0
    metrics: Dict = {}
    span_count = 0
    event_count = 0

    def cell_for(label: str) -> CellTrace:
        entry = cells.get(label)
        if entry is None:
            entry = CellTrace(label=label)
            cells[label] = entry
        return entry

    for record in records:
        kind = record.get("type")
        if kind == "span":
            span_count += 1
            name = record.get("name", "")
            attrs = record.get("attrs") or {}
            if name in PHASE_SPANS:
                phases[name] = phases.get(name, 0.0) + float(record.get("wall", 0.0))
            elif name == "grid.cell" and "cell" in attrs:
                entry = cell_for(str(attrs["cell"]))
                entry.attempts += 1
                entry.wall += float(record.get("wall") or 0.0)
                entry.status = record.get("status", "ok")
                if record.get("error"):
                    entry.errors.append(str(record["error"]))
        elif kind == "event":
            event_count += 1
            name = record.get("name", "")
            attrs = record.get("attrs") or {}
            label = str(attrs.get("cell", "")) if attrs else ""
            if name == "grid.cache-hit":
                cache_hits += 1
            elif name == "grid.retry" and label:
                cell_for(label).retries += 1
            elif name == "grid.worker-crash" and label:
                cell_for(label).crashes += 1
            elif name == "grid.cell-timeout" and label:
                cell_for(label).timeouts += 1
        elif kind == "metrics":
            # Last metrics record wins: the runner emits the run-level delta
            # as its final act.
            metrics = record.get("metrics", {}) or {}

    # Order phases canonically, keeping any unknown phases at the end.
    ordered = {name: phases[name] for name in PHASE_SPANS if name in phases}
    for name, wall in phases.items():
        ordered.setdefault(name, wall)
    return TraceSummary(
        meta=meta,
        phases=ordered,
        cells=cells,
        cache_hits=cache_hits,
        metrics=metrics,
        span_count=span_count,
        event_count=event_count,
    )


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """Human-readable report for ``python -m repro.obs summary``."""
    meta = summary.meta
    lines = [
        f"trace: run={meta.get('run')} root={meta.get('root')} "
        f"format={meta.get('format')} "
        f"({summary.span_count} spans, {summary.event_count} events)",
    ]

    if summary.phases:
        total = sum(summary.phases.values())
        lines.append("phases:")
        for name, wall in summary.phases.items():
            share = f" ({wall / total:.1%})" if total else ""
            lines.append(f"  {name:<18} {wall:9.3f}s{share}")

    cells = summary.cells
    computed = sum(1 for c in cells.values() if c.status == "ok")
    failed = len(summary.failed_cells)
    lines.append(
        f"cells: {summary.cache_hits} cached · {computed} computed "
        f"· {failed} failed"
    )

    slowest = [c for c in summary.slowest_cells(top) if c.wall > 0]
    if slowest:
        lines.append(f"slowest cells (top {len(slowest)}):")
        for rank, cell in enumerate(slowest, start=1):
            attempts = f", {cell.attempts} attempts" if cell.attempts > 1 else ""
            lines.append(f"  {rank}. {cell.label:<40} {cell.wall:8.3f}s{attempts}")

    counters = summary.metrics.get("counters", {})
    cache_bits = []
    result_hits = counters.get("grid.cache.hits", 0)
    result_misses = counters.get("grid.cache.misses", 0)
    if result_hits or result_misses:
        cache_bits.append(f"result {_fmt_rate(result_hits, result_misses)}")
    memo_hits = counters.get("cost.evaluator.memo.hits", 0)
    memo_misses = counters.get("cost.evaluator.memo.misses", 0)
    if memo_hits or memo_misses:
        cache_bits.append(f"evaluator memo {_fmt_rate(memo_hits, memo_misses)}")
    if cache_bits:
        lines.append("caches: " + "; ".join(cache_bits))

    retries = counters.get("grid.retry.attempts", 0)
    crashes = counters.get("grid.worker.crashes", 0)
    timeouts = counters.get("grid.cell.timeouts", 0)
    if retries or crashes or timeouts or failed:
        lines.append(
            f"faults: {retries} retries · {crashes} worker crashes "
            f"· {timeouts} cell timeouts"
        )
        attributed = [
            c
            for c in cells.values()
            if c.retries or c.crashes or c.timeouts or c.status == "error"
        ]
        for cell in sorted(attributed, key=lambda c: c.label):
            bits = []
            if cell.retries:
                bits.append(f"{cell.retries} retries")
            if cell.crashes:
                bits.append(f"{cell.crashes} crashes")
            if cell.timeouts:
                bits.append(f"{cell.timeouts} timeouts")
            if cell.status == "error":
                reason = cell.errors[-1] if cell.errors else "failed"
                bits.append(f"quarantined: {reason}")
            lines.append(f"  {cell.label}: {'; '.join(bits)}")

    exec_blocks = counters.get("exec.blocks_read", 0)
    exec_seeks = counters.get("exec.seeks", 0)
    if exec_blocks or exec_seeks:
        histograms = summary.metrics.get("histograms", {})
        cpu = histograms.get("exec.cpu_seconds", {})
        cpu_bit = f", {cpu.get('total', 0.0):.3f}s cpu" if cpu else ""
        lines.append(
            f"executor: {exec_blocks} blocks read · {exec_seeks} seeks"
            f" · {counters.get('exec.queries', 0)} queries{cpu_bit}"
        )

    online_checks = counters.get("online.checks", 0)
    if online_checks:
        lines.append(
            f"online: {online_checks} checks · "
            f"{counters.get('online.triggers', 0)} triggers · "
            f"{counters.get('online.reorgs', 0)} reorgs · "
            f"{counters.get('online.rejected', 0)} rejected"
        )
    return "\n".join(lines)
