"""Structured tracing: nestable spans with deterministic IDs over JSONL.

A *trace* is one JSON record per line.  The first record is a ``meta`` line
naming the run; every other line is a ``span`` (a timed region), an ``event``
(a point-in-time occurrence), or a ``metrics`` snapshot::

    {"type": "meta",    "format": 1, "run": ..., "root": ..., ...}
    {"type": "span",    "id": ..., "parent": ..., "name": ..., "t0": ...,
     "wall": ..., "cpu": ..., "status": "ok"|"error", "attrs": {...}}
    {"type": "event",   "name": ..., "t": ..., "parent": ..., "attrs": {...}}
    {"type": "metrics", "metrics": {...}}

Span IDs are **deterministic**: a span's ID hashes its parent's ID, its name,
and its birth order under that parent (``sha256(f"{parent}|{name}|{i}")``,
first 16 hex chars), with the root derived from the run seed.  Two runs of
the same grid therefore produce the same span tree with the same IDs — only
the timings differ — which makes traces diffable and lets tests assert on
structure.

The module keeps two pieces of process-global state: the active *sink*
(``None`` when tracing is off) and the span *stack* (``[span_id, children]``
frames).  ``span()`` returns a shared no-op object when no sink is active, so
a disabled call site costs one global load and one ``is None`` test.
``timed()`` is the variant for call sites whose measurement feeds results
(e.g. ``optimization_time``): it *always* measures wall time — exactly the
two ``perf_counter()`` calls the code it replaces already made — and emits a
span only when tracing is on.

Cross-process collection: grid workers cannot reach the supervisor's trace
file, so when the supervisor exports ``REPRO_OBS_COLLECT=1`` (inherited by
both ``fork`` and ``spawn`` children, like the fault plans in
:mod:`repro.grid.faults`) each worker buffers its spans in a
:class:`SpanBuffer` under a per-task root seeded ``"{cell}#{attempt}"`` and
ships them back with the answer.  The supervisor re-parents each task's
top-level spans onto its own current span via :func:`adopt_spans`; the worker
IDs are already globally unique because the task seed is.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Trace file format version (the ``meta`` record's ``format`` field).
TRACE_FORMAT = 1

#: Environment variable telling worker processes to buffer and ship spans.
COLLECT_ENV_VAR = "REPRO_OBS_COLLECT"


def span_id(parent: str, name: str, index: int) -> str:
    """Deterministic ID of the ``index``-th child named ``name`` under ``parent``."""
    digest = hashlib.sha256(f"{parent}|{name}|{index}".encode("utf-8"))
    return digest.hexdigest()[:16]


def root_id(seed: str) -> str:
    """Deterministic root span ID for a run (or worker task) seed."""
    digest = hashlib.sha256(f"root|{seed}".encode("utf-8"))
    return digest.hexdigest()[:16]


def task_seed(label: str, attempt: int) -> str:
    """The per-task root seed a worker traces under: ``"{cell}#{attempt}"``."""
    return f"{label}#{attempt}"


class TraceWriter:
    """Append-only JSONL sink backed by a file.

    I/O failures degrade rather than abort: the first failure warns on stderr
    and subsequent records are dropped (mirroring the result cache's
    warn-once policy — observability must never take the run down).
    """

    def __init__(self, path: str, run: str, meta: Optional[Dict] = None) -> None:
        self.path = Path(path)
        self.dropped = 0
        self._warned = False
        if self.path.parent and str(self.path.parent) not in ("", "."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        record = {
            "type": "meta",
            "format": TRACE_FORMAT,
            "run": run,
            "root": root_id(run),
        }
        record.update(meta or {})
        self.write(record)

    def write(self, record: Dict) -> None:
        """Append one record; drops (with a single warning) on I/O failure."""
        try:
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        except (OSError, ValueError):
            self.dropped += 1
            if not self._warned:
                self._warned = True
                print(
                    f"warning: trace write to {self.path} failed; "
                    "dropping further records",
                    file=sys.stderr,
                )

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


class SpanBuffer:
    """In-memory sink used by worker processes to ship spans over the pipe."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def write(self, record: Dict) -> None:
        self.records.append(record)


# Process-global tracing state.  ``_SINK`` is None when tracing is off;
# ``_STACK`` holds ``[span_id, child_count]`` frames, bottom frame = root.
_SINK = None
_STACK: List[List] = []


def enabled() -> bool:
    """Whether a trace sink is currently active in this process."""
    return _SINK is not None


def current_id() -> Optional[str]:
    """The innermost active span's ID (the root's when no span is open)."""
    return _STACK[-1][0] if _STACK else None


def _push(name: str) -> str:
    frame = _STACK[-1]
    new_id = span_id(frame[0], name, frame[1])
    frame[1] += 1
    _STACK.append([new_id, 0])
    return new_id


def _pop(expected_id: str) -> None:
    # Tolerate sinks deactivating mid-span: only pop our own frame.
    if _STACK and _STACK[-1][0] == expected_id:
        _STACK.pop()


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class _Span:
    """A live span: measures wall+CPU and writes one record on exit."""

    __slots__ = ("name", "attrs", "id", "wall", "cpu", "_t0", "_c0", "_epoch")

    def __init__(self, name: str, attrs: Dict) -> None:
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = None
        self.wall = 0.0
        self.cpu = 0.0

    def set(self, **attrs) -> None:
        """Attach further key=value attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.id = _push(self.name)
        self._epoch = time.time()
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall = time.perf_counter() - self._t0
        self.cpu = time.process_time() - self._c0
        parent = _STACK[-2][0] if len(_STACK) >= 2 else None
        _pop(self.id)
        sink = _SINK
        if sink is not None:
            record = {
                "type": "span",
                "id": self.id,
                "parent": parent,
                "name": self.name,
                "t0": self._epoch,
                "wall": self.wall,
                "cpu": self.cpu,
                "status": "error" if exc_type is not None else "ok",
                "attrs": self.attrs,
            }
            if exc_type is not None:
                record["error"] = f"{exc_type.__name__}: {exc}"
            sink.write(record)
        return False


def span(name: str, **attrs):
    """A traced region: ``with span("grid.cell", cell=label): ...``.

    Returns a shared no-op object when tracing is off — safe (and nearly
    free) to leave in hot paths.
    """
    if _SINK is None:
        return _NOOP
    return _Span(name, attrs)


class Timer:
    """Like :func:`span`, but *always* measures wall time.

    For call sites whose timing feeds results (``optimization_time``,
    executor ``cpu_seconds``): ``timer.wall`` is valid after the ``with``
    block whether or not tracing is on.  CPU time and the span record are
    only produced while a sink is active.
    """

    __slots__ = ("name", "attrs", "id", "wall", "cpu", "_t0", "_c0", "_epoch")

    def __init__(self, name: str, attrs: Dict) -> None:
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = None
        self.wall = 0.0
        self.cpu = 0.0

    def set(self, **attrs) -> None:
        """Attach further key=value attributes before the region closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Timer":
        if _SINK is not None:
            self.id = _push(self.name)
            self._epoch = time.time()
            self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall = time.perf_counter() - self._t0
        if self.id is None:
            return False
        self.cpu = time.process_time() - self._c0
        parent = _STACK[-2][0] if len(_STACK) >= 2 else None
        _pop(self.id)
        sink = _SINK
        if sink is not None:
            record = {
                "type": "span",
                "id": self.id,
                "parent": parent,
                "name": self.name,
                "t0": self._epoch,
                "wall": self.wall,
                "cpu": self.cpu,
                "status": "error" if exc_type is not None else "ok",
                "attrs": self.attrs,
            }
            if exc_type is not None:
                record["error"] = f"{exc_type.__name__}: {exc}"
            sink.write(record)
        return False


def timed(name: str, **attrs) -> Timer:
    """An always-measuring timer that doubles as a span when tracing is on."""
    return Timer(name, attrs)


def event(name: str, **attrs) -> None:
    """Record a point-in-time occurrence under the current span (no-op when off)."""
    sink = _SINK
    if sink is None:
        return
    sink.write(
        {
            "type": "event",
            "name": name,
            "t": time.time(),
            "parent": current_id(),
            "attrs": attrs,
        }
    )


def emit_span(
    name: str,
    wall: float,
    status: str = "ok",
    error: Optional[str] = None,
    **attrs,
) -> Optional[str]:
    """Synthesize a completed span under the current span.

    The supervisor uses this to attribute work whose real span records were
    lost with the process that made them — crashed workers, SIGKILLed
    timeouts.  Returns the synthesized span's ID (None when tracing is off).
    """
    sink = _SINK
    if sink is None:
        return None
    frame = _STACK[-1]
    new_id = span_id(frame[0], name, frame[1])
    frame[1] += 1
    record = {
        "type": "span",
        "id": new_id,
        "parent": frame[0],
        "name": name,
        "t0": time.time() - wall,
        "wall": wall,
        "cpu": None,
        "status": status,
        "attrs": attrs,
    }
    if error is not None:
        record["error"] = error
    sink.write(record)
    return new_id


def emit_metrics(snapshot: Dict) -> None:
    """Append a metrics snapshot record to the trace (no-op when off)."""
    sink = _SINK
    if sink is not None:
        sink.write({"type": "metrics", "metrics": snapshot})


def adopt_spans(records: Iterable[Dict], worker_seed: str) -> int:
    """Merge a worker's shipped span records into the active trace.

    Records parented at the worker's task root are re-parented onto the
    supervisor's current span; deeper records keep their (globally unique,
    seed-derived) parent links.  Returns the number of records written.
    """
    sink = _SINK
    if sink is None:
        return 0
    worker_root = root_id(worker_seed)
    parent = current_id()
    written = 0
    for record in records:
        if record.get("parent") == worker_root:
            record = dict(record)
            record["parent"] = parent
        sink.write(record)
        written += 1
    return written


@contextmanager
def activated(sink, seed: str):
    """Route spans to ``sink`` (rooted at ``root_id(seed)``) for the block.

    The previous sink/stack are restored on exit, so traces nest safely
    (e.g. a worker task inside a process that is itself being traced).
    """
    global _SINK, _STACK
    previous = (_SINK, _STACK)
    _SINK = sink
    _STACK = [[root_id(seed), 0]]
    try:
        yield sink
    finally:
        _SINK, _STACK = previous


@contextmanager
def tracing(path: str, run: str, meta: Optional[Dict] = None):
    """Write a trace file for the block: the supervisor-side entry point."""
    writer = TraceWriter(path, run, meta)
    try:
        with activated(writer, run):
            yield writer
    finally:
        writer.close()


@contextmanager
def collecting(seed: str):
    """Buffer spans in a :class:`SpanBuffer` for the block (worker-side).

    Yields the buffer; its ``.records`` are valid even if the block raises —
    the worker ships whatever was captured before the failure.
    """
    buffer = SpanBuffer()
    with activated(buffer, seed):
        yield buffer


def collection_requested() -> bool:
    """Whether the supervisor asked worker processes to ship spans."""
    return os.environ.get(COLLECT_ENV_VAR) == "1"


@contextmanager
def collection_env():
    """Export :data:`COLLECT_ENV_VAR` so child processes buffer and ship spans.

    Environment travels to both ``fork`` and ``spawn`` children, the same
    channel :mod:`repro.grid.faults` uses for fault plans.
    """
    previous = os.environ.get(COLLECT_ENV_VAR)
    os.environ[COLLECT_ENV_VAR] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(COLLECT_ENV_VAR, None)
        else:
            os.environ[COLLECT_ENV_VAR] = previous


def read_trace(path: str) -> Tuple[Dict, List[Dict]]:
    """Parse a trace file into ``(meta, records)``; skips malformed lines.

    Raises ``ValueError`` if the file has no leading ``meta`` record of a
    supported format.
    """
    meta: Optional[Dict] = None
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("type") == "meta" and meta is None:
                meta = record
            else:
                records.append(record)
    if meta is None:
        raise ValueError(f"{path}: not a trace file (no meta record)")
    if meta.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path}: unsupported trace format {meta.get('format')!r} "
            f"(expected {TRACE_FORMAT})"
        )
    return meta, records
