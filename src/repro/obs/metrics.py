"""Process-local metrics: counters, gauges and histograms.

The repository's hot seams — evaluator memo lookups, result-cache I/O, retry
machinery, the vectorized executor's scan walk, the online controller's
decisions — increment metrics unconditionally.  That only works because an
increment is made as cheap as Python allows: every instrument is a tiny
``__slots__`` object held by module-level reference at the instrumented call
site, and the hot-path form is a bare attribute increment
(``counter.value += 1``), not a registry lookup or a method call.  There is no
"enabled" flag to test; the instruments *are* the storage.

The registry is process-local by design.  Grid worker processes accumulate
into their own registries and ship **deltas** back to the supervisor over the
existing answer pipe (see :mod:`repro.grid.worker`): a worker snapshots its
registry before executing a cell and sends ``registry().delta(baseline)``
with the answer; the parent folds each delta into its own registry with
:meth:`MetricsRegistry.merge`.  Deltas make the scheme safe under both
``fork`` (inherited counter values cancel out) and ``spawn`` (the child
starts from zero), with no shared memory or locks.

Snapshots are plain JSON-serialisable dicts::

    {"counters":   {name: int},
     "gauges":     {name: float},
     "histograms": {name: {"count": int, "total": float,
                           "min": float|None, "max": float|None}}}

Canonical metric names used by the built-in instrumentation are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Snapshot dict shape version (bumped on incompatible change).
SNAPSHOT_FORMAT = 1


class Counter:
    """A monotonically increasing integer.

    Hot paths increment ``counter.value`` directly; :meth:`inc` is the
    readable form for cold paths.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins instantaneous measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Count / total / min / max of an observed distribution.

    Deliberately bucket-free: the consumers (the run summary, the trace's
    final metrics record) need totals and extremes, and four scalars merge
    losslessly across process boundaries where bucket layouts would not.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, total={self.total})"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so instrumented
    modules can grab their instruments once at import time and the registry
    still sees them.  :meth:`reset` therefore zeroes instruments *in place*
    rather than discarding them — module-held references stay live.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered as ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered as ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered as ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(name)
            self._histograms[name] = instrument
        return instrument

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The registry's current state as a plain JSON-serialisable dict."""
        return {
            "format": SNAPSHOT_FORMAT,
            "counters": {
                name: c.value for name, c in self._counters.items() if c.value
            },
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in self._histograms.items()
                if h.count
            },
        }

    def delta(self, baseline: Dict[str, object]) -> Dict[str, object]:
        """What changed since ``baseline`` (an earlier :meth:`snapshot`).

        Counter and histogram count/total deltas are exact.  A histogram's
        min/max cannot be differenced, so the delta carries the *current*
        extremes — an over-approximation that only widens the merged range,
        never invents observations.  Gauges carry their current value
        (last-value-wins has no meaningful difference).
        """
        base_counters = baseline.get("counters", {})
        base_histograms = baseline.get("histograms", {})
        counters = {}
        for name, instrument in self._counters.items():
            changed = instrument.value - base_counters.get(name, 0)
            if changed:
                counters[name] = changed
        histograms = {}
        for name, instrument in self._histograms.items():
            previous = base_histograms.get(
                name, {"count": 0, "total": 0.0}
            )
            count = instrument.count - previous["count"]
            if count:
                histograms[name] = {
                    "count": count,
                    "total": instrument.total - previous["total"],
                    "min": instrument.min,
                    "max": instrument.max,
                }
        return {
            "format": SNAPSHOT_FORMAT,
            "counters": counters,
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": histograms,
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += int(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            instrument = self.histogram(name)
            instrument.count += int(state.get("count", 0))
            instrument.total += float(state.get("total", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                incoming = state.get(bound)
                if incoming is None:
                    continue
                current = getattr(instrument, bound)
                setattr(
                    instrument,
                    bound,
                    incoming if current is None else pick(current, incoming),
                )

    def reset(self) -> None:
        """Zero every instrument in place (module-held references stay valid)."""
        for instrument in self._counters.values():
            instrument.value = 0
        for instrument in self._gauges.values():
            instrument.value = 0.0
        for histogram in self._histograms.values():
            histogram.count = 0
            histogram.total = 0.0
            histogram.min = None
            histogram.max = None


#: The process-global registry every built-in instrumentation point uses.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Get-or-create a counter on the process-global registry."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the process-global registry."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram on the process-global registry."""
    return _REGISTRY.histogram(name)
