"""Dependency-free observability: structured tracing + process-local metrics.

See ``docs/OBSERVABILITY.md`` for the trace schema, the canonical metric
names, and the ``python -m repro.obs summary`` CLI.  Quick orientation:

* :func:`span` / :func:`timed` / :func:`event` — instrument a region; spans
  are no-op-cheap unless a sink is active, ``timed`` always measures wall.
* :func:`tracing` — supervisor-side: write a per-run JSONL trace file.
* :func:`collecting` / :func:`collection_env` — worker-side span shipping
  over the grid's answer pipe (fork and spawn safe).
* :func:`counter` / :func:`gauge` / :func:`histogram` / :func:`registry` —
  the process-global metrics registry.
* :class:`RunTelemetry` / :func:`summarize` — run-level and trace-level
  digests.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.summary import (
    CellTrace,
    RunTelemetry,
    TraceSummary,
    render_summary,
    summarize,
)
from repro.obs.trace import (
    COLLECT_ENV_VAR,
    SpanBuffer,
    TraceWriter,
    adopt_spans,
    collecting,
    collection_env,
    collection_requested,
    current_id,
    emit_metrics,
    emit_span,
    enabled,
    event,
    read_trace,
    root_id,
    span,
    span_id,
    task_seed,
    timed,
    tracing,
)

__all__ = [
    "COLLECT_ENV_VAR",
    "CellTrace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "SpanBuffer",
    "TraceSummary",
    "TraceWriter",
    "adopt_spans",
    "collecting",
    "collection_env",
    "collection_requested",
    "counter",
    "current_id",
    "emit_metrics",
    "emit_span",
    "enabled",
    "event",
    "gauge",
    "histogram",
    "read_trace",
    "registry",
    "render_summary",
    "root_id",
    "span",
    "span_id",
    "summarize",
    "task_seed",
    "timed",
    "tracing",
]
