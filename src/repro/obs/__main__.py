"""Command-line entry point: ``python -m repro.obs``.

Subcommands:

* ``summary <trace.jsonl> [--top N] [--json]`` — digest a trace written by
  ``python -m repro.grid --trace PATH``: per-phase time breakdown, top-N
  slowest cells, cache hit rates, and retry/crash/timeout attribution per
  cell.  ``--json`` emits the digest as one JSON object for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.summary import render_summary, summarize


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for ``--help`` testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect traces written by the grid runner's --trace flag.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)
    summary = subcommands.add_parser(
        "summary", help="digest a trace file into a human-readable report"
    )
    summary.add_argument("trace", help="path to a trace .jsonl file")
    summary.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many slowest cells to list (default: 10)",
    )
    summary.add_argument(
        "--json",
        action="store_true",
        help="emit the digest as JSON instead of the human report",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the obs CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        digest = summarize(args.trace)
    except FileNotFoundError:
        print(f"error: {args.trace}: no such file", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        payload = {
            "meta": digest.meta,
            "phases": digest.phases,
            "cells": {
                label: {
                    "attempts": cell.attempts,
                    "wall": cell.wall,
                    "status": cell.status,
                    "retries": cell.retries,
                    "crashes": cell.crashes,
                    "timeouts": cell.timeouts,
                    "errors": cell.errors,
                }
                for label, cell in digest.cells.items()
            },
            "cache_hits": digest.cache_hits,
            "metrics": digest.metrics,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_summary(digest, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
