"""Real-engine execution backend: layouts materialised on embedded SQLite.

The third rung of the validation ladder (``docs/ENGINE_X.md``): the
*estimated* backend predicts runtimes with closed formulas, the *measured*
backend (:mod:`repro.exec`) replays them on our own simulator, and this
package runs them on an engine we did not implement — one SQLite table per
column group, rowid equi-joins for cross-group reconstruction, warm repeated
executions with per-query trimmed-mean wall clock.
"""

from repro.engine_x.differential import (
    DifferentialCase,
    DifferentialResult,
    QueryComparison,
    random_case,
    run_differential,
)
from repro.engine_x.executor import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_REPEATS,
    PAGE_SIZES,
    TMPDIR_ENV_VAR,
    EngineRun,
    EngineWorkloadRun,
    SQLiteExecutor,
    resolve_database_dir,
    trimmed_mean,
)
from repro.engine_x.sql import (
    RID_COLUMN,
    CompiledQuery,
    SqlCompilationError,
    compile_query,
    compile_workload,
    create_layout_sql,
    create_table_sql,
    group_table_name,
    insert_sql,
    layout_from_connection,
)
from repro.engine_x.validation import (
    EngineLayoutValidation,
    EngineValidationReport,
    validate_layouts_sqlite,
)

__all__ = [
    "CompiledQuery",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_REPEATS",
    "DifferentialCase",
    "DifferentialResult",
    "EngineLayoutValidation",
    "EngineRun",
    "EngineValidationReport",
    "EngineWorkloadRun",
    "PAGE_SIZES",
    "QueryComparison",
    "RID_COLUMN",
    "SQLiteExecutor",
    "SqlCompilationError",
    "TMPDIR_ENV_VAR",
    "compile_query",
    "compile_workload",
    "create_layout_sql",
    "create_table_sql",
    "group_table_name",
    "insert_sql",
    "layout_from_connection",
    "random_case",
    "resolve_database_dir",
    "run_differential",
    "trimmed_mean",
    "validate_layouts_sqlite",
]
