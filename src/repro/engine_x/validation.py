"""Layout-set validation against the real engine.

The sqlite counterpart of :func:`repro.exec.validation.validate_layouts`:
given one workload and a set of named layouts, execute every layout on
:class:`~repro.engine_x.executor.SQLiteExecutor` and compare the model's
predicted seconds against the engine's warm wall clock.

Unlike the measured backend, the engine's absolute seconds live on *this
machine's* hardware while the model predicts the paper's 2005 testbed, so
per-layout relative errors are not meaningful across the gap — the agreement
that matters is the *ranking* (does the model order layouts the way the real
engine does), which is what :attr:`EngineValidationReport.rank_correlation`
captures and the differential tests bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.core.partitioning import Partitioning
from repro.cost.base import CostModel
from repro.cost.hdd import HDDCostModel
from repro.engine_x.executor import DEFAULT_PAGE_SIZE, DEFAULT_REPEATS, SQLiteExecutor
from repro.exec.executor import unwrap_cost_model
from repro.metrics.agreement import spearman_rank_correlation
from repro.workload.workload import Workload


@dataclass(frozen=True)
class EngineLayoutValidation:
    """Predicted-vs-engine numbers of one layout."""

    label: str
    partitions: int
    predicted_seconds: float
    engine_seconds: float
    rows_scanned: int
    bytes_scanned: int


@dataclass
class EngineValidationReport:
    """Agreement of a layout set on the real engine: the ranking view."""

    workload_name: str
    cost_model_description: str
    rows: int
    data_seed: int
    page_size: int
    validations: List[EngineLayoutValidation]

    @property
    def rank_correlation(self) -> float:
        """Spearman's rho between predicted and engine layout orderings."""
        return spearman_rank_correlation(
            [validation.predicted_seconds for validation in self.validations],
            [validation.engine_seconds for validation in self.validations],
        )

    def by_label(self, label: str) -> EngineLayoutValidation:
        """The validation record of one named layout."""
        for validation in self.validations:
            if validation.label == label:
                return validation
        raise KeyError(f"no layout labelled {label!r} in this validation")

    def to_rows(self) -> List[dict]:
        """Tabular form, fastest engine layout first."""
        return [
            {
                "layout": validation.label,
                "parts": validation.partitions,
                "predicted (s)": validation.predicted_seconds,
                "sqlite (ms)": 1e3 * validation.engine_seconds,
                "MB scanned": validation.bytes_scanned / 1e6,
            }
            for validation in sorted(
                self.validations, key=lambda v: v.engine_seconds
            )
        ]

    def describe(self) -> str:
        """The agreement table plus the ranking summary line."""
        # Imported here to avoid a circular import at package load time.
        from repro.experiments.report import format_table

        table = format_table(
            self.to_rows(),
            title=(
                f"Estimated vs SQLite — {self.workload_name} "
                f"({self.cost_model_description}, {self.rows:,} rows, "
                f"page {self.page_size})"
            ),
        )
        return f"{table}\nrank correlation: {self.rank_correlation:.4f}"


def validate_layouts_sqlite(
    workload: Workload,
    layouts: Mapping[str, Partitioning],
    cost_model: Optional[CostModel] = None,
    rows: Optional[int] = None,
    data_seed: int = 0,
    page_size: Optional[int] = None,
    repeats: int = DEFAULT_REPEATS,
    database_dir: Optional[str] = None,
) -> EngineValidationReport:
    """Execute every layout on SQLite and compare against the model's estimate.

    All layouts share one generated dataset (the same convention as the
    measured backend's ``validate_layouts``), so ranking differences come
    from the layouts, never the data.  Any cost model works — the comparison
    is a ranking, not an absolute-seconds match — and defaults to the paper's
    testbed HDD model.
    """
    if not layouts:
        raise ValueError("validate_layouts_sqlite needs at least one layout")
    model = unwrap_cost_model(cost_model if cost_model is not None else HDDCostModel())
    resolved_page = DEFAULT_PAGE_SIZE if page_size is None else int(page_size)
    validations: List[EngineLayoutValidation] = []
    shared_data = None
    executed_rows = 0
    for label, layout in layouts.items():
        executor = SQLiteExecutor(
            layout,
            rows=rows,
            data_seed=data_seed,
            page_size=resolved_page,
            repeats=repeats,
            database_dir=database_dir,
            data=shared_data,
        )
        try:
            if shared_data is None:
                shared_data = executor.data
            executed_rows = executor.rows
            run = executor.execute_workload(workload)
            validations.append(
                EngineLayoutValidation(
                    label=label,
                    partitions=layout.partition_count,
                    predicted_seconds=executor.predicted_cost(workload, model),
                    engine_seconds=run.elapsed_seconds,
                    rows_scanned=run.rows_scanned,
                    bytes_scanned=run.bytes_scanned,
                )
            )
        finally:
            executor.close()
    return EngineValidationReport(
        workload_name=workload.name,
        cost_model_description=model.describe(),
        rows=executed_rows,
        data_seed=int(data_seed),
        page_size=resolved_page,
        validations=validations,
    )
