"""SQL compilation of layouts and workloads for the embedded engine backend.

A :class:`~repro.core.partitioning.Partitioning` maps to one physical SQLite
table per column group.  Every group table carries the same synthetic row
identifier column (:data:`RID_COLUMN`, declared ``INTEGER PRIMARY KEY`` so it
aliases the rowid in ordinary tables and becomes the clustering key under
``WITHOUT ROWID``), which is what lets a query spanning several groups
reconstruct rows with rowid equi-joins — the physical design the paper's
column-grouping DBMS-X uses.

A :class:`~repro.workload.query.ResolvedQuery` compiles to a single SELECT
over exactly the group tables its attribute footprint references:

* one referenced group — a projection-only scan of that table;
* several referenced groups — the same projections over a rowid equi-join.

The SELECT list aggregates every referenced attribute server-side (``sum`` for
numerics, ``sum(length(...))`` for byte strings, plus ``count(*)``) so the
engine must actually read the projected values but no per-row Python overhead
pollutes the timing.

The mapping is reversible: :func:`layout_from_connection` reads the group
tables back from ``sqlite_master`` + ``PRAGMA table_info`` and reconstructs
the :class:`Partitioning` that produced them — the round-trip the property
tests pin down.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.partitioning import Partitioning
from repro.workload.query import ResolvedQuery
from repro.workload.schema import Column, TableSchema

#: The shared row-identifier column present in every group table.  The dunder
#: name keeps it out of the way of real attribute names (and is rejected as an
#: attribute name to make the namespace split airtight).
RID_COLUMN = "__rid__"


class SqlCompilationError(ValueError):
    """Raised when a schema or layout cannot be mapped onto SQLite tables."""


def quote_identifier(name: str) -> str:
    """``name`` as a double-quoted SQLite identifier (quotes doubled)."""
    return '"' + name.replace('"', '""') + '"'


def sqlite_type(column: Column) -> str:
    """The SQLite column type storing one logical column's generated data.

    Character columns hold fixed-width byte strings (``BLOB`` keeps them
    byte-exact); decimal/double/float columns hold 8-byte reals; everything
    else holds integers.
    """
    if column.sql_type.startswith(("char", "varchar", "text", "string")):
        return "BLOB"
    if column.sql_type in ("decimal", "double", "float", "real"):
        return "REAL"
    return "INTEGER"


def group_table_name(schema: TableSchema, group_index: int) -> str:
    """The physical table name of group ``group_index`` of ``schema``."""
    return f"{schema.name}__g{group_index}"


def _group_table_pattern(schema: TableSchema) -> "re.Pattern[str]":
    return re.compile(rf"^{re.escape(schema.name)}__g(\d+)$")


def _check_schema(schema: TableSchema) -> None:
    if RID_COLUMN in schema.attribute_names:
        raise SqlCompilationError(
            f"schema {schema.name!r} uses the reserved column name {RID_COLUMN!r}"
        )


def create_table_sql(
    partitioning: Partitioning, group_index: int, without_rowid: bool = False
) -> str:
    """DDL for one column group's physical table.

    The rid column is ``INTEGER PRIMARY KEY``: in an ordinary table it aliases
    the rowid (zero extra bytes per record, records are varying-length); with
    ``without_rowid`` the table is declared ``WITHOUT ROWID`` and the rid
    becomes the clustering key of the index-organised table — the closest
    SQLite analogue of DBMS-X's fixed-width record format (see
    ``docs/ENGINE_X.md``).
    """
    schema = partitioning.schema
    _check_schema(schema)
    partition = partitioning.partitions[group_index]
    columns = [f"{quote_identifier(RID_COLUMN)} INTEGER PRIMARY KEY"]
    for name in partition.attribute_names(schema):
        column = schema.columns[schema.index_of(name)]
        columns.append(f"{quote_identifier(name)} {sqlite_type(column)}")
    suffix = " WITHOUT ROWID" if without_rowid else ""
    table = quote_identifier(group_table_name(schema, group_index))
    return f"CREATE TABLE {table} ({', '.join(columns)}){suffix}"


def create_layout_sql(
    partitioning: Partitioning, without_rowid: bool = False
) -> List[str]:
    """DDL statements materialising a whole layout, one per column group.

    Together the statements cover every attribute of the schema exactly once
    (a direct consequence of ``Partitioning``'s completeness/disjointness
    invariant — the property tests verify it end to end on the catalog).
    """
    return [
        create_table_sql(partitioning, index, without_rowid=without_rowid)
        for index in range(partitioning.partition_count)
    ]


def insert_sql(partitioning: Partitioning, group_index: int) -> str:
    """Parameterised INSERT loading one group table (rid first)."""
    schema = partitioning.schema
    partition = partitioning.partitions[group_index]
    names = [RID_COLUMN] + list(partition.attribute_names(schema))
    table = quote_identifier(group_table_name(schema, group_index))
    column_list = ", ".join(quote_identifier(name) for name in names)
    placeholders = ", ".join("?" for _ in names)
    return f"INSERT INTO {table} ({column_list}) VALUES ({placeholders})"


@dataclass(frozen=True)
class CompiledQuery:
    """One query's SQL over the group tables plus its physical footprint."""

    query: str
    sql: str
    #: Indices (into ``partitioning.partitions``) of the groups the SQL scans.
    group_indices: Tuple[int, ...]
    #: Physical table names the SQL references, aligned with group_indices.
    tables: Tuple[str, ...]


def compile_query(partitioning: Partitioning, query: ResolvedQuery) -> CompiledQuery:
    """Compile one query into a projection-only scan (plus rowid joins).

    The FROM clause names exactly the group tables holding the query's
    referenced attributes; cross-group rows are reconstructed by equi-joining
    on :data:`RID_COLUMN`.  The SELECT list forces the engine to read every
    referenced value: ``sum`` of numeric columns, ``sum(length(...))`` of byte
    string columns, and ``count(*)`` (which doubles as the scanned-row count
    the executor cross-checks).
    """
    schema = partitioning.schema
    _check_schema(schema)
    group_indices = tuple(
        index
        for index, partition in enumerate(partitioning.partitions)
        if partition.is_referenced_by(query)
    )
    if not group_indices:
        raise SqlCompilationError(
            f"query {query.name!r} references no attributes; nothing to compile"
        )
    tables = tuple(group_table_name(schema, index) for index in group_indices)
    aliases = {index: f"g{index}" for index in group_indices}

    selects = ["count(*)"]
    for attribute in sorted(query.attribute_indices):
        column = schema.columns[attribute]
        group_index = next(
            index
            for index in group_indices
            if attribute in partitioning.partitions[index].attributes
        )
        reference = f"{aliases[group_index]}.{quote_identifier(column.name)}"
        if sqlite_type(column) == "BLOB":
            selects.append(f"sum(length({reference}))")
        else:
            selects.append(f"sum({reference})")

    first = group_indices[0]
    clauses = [f"{quote_identifier(tables[0])} AS {aliases[first]}"]
    for position, index in enumerate(group_indices[1:], start=1):
        clauses.append(
            f"JOIN {quote_identifier(tables[position])} AS {aliases[index]} "
            f"ON {aliases[index]}.{quote_identifier(RID_COLUMN)} = "
            f"{aliases[first]}.{quote_identifier(RID_COLUMN)}"
        )
    sql = f"SELECT {', '.join(selects)} FROM {' '.join(clauses)}"
    return CompiledQuery(
        query=query.name, sql=sql, group_indices=group_indices, tables=tables
    )


def compile_workload(
    partitioning: Partitioning, queries: Sequence[ResolvedQuery]
) -> List[CompiledQuery]:
    """Compile every query of a workload against one layout."""
    return [compile_query(partitioning, query) for query in queries]


def layout_from_connection(
    connection, schema: TableSchema
) -> Partitioning:
    """Reconstruct the materialised layout from the database catalog.

    Reads the group tables of ``schema`` back via ``sqlite_master`` and
    ``PRAGMA table_info`` and rebuilds the :class:`Partitioning` they
    implement.  This is the inverse of :func:`create_layout_sql` —
    ``layout_from_connection(conn, s)`` after materialising ``p`` equals
    ``p`` — and it is also how the executor derives its scanned-row/byte
    accounting from the *database's* view of the layout rather than trusting
    its own input.
    """
    pattern = _group_table_pattern(schema)
    names = [
        row[0]
        for row in connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    ]
    groups: List[Tuple[int, List[str]]] = []
    for name in names:
        match = pattern.match(name)
        if match is None:
            continue
        columns = [
            row[1]
            for row in connection.execute(f"PRAGMA table_info({quote_identifier(name)})")
            if row[1] != RID_COLUMN
        ]
        groups.append((int(match.group(1)), columns))
    if not groups:
        raise SqlCompilationError(
            f"no group tables of schema {schema.name!r} in this database"
        )
    groups.sort()
    return Partitioning(
        schema,
        [
            frozenset(schema.index_of(column) for column in columns)
            for _, columns in groups
        ],
    )
