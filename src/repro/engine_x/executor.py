"""Real-engine execution backend: run layouts on embedded SQLite.

The estimated backend *predicts* workload runtimes and the measured backend
(:mod:`repro.exec`) *replays* them on a simulator we wrote ourselves;
:class:`SQLiteExecutor` is the third rung — it materialises a
:class:`~repro.core.partitioning.Partitioning` as real SQLite tables (one per
column group, shared rowid key, deterministic data from
:mod:`repro.storage.data`), compiles each query into SQL over those tables
(:mod:`repro.engine_x.sql`) and times warm repeated executions.  It is the
repository's first check of the cost models against an engine whose scan,
page and join machinery we did not implement.

What is measured versus derived
-------------------------------

* **Wall clock is genuinely measured** — per query, one warm-up execution
  followed by :attr:`SQLiteExecutor.repeats` timed executions reduced by a
  trimmed mean (min and max dropped).  The database lives in a temporary file
  with a page cache large enough to hold it, so warm runs time SQLite's
  page-decode + projection + join machinery, not the host filesystem.  Wall
  clock is not deterministic; grid payloads keep it in their ``timing``
  section, never in content-hashed sections.
* **Scanned-row/byte accounting is derived from the database**, not from the
  executor's input: the layout is read back from the catalog
  (:func:`repro.engine_x.sql.layout_from_connection`), each query's scanned
  rows come from its ``count(*)`` result, and bytes price the referenced
  groups' logical row widths.  The differential tests require this accounting
  to agree bit for bit with the estimated backend's closed formulas and the
  measured backend's traced walk.

Execution runs at a reduced measured scale exactly like the measured backend:
``rows`` (default :data:`repro.exec.executor.DEFAULT_MEASURED_ROWS`) capped at
the schema's row count, data seeded by ``data_seed``.

The database directory resolves, in order: the ``database_dir`` argument, the
:data:`TMPDIR_ENV_VAR` environment variable, the system temp directory.  A
directory that cannot host a database makes the constructor raise — under the
grid's fault-tolerant runner that becomes a quarantined ``CellFailure``, not
a crash (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.partitioning import Partitioning
from repro.engine_x.sql import (
    CompiledQuery,
    compile_query,
    create_layout_sql,
    insert_sql,
    layout_from_connection,
)
from repro.obs.metrics import counter as _obs_counter, histogram as _obs_histogram
from repro.obs.trace import timed
from repro.storage.data import generate_table_data
from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload

# Engine telemetry (docs/OBSERVABILITY.md): materialisation volume plus the
# genuinely measured per-query wall clock.
_ENGINE_QUERIES = _obs_counter("engine_x.queries")
_ENGINE_TABLES = _obs_counter("engine_x.tables_created")
_ENGINE_ROWS = _obs_counter("engine_x.rows_inserted")
_ENGINE_SECONDS = _obs_histogram("engine_x.query_seconds")

#: Environment variable overriding where the temporary databases live (used by
#: the robustness tests to simulate an unusable scratch directory).
TMPDIR_ENV_VAR = "REPRO_ENGINE_X_TMPDIR"

#: SQLite's default page size, and ours.
DEFAULT_PAGE_SIZE = 4096

#: Page sizes SQLite accepts: powers of two in [512, 65536].
PAGE_SIZES = (512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)

#: Timed executions per query (after one warm-up); reduced by a trimmed mean.
DEFAULT_REPEATS = 5

#: Rows per executemany batch during materialisation.
_INSERT_BATCH = 4096


def trimmed_mean(values: Sequence[float]) -> float:
    """Mean with the min and max dropped (plain mean below 3 samples).

    The standard cheap robustification of small wall-clock samples: one
    scheduler hiccup lands in the dropped max instead of the estimate.
    """
    if not values:
        raise ValueError("trimmed_mean needs at least one value")
    ordered = sorted(values)
    if len(ordered) >= 3:
        ordered = ordered[1:-1]
    return sum(ordered) / len(ordered)


def resolve_database_dir(database_dir: Optional[str] = None) -> str:
    """The directory temporary databases are created in.

    Explicit argument beats the :data:`TMPDIR_ENV_VAR` environment variable
    beats the system temp directory.  The path is returned unverified —
    creation failures surface where they belong, as the constructor's error.
    """
    if database_dir is not None:
        return str(database_dir)
    env = os.environ.get(TMPDIR_ENV_VAR)
    if env:
        return env
    return tempfile.gettempdir()


def _column_values(array: np.ndarray) -> List[object]:
    """One column's array as SQLite-bindable Python values."""
    # int64 -> int, float64 -> float, S<width> -> bytes; tolist() does all
    # three conversions and is the fastest bulk path numpy offers.
    return array.tolist()


@dataclass(frozen=True)
class EngineRun:
    """One query's timed execution on the engine.

    ``seconds`` is the trimmed mean of the warm repeats (wall clock — not
    deterministic); the scan-accounting fields are deterministic functions of
    the layout the engine reported through its catalog.
    """

    query: str
    weight: float
    groups_read: int
    #: Rows the query's scan visited: result cardinality x referenced groups.
    rows_scanned: int
    #: Logical bytes the scan covered: referenced groups' row widths x rows.
    bytes_scanned: int
    #: The query's ``count(*)`` — must equal the materialised row count.
    result_rows: int
    #: Trimmed-mean warm wall clock of one execution.
    seconds: float
    #: The individual timed repeats behind ``seconds``.
    samples: tuple

    @property
    def weighted_seconds(self) -> float:
        """This query's contribution to the workload total."""
        return self.weight * self.seconds


@dataclass
class EngineWorkloadRun:
    """All per-query engine runs of one workload plus weighted totals."""

    workload_name: str
    rows: int
    data_seed: int
    page_size: int
    without_rowid: bool
    runs: List[EngineRun]

    @property
    def elapsed_seconds(self) -> float:
        """Weighted wall clock — the number compared against predictions."""
        return sum(run.weighted_seconds for run in self.runs)

    @property
    def rows_scanned(self) -> int:
        """Rows visited executing each query once (unweighted total)."""
        return sum(run.rows_scanned for run in self.runs)

    @property
    def bytes_scanned(self) -> int:
        """Logical bytes covered executing each query once (unweighted)."""
        return sum(run.bytes_scanned for run in self.runs)

    def seconds_by_query(self) -> Dict[str, float]:
        """Per-query trimmed-mean seconds keyed by query name."""
        return {run.query: run.seconds for run in self.runs}

    def describe(self) -> str:
        """One-line summary of the replay."""
        return (
            f"sqlite {self.workload_name!r} @ {self.rows:,} rows "
            f"(page {self.page_size}): {self.elapsed_seconds * 1e3:.2f} ms, "
            f"{self.bytes_scanned / 1e6:.2f} MB scanned"
        )


class SQLiteExecutor:
    """Materialises a layout into SQLite tables and times workloads on them.

    Parameters
    ----------
    partitioning:
        The layout to materialise; rebound to the measured scale like the
        measured backend does.
    rows:
        Measured row count; capped at the schema's row count, defaulting to
        :data:`repro.exec.executor.DEFAULT_MEASURED_ROWS`.
    data_seed:
        Seed of the deterministic synthetic data generator.
    page_size:
        SQLite page size (``PRAGMA page_size``); one of :data:`PAGE_SIZES`.
    without_rowid:
        Declare group tables ``WITHOUT ROWID`` — the fixed-width record
        analogue of Table 7's dictionary encoding (see ``docs/ENGINE_X.md``).
    repeats / warmup:
        Timed executions per query (trimmed mean) after ``warmup`` untimed
        ones.
    database_dir:
        Where the temporary database file lives (see
        :func:`resolve_database_dir`).
    data:
        Optional pre-generated column arrays shared across executors of one
        schema (the same contract as the measured backend's ``data=``).
    """

    def __init__(
        self,
        partitioning: Partitioning,
        rows: Optional[int] = None,
        data_seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
        without_rowid: bool = False,
        repeats: int = DEFAULT_REPEATS,
        warmup: int = 1,
        database_dir: Optional[str] = None,
        data: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        from repro.exec.executor import DEFAULT_MEASURED_ROWS

        if page_size not in PAGE_SIZES:
            raise ValueError(
                f"page_size must be one of {PAGE_SIZES}, got {page_size!r}"
            )
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        source_schema = partitioning.schema
        requested = DEFAULT_MEASURED_ROWS if rows is None else int(rows)
        if requested < 1:
            raise ValueError("rows must be >= 1")
        measured_rows = max(1, min(requested, source_schema.row_count))
        self.schema = source_schema.with_row_count(measured_rows)
        self.partitioning = Partitioning(
            self.schema, [partition.attributes for partition in partitioning.partitions]
        )
        self.data_seed = int(data_seed)
        self.page_size = int(page_size)
        self.without_rowid = bool(without_rowid)
        self.repeats = int(repeats)
        self.warmup = int(warmup)

        if data is None:
            data = generate_table_data(self.schema, random_state=self.data_seed)
        for column in self.schema.columns:
            array = data.get(column.name)
            if array is None or len(array) != measured_rows:
                raise ValueError(
                    f"data for column {column.name!r} must hold exactly "
                    f"{measured_rows} values"
                )
        self.data = data

        directory = resolve_database_dir(database_dir)
        handle, self.database_path = tempfile.mkstemp(
            dir=directory, prefix=f"engine_x_{self.schema.name}_", suffix=".sqlite"
        )
        os.close(handle)
        self._connection: Optional[sqlite3.Connection] = None
        try:
            self._connection = sqlite3.connect(self.database_path)
            self._materialize()
        except BaseException:
            self.close()
            raise
        #: The layout as the database catalog reports it — the round-trip of
        #: the DDL, and the basis of all scan accounting.
        self.materialized_layout = layout_from_connection(self._connection, self.schema)
        self._compiled: Dict[str, CompiledQuery] = {}

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the connection and delete the temporary database file."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        try:
            os.unlink(self.database_path)
        except OSError:
            pass

    def __enter__(self) -> "SQLiteExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection (raises after :meth:`close`)."""
        if self._connection is None:
            raise ValueError("executor is closed")
        return self._connection

    @property
    def rows(self) -> int:
        """The measured row count the tables were materialised at."""
        return self.schema.row_count

    # -- materialisation -------------------------------------------------------

    def _materialize(self) -> None:
        connection = self._connection
        # Page size must be set before the first table is created; the rest
        # trades durability for determinism-friendly speed and keeps warm runs
        # inside SQLite's own page cache (sized to hold the whole database).
        connection.execute(f"PRAGMA page_size = {self.page_size}")
        connection.execute("PRAGMA journal_mode = OFF")
        connection.execute("PRAGMA synchronous = OFF")
        connection.execute("PRAGMA cache_size = -65536")
        connection.execute("PRAGMA temp_store = MEMORY")
        with timed("engine_x.materialize", schema=self.schema.name):
            rids = range(1, self.rows + 1)
            for index, statement in enumerate(
                create_layout_sql(self.partitioning, without_rowid=self.without_rowid)
            ):
                connection.execute(statement)
                _ENGINE_TABLES.value += 1
                partition = self.partitioning.partitions[index]
                columns = [
                    _column_values(self.data[name])
                    for name in partition.attribute_names(self.schema)
                ]
                sql = insert_sql(self.partitioning, index)
                batch: List[tuple] = []
                for record in zip(rids, *columns):
                    batch.append(record)
                    if len(batch) >= _INSERT_BATCH:
                        connection.executemany(sql, batch)
                        batch.clear()
                if batch:
                    connection.executemany(sql, batch)
                _ENGINE_ROWS.value += self.rows
            connection.commit()

    # -- execution -------------------------------------------------------------

    def compiled(self, query: ResolvedQuery) -> CompiledQuery:
        """The (memoized) compiled form of one query against this layout."""
        compiled = self._compiled.get(query.name)
        if compiled is None or compiled.query != query.name:
            compiled = compile_query(self.partitioning, query)
            self._compiled[query.name] = compiled
        return compiled

    def execute_query(self, query: ResolvedQuery) -> EngineRun:
        """Time one query: warm-up, then ``repeats`` runs, trimmed mean.

        Each execution fetches the single aggregate row, so the engine scans
        every referenced value but Python handles one tuple per run.  The
        ``count(*)`` column is cross-checked against the materialised row
        count — a join that dropped or duplicated rows would be caught here,
        not silently timed.
        """
        compiled = self.compiled(query)
        connection = self.connection
        result_rows = None
        with timed("engine_x.execute", query=query.name):
            for _ in range(self.warmup):
                connection.execute(compiled.sql).fetchone()
            samples = []
            for _ in range(self.repeats):
                started = time.perf_counter()
                row = connection.execute(compiled.sql).fetchone()
                samples.append(time.perf_counter() - started)
                result_rows = int(row[0])
        if self.warmup + self.repeats and result_rows != self.rows:
            raise ValueError(
                f"query {query.name!r} visited {result_rows} rows, "
                f"expected {self.rows} (rowid join broke reconstruction)"
            )
        # Accounting from the catalog's view of the layout: every referenced
        # group is scanned in full, so rows multiply by the group count and
        # bytes price each group's logical row width.
        referenced = self.materialized_layout.referenced_partitions(query)
        rows_scanned = result_rows * len(referenced)
        bytes_scanned = sum(
            partition.row_size(self.schema) * result_rows for partition in referenced
        )
        seconds = trimmed_mean(samples)
        _ENGINE_QUERIES.value += 1
        _ENGINE_SECONDS.observe(seconds)
        return EngineRun(
            query=query.name,
            weight=query.weight,
            groups_read=len(referenced),
            rows_scanned=rows_scanned,
            bytes_scanned=bytes_scanned,
            result_rows=result_rows,
            seconds=seconds,
            samples=tuple(samples),
        )

    def execute_workload(self, workload: Workload) -> EngineWorkloadRun:
        """Time every query of ``workload`` and collect the runs."""
        if workload.schema.attribute_names != self.schema.attribute_names:
            raise ValueError(
                f"workload {workload.name!r} is over different attributes than "
                f"the materialised table {self.schema.name!r}"
            )
        runs = [self.execute_query(query) for query in workload]
        return EngineWorkloadRun(
            workload_name=workload.name,
            rows=self.rows,
            data_seed=self.data_seed,
            page_size=self.page_size,
            without_rowid=self.without_rowid,
            runs=runs,
        )

    # -- the estimated side of the comparison ----------------------------------

    def _scaled(self, workload: Workload) -> Workload:
        if workload.schema.row_count == self.schema.row_count:
            return workload
        return workload.with_schema(self.schema)

    def predicted_cost(self, workload: Workload, cost_model) -> float:
        """The model's workload cost at the executor's measured scale."""
        return cost_model.workload_cost(self._scaled(workload), self.partitioning)

    def predicted_query_costs(self, workload: Workload, cost_model) -> Dict[str, float]:
        """Per-query (unweighted) predictions at the measured scale."""
        return cost_model.per_query_costs(self._scaled(workload), self.partitioning)
