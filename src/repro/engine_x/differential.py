"""Randomized three-backend differential harness.

One seed determines a complete comparison case: a small schema, a layout over
it, and a workload of nested-footprint queries.  :func:`run_differential`
pushes the same case through all three backends —

* **estimated**: the analytical HDD model's per-query costs,
* **measured**: the numpy replay of :mod:`repro.exec` (traced I/O priced
  deterministically),
* **sqlite**: real engine wall clock via :mod:`repro.engine_x`,

— and packages per-query numbers plus scan accounting from each backend's own
mechanism: closed formulas (estimated), the traced buffer walk (measured), and
the database catalog + ``count(*)`` results (sqlite).  The differential tests
assert that the accounting agrees bit for bit and that the per-query rankings
agree (tie-aware Spearman) across every seed.

Case construction keeps the rankings *decidable* without making them trivial:
group byte-volumes grow geometrically (each group adds at least half the
cumulative volume so far, so adjacent query footprints differ by >= 1.5x —
well above warm-run timing noise at the default scale), group membership,
column widths/types, schema order and query weights are all seed-random, and
query ``k`` references groups ``1..k`` so every backend must rank by a mix of
scan volume *and* reconstruction joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.partitioning import Partitioning
from repro.cost.hdd import HDDCostModel
from repro.engine_x.executor import DEFAULT_REPEATS, SQLiteExecutor
from repro.exec.executor import VectorizedScanExecutor
from repro.metrics.agreement import spearman_rank_correlation
from repro.storage.data import generate_table_data
from repro.workload.query import ResolvedQuery
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload

#: Default measured scale of a differential case — large enough that adjacent
#: query footprints differ by hundreds of microseconds of warm scan time,
#: small enough that a 30-seed sweep stays in tier-1 budget.
DEFAULT_DIFFERENTIAL_ROWS = 6_000

#: Column groups (and therefore queries) per case.
_GROUPS = 5


@dataclass(frozen=True)
class DifferentialCase:
    """One seed's schema + layout + workload."""

    seed: int
    workload: Workload
    partitioning: Partitioning


@dataclass(frozen=True)
class QueryComparison:
    """One query's numbers from all three backends.

    The three ``(rows, bytes)`` scan-accounting pairs come from independent
    mechanisms and must be identical; the three cost/time numbers live on
    different scales and are compared by rank only.
    """

    query: str
    estimated_cost: float
    measured_io_seconds: float
    sqlite_seconds: float
    estimated_scan: Tuple[int, int]
    measured_scan: Tuple[int, int]
    sqlite_scan: Tuple[int, int]

    @property
    def scan_counts_agree(self) -> bool:
        """Whether all three backends report identical scanned rows/bytes."""
        return self.estimated_scan == self.measured_scan == self.sqlite_scan


@dataclass
class DifferentialResult:
    """The full three-backend comparison of one seed."""

    case: DifferentialCase
    comparisons: List[QueryComparison]

    @property
    def seed(self) -> int:
        """The seed the case was generated from."""
        return self.case.seed

    def _ranks(self, attribute: str) -> List[float]:
        return [getattr(comparison, attribute) for comparison in self.comparisons]

    @property
    def spearman_estimated_sqlite(self) -> float:
        """Ranking agreement: analytical cost vs real engine wall clock."""
        return spearman_rank_correlation(
            self._ranks("estimated_cost"), self._ranks("sqlite_seconds")
        )

    @property
    def spearman_estimated_measured(self) -> float:
        """Ranking agreement: analytical cost vs traced replay I/O time."""
        return spearman_rank_correlation(
            self._ranks("estimated_cost"), self._ranks("measured_io_seconds")
        )

    @property
    def spearman_measured_sqlite(self) -> float:
        """Ranking agreement: traced replay vs real engine wall clock."""
        return spearman_rank_correlation(
            self._ranks("measured_io_seconds"), self._ranks("sqlite_seconds")
        )

    @property
    def scan_counts_agree(self) -> bool:
        """Whether every query's scan accounting is backend-identical."""
        return all(comparison.scan_counts_agree for comparison in self.comparisons)

    def describe(self) -> str:
        """One-line agreement summary."""
        return (
            f"seed {self.seed}: est~sqlite {self.spearman_estimated_sqlite:.2f}, "
            f"est~measured {self.spearman_estimated_measured:.2f}, "
            f"counts {'agree' if self.scan_counts_agree else 'DISAGREE'}"
        )


def random_case(seed: int, rows: int = DEFAULT_DIFFERENTIAL_ROWS) -> DifferentialCase:
    """Generate one seed's schema, layout and workload (deterministic).

    The first group is a pair of 8-byte numeric key columns (covering the
    INTEGER and REAL storage classes); later groups hold seed-random character
    columns whose byte volume grows geometrically.  Schema column order is
    shuffled so groups are non-contiguous, and query ``k`` references all
    attributes of groups ``1..k``.
    """
    rng = np.random.default_rng(seed)
    group_specs: List[List[Tuple[int, str]]] = [[(8, "bigint"), (8, "double")]]
    cumulative = 16
    for _ in range(1, _GROUPS):
        target = max(10, int(round(cumulative * rng.uniform(0.55, 1.1))))
        if target >= 24 and rng.random() < 0.5:
            first = int(rng.integers(8, target - 7))
            spec = [(first, "char"), (target - first, "char")]
        else:
            spec = [(target, "char")]
        group_specs.append(spec)
        cumulative += target

    columns: List[Column] = []
    group_members: List[List[str]] = []
    for group_index, spec in enumerate(group_specs):
        members = []
        for column_index, (width, sql_type) in enumerate(spec):
            name = f"a{group_index}_{column_index}"
            columns.append(Column(name, width, sql_type))
            members.append(name)
        group_members.append(members)

    order = rng.permutation(len(columns))
    schema = TableSchema(
        name=f"diff{seed}",
        columns=[columns[index] for index in order],
        row_count=int(rows),
    )
    partitioning = Partitioning(
        schema,
        [
            frozenset(schema.index_of(name) for name in members)
            for members in group_members
        ],
    )

    queries = []
    referenced: List[str] = []
    for group_index, members in enumerate(group_members):
        referenced = referenced + members
        queries.append(
            ResolvedQuery(
                name=f"Q{group_index + 1}",
                attribute_indices=tuple(
                    sorted(schema.index_of(name) for name in referenced)
                ),
                weight=round(float(rng.uniform(0.5, 2.0)), 2),
                selectivity=1.0,
            )
        )
    workload = Workload(schema, queries, name=f"differential seed {seed}")
    return DifferentialCase(seed=int(seed), workload=workload, partitioning=partitioning)


def run_differential(
    seed: int,
    rows: int = DEFAULT_DIFFERENTIAL_ROWS,
    repeats: int = DEFAULT_REPEATS,
    database_dir: Optional[str] = None,
) -> DifferentialResult:
    """Run one seed's case through all three backends.

    All backends share one generated dataset and one layout; each computes its
    scan accounting through its own mechanism (formulas / traced walk /
    catalog + ``count(*)``).
    """
    case = random_case(seed, rows=rows)
    workload, layout = case.workload, case.partitioning
    schema = workload.schema
    model = HDDCostModel()

    estimated: Dict[str, float] = model.per_query_costs(workload, layout)
    estimated_scans: Dict[str, Tuple[int, int]] = {}
    for query in workload:
        referenced = layout.referenced_partitions(query)
        estimated_scans[query.name] = (
            len(referenced) * schema.row_count,
            sum(
                partition.row_size(schema) * schema.row_count
                for partition in referenced
            ),
        )

    data = generate_table_data(schema, random_state=seed)
    measured_run = VectorizedScanExecutor(
        layout, rows=rows, data_seed=seed, data=data
    ).execute_workload(workload)
    measured = {run.query: run for run in measured_run.runs}

    with SQLiteExecutor(
        layout,
        rows=rows,
        data_seed=seed,
        repeats=repeats,
        database_dir=database_dir,
        data=data,
    ) as executor:
        engine_run = executor.execute_workload(workload)
    engine = {run.query: run for run in engine_run.runs}

    comparisons = [
        QueryComparison(
            query=query.name,
            estimated_cost=estimated[query.name],
            measured_io_seconds=measured[query.name].io_seconds,
            sqlite_seconds=engine[query.name].seconds,
            estimated_scan=estimated_scans[query.name],
            measured_scan=(
                measured[query.name].rows_scanned,
                measured[query.name].bytes_scanned,
            ),
            sqlite_scan=(
                engine[query.name].rows_scanned,
                engine[query.name].bytes_scanned,
            ),
        )
        for query in workload
    ]
    return DifferentialResult(case=case, comparisons=comparisons)
