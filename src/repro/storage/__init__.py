"""Block-level storage simulator.

The paper evaluates algorithms with an analytical cost model because no freely
available DBMS can scan vertically partitioned tables without tuple
reconstruction joins distorting the measurement.  This package provides the
substrate such an evaluation would otherwise need:

* :mod:`repro.storage.data` — deterministic synthetic data generation for any
  :class:`~repro.workload.schema.TableSchema` (used instead of ``dbgen``).
* :mod:`repro.storage.pages` — fixed-size pages holding rows of one column
  group, mirroring the "each data page contains data from only a single
  vertical partition" storage setting.
* :mod:`repro.storage.engine` — a simulated disk plus a scan executor that
  *counts* blocks read, seeks performed and bytes transferred for a query over
  a partitioned table; used to validate the analytical HDD cost model.
* :mod:`repro.storage.compression` — the varying-length (LZO-like) and
  fixed-width dictionary encodings needed for the DBMS-X experiment.
* :mod:`repro.storage.dbms_x` — a simulated disk-based column-grouping DBMS
  used to regenerate Table 7.
"""

from repro.storage.data import generate_table_data
from repro.storage.pages import Page, PagedFile
from repro.storage.engine import ScanStatistics, SimulatedDisk, StorageEngine
from repro.storage.compression import (
    CompressionScheme,
    DictionaryCompression,
    NoCompression,
    VaryingLengthCompression,
)
from repro.storage.dbms_x import DbmsX, DbmsXConfig

__all__ = [
    "generate_table_data",
    "Page",
    "PagedFile",
    "SimulatedDisk",
    "StorageEngine",
    "ScanStatistics",
    "CompressionScheme",
    "NoCompression",
    "VaryingLengthCompression",
    "DictionaryCompression",
    "DbmsX",
    "DbmsXConfig",
]
