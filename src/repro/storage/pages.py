"""Pages and paged column-group files.

The unified storage setting of the paper stores each vertical partition
(column group) in its own file of fixed-size pages; a page never mixes data
from two partitions.  ``PagedFile`` models one such file: it knows how many
rows fit a page given the group's row width and exposes the page count — the
quantity both the analytical cost model and the simulated scans are built on.

Pages hold row identifiers rather than actual bytes: the simulator's purpose
is to count I/O, not to store payloads, so keeping only bookkeeping data lets
it scale to millions of rows without materialising gigabytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple


class PageLayoutError(ValueError):
    """Raised when a page/file layout parameter is invalid."""


@dataclass(frozen=True)
class Page:
    """One fixed-size page of a column-group file.

    Attributes
    ----------
    index:
        Position of the page within its file.
    first_row / row_count:
        The contiguous range of row identifiers stored in this page.
    """

    index: int
    first_row: int
    row_count: int

    @property
    def last_row(self) -> int:
        """Identifier of the last row stored in the page (inclusive)."""
        return self.first_row + self.row_count - 1

    def contains_row(self, row_id: int) -> bool:
        """True if ``row_id`` is stored in this page."""
        return self.first_row <= row_id <= self.last_row


@dataclass
class PagedFile:
    """A column-group file: rows of one vertical partition packed into pages.

    Parameters
    ----------
    name:
        File name, e.g. ``"lineitem.P1"``.
    row_size:
        Width in bytes of one row of the column group (after compression, if
        any — the caller passes the effective width).
    row_count:
        Number of rows stored.
    page_size:
        Page/block size in bytes.
    """

    name: str
    row_size: int
    row_count: int
    page_size: int

    def __post_init__(self) -> None:
        if self.row_size <= 0:
            raise PageLayoutError("row_size must be positive")
        if self.page_size <= 0:
            raise PageLayoutError("page_size must be positive")
        if self.row_count < 0:
            raise PageLayoutError("row_count must be non-negative")

    @property
    def rows_per_page(self) -> int:
        """Rows stored per page (at least 1; wide rows span pages logically)."""
        return max(1, self.page_size // self.row_size)

    @property
    def page_count(self) -> int:
        """Number of pages the file occupies."""
        if self.row_count == 0:
            return 0
        return math.ceil(self.row_count / self.rows_per_page)

    @property
    def size_in_bytes(self) -> int:
        """Total on-disk size (pages are allocated whole)."""
        return self.page_count * self.page_size

    def page_of_row(self, row_id: int) -> int:
        """Index of the page holding ``row_id``."""
        if not 0 <= row_id < self.row_count:
            raise PageLayoutError(
                f"row {row_id} outside [0, {self.row_count}) in file {self.name!r}"
            )
        return row_id // self.rows_per_page

    def pages(self) -> Iterator[Page]:
        """Iterate over the file's pages in order."""
        rows_per_page = self.rows_per_page
        for index in range(self.page_count):
            first_row = index * rows_per_page
            count = min(rows_per_page, self.row_count - first_row)
            yield Page(index=index, first_row=first_row, row_count=count)

    def pages_for_rows(self, row_ids: Sequence[int]) -> List[int]:
        """Distinct page indices needed to read the given rows, in order."""
        return sorted({self.page_of_row(row_id) for row_id in row_ids})
