"""DBMS-X: a simulated disk-based column-grouping DBMS (Table 7).

The paper's final experiment loads TPC-H (scale factor 10) into a commercial
column store ("DBMS-X") twice — once in pure column layout and once in the
vertically partitioned layout computed by HillClimb — and runs the unmodified
TPC-H workload under the system's default varying-length compression and again
with dictionary compression forced.  The observed shape is:

* Row ≫ Column and Row ≫ HillClimb for both compression schemes,
* Column beats HillClimb under the default varying-length compression (tuple
  reconstruction inside varying-length column groups is expensive), and
* the gap narrows — but does not flip — under fixed-width dictionary encoding.

We cannot run a proprietary engine, so ``DbmsX`` recreates the setting on top
of the storage simulator: compression determines the *effective* row widths of
each column group (less data to scan) and the reconstruction penalty
(varying-length groups pay extra CPU per tuple), and the simulated scans do
the rest.  Query 9 is excluded exactly as in the paper (the original
measurement discarded it because of a pathological plan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.partitioning import Partitioning
from repro.cost.disk import DEFAULT_DISK, DiskCharacteristics
from repro.storage.compression import (
    CompressionScheme,
    DictionaryCompression,
    VaryingLengthCompression,
)
from repro.storage.engine import ScanStatistics, SimulatedDisk, StorageEngine
from repro.workload.workload import Workload

#: The query the paper excludes from the DBMS-X measurement.
EXCLUDED_QUERIES = frozenset({"Q9"})


@dataclass
class DbmsXConfig:
    """Configuration of the simulated DBMS-X instance."""

    disk: DiskCharacteristics = DEFAULT_DISK
    compression: CompressionScheme = field(default_factory=VaryingLengthCompression)
    excluded_queries: frozenset = EXCLUDED_QUERIES
    #: Per-tuple-per-attribute cost (seconds) of reconstructing tuples *inside*
    #: a multi-attribute column group.  Varying-length encodings must chase
    #: per-value offsets; fixed-size dictionary codes use plain array
    #: arithmetic and pay roughly a quarter of that.  Single-attribute groups
    #: (pure columns) pay nothing — this is what makes the column layout win
    #: inside DBMS-X even though the I/O cost model favours column grouping.
    varying_length_decode_cost: float = 5.0e-8
    dictionary_decode_cost: float = 2.0e-8


class DbmsX:
    """A compressing, column-grouping DBMS simulated at the I/O level."""

    def __init__(self, config: Optional[DbmsXConfig] = None) -> None:
        self.config = config or DbmsXConfig()

    def load(self, partitioning: Partitioning) -> StorageEngine:
        """Load one table in the given layout, applying compression.

        The effective row width of each column group is the sum of its
        columns' compressed widths; the reconstruction penalty reflects
        whether the encoding is fixed-width.
        """
        schema = partitioning.schema
        compression = self.config.compression
        overrides: Dict[int, float] = {}
        for index, partition in enumerate(partitioning.partitions):
            effective = sum(
                compression.effective_width(schema.column_at(attribute))
                for attribute in partition.sorted_attributes()
            )
            overrides[index] = max(1.0, effective)
        return StorageEngine(
            partitioning=partitioning,
            disk=SimulatedDisk(self.config.disk),
            row_size_overrides=overrides,
            reconstruction_penalty=compression.reconstruction_penalty,
        )

    def run_workload(
        self, workload: Workload, partitioning: Partitioning
    ) -> ScanStatistics:
        """Run the workload (minus excluded queries) against one layout."""
        engine = self.load(partitioning)
        kept = [
            query for query in workload if query.name not in self.config.excluded_queries
        ]
        if not kept:
            return ScanStatistics()
        filtered = Workload(workload.schema, kept, name=f"{workload.name}-dbmsx")
        stats = engine.scan_workload(filtered)
        stats.cpu_seconds += self._decode_cost(filtered, partitioning)
        return stats

    def run_benchmark(
        self,
        workloads: Dict[str, Workload],
        layouts: Dict[str, Partitioning],
    ) -> float:
        """Total simulated runtime of a benchmark: one layout per table."""
        total = 0.0
        for table, workload in workloads.items():
            if table not in layouts:
                raise KeyError(f"no layout supplied for table {table!r}")
            total += self.run_workload(workload, layouts[table]).elapsed_seconds
        return total

    # -- internals ---------------------------------------------------------------

    def _decode_cost(self, workload: Workload, partitioning: Partitioning) -> float:
        """CPU cost of reconstructing tuples inside multi-attribute column groups.

        A pure column (single-attribute group) scans as a flat array and pays
        nothing.  A multi-attribute group must materialise each row from its
        encoded values: with varying-length encoding every value requires an
        offset lookup, with fixed-size dictionary codes the lookup is simple
        arithmetic and costs a fraction of that.  This intra-group
        reconstruction is what makes wide column groups comparatively
        expensive inside DBMS-X even though the I/O cost model favours them.
        """
        if self.config.compression.is_fixed_width():
            per_value = self.config.dictionary_decode_cost
        else:
            per_value = self.config.varying_length_decode_cost
        schema = workload.schema
        total = 0.0
        for query in workload:
            referenced = partitioning.referenced_partitions(query)
            attributes_in_groups = sum(
                len(partition) for partition in referenced if len(partition) > 1
            )
            total += query.weight * attributes_in_groups * schema.row_count * per_value
        return total
