"""Synthetic table data generation.

The paper loads TPC-H data generated with ``dbgen``; this module provides the
offline equivalent: deterministic, seedable synthetic data for any
:class:`~repro.workload.schema.TableSchema`.  Values only need to be *shaped*
like the real data (correct byte widths, plausible repetition for the
compression experiments), not semantically meaningful, because every
experiment in the paper measures I/O volume rather than query answers.

Columns are generated as numpy arrays:

* integer-typed columns get uniform integers with a configurable number of
  distinct values (keys get mostly-unique values, flags get very few),
* decimal/double columns get uniform floats,
* date columns get integers in a year-range,
* character columns get fixed-width byte strings drawn from a configurable
  dictionary of distinct values, which is what makes dictionary compression
  effective on them.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.workload.schema import Column, TableSchema

RandomState = Union[int, np.random.Generator, None]

#: Heuristic number of distinct values per SQL type, used when the caller does
#: not override it.  Low-cardinality columns compress well with dictionaries.
_DEFAULT_DISTINCT = {
    "int": 100_000,
    "integer": 100_000,
    "bigint": 1_000_000,
    "decimal": 50_000,
    "double": 50_000,
    "float": 50_000,
    "date": 2_500,
    "bool": 2,
}

#: Character columns repeat values from a pool of this many distinct strings.
_DEFAULT_STRING_DISTINCT = 1_000


def _rng(random_state: RandomState) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def _is_character(column: Column) -> bool:
    return column.sql_type.startswith(("char", "varchar", "text", "string"))


def generate_column_data(
    column: Column,
    row_count: int,
    distinct_values: Optional[int] = None,
    random_state: RandomState = 0,
) -> np.ndarray:
    """Generate one column's values.

    Returns an integer array for numeric/date columns and a fixed-width byte
    string array (dtype ``S<width>``) for character columns.
    """
    if row_count < 0:
        raise ValueError("row_count must be non-negative")
    rng = _rng(random_state)

    if _is_character(column):
        pool_size = distinct_values or min(_DEFAULT_STRING_DISTINCT, max(1, row_count))
        alphabet = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype="S1")
        pool = np.array(
            [
                b"".join(rng.choice(alphabet, size=column.width))
                for _ in range(pool_size)
            ],
            dtype=f"S{column.width}",
        )
        return rng.choice(pool, size=row_count)

    base_type = column.sql_type or "int"
    distinct = distinct_values or _DEFAULT_DISTINCT.get(base_type, 100_000)
    distinct = max(1, min(distinct, max(1, row_count)))
    if base_type in ("decimal", "double", "float"):
        values = rng.integers(0, distinct, size=row_count)
        return values.astype(np.float64) + rng.random(row_count)
    return rng.integers(0, distinct, size=row_count).astype(np.int64)


def generate_table_data(
    schema: TableSchema,
    row_count: Optional[int] = None,
    distinct_values: Optional[Dict[str, int]] = None,
    random_state: RandomState = 0,
) -> Dict[str, np.ndarray]:
    """Generate data for every column of ``schema``.

    Parameters
    ----------
    schema:
        The table to generate.
    row_count:
        Number of rows to generate; defaults to ``schema.row_count`` (which
        can be very large — pass an explicit smaller count for simulation).
    distinct_values:
        Optional per-column override of the number of distinct values.
    random_state:
        Seed or generator; the same seed always produces the same data.
    """
    rng = _rng(random_state)
    rows = schema.row_count if row_count is None else row_count
    overrides = distinct_values or {}
    data = {}
    for column in schema.columns:
        data[column.name] = generate_column_data(
            column,
            rows,
            distinct_values=overrides.get(column.name),
            random_state=rng,
        )
    return data
