"""Compression emulation for the DBMS-X experiment (Table 7).

The commercial column store the paper calls DBMS-X always compresses its data:
strings and floating point values use an LZO-style varying-length encoding,
integers and dates use delta encoding, and optionally everything can be forced
to fixed-size dictionary encoding.  The paper's observation is that

* with varying-length encoding, tuple reconstruction *within* a column group
  becomes expensive (offsets must be chased), widening the gap between the
  column layout and HillClimb's column-grouped layout, while
* with fixed-size dictionary encoding the gap narrows, but the column layout
  still wins.

For the reproduction we do not implement byte-level codecs; what matters for
the I/O-and-reconstruction measurements is (a) the *effective width* a value
occupies after encoding and (b) whether that width is fixed (cheap offset
arithmetic) or varying (per-value overhead during reconstruction).  Each
scheme therefore maps a :class:`~repro.workload.schema.Column` plus simple
data statistics to an effective width and a reconstruction penalty factor.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.workload.schema import Column


def _distinct_count(values: Optional[np.ndarray]) -> Optional[int]:
    if values is None or len(values) == 0:
        return None
    return int(len(np.unique(values)))


class CompressionScheme(abc.ABC):
    """Maps raw column widths to effective (compressed) widths."""

    #: Human-readable scheme name used in reports.
    name: str = "abstract"

    #: Multiplier applied to per-tuple reconstruction work inside a column
    #: group.  Fixed-width encodings allow direct offset arithmetic (1.0);
    #: varying-length encodings force offset chasing (> 1.0).
    reconstruction_penalty: float = 1.0

    @abc.abstractmethod
    def effective_width(
        self, column: Column, values: Optional[np.ndarray] = None
    ) -> float:
        """Average bytes one value of ``column`` occupies after encoding."""

    def is_fixed_width(self) -> bool:
        """True if every value occupies the same number of bytes."""
        return self.reconstruction_penalty <= 1.0


class NoCompression(CompressionScheme):
    """Identity scheme: values keep their declared width."""

    name = "none"
    reconstruction_penalty = 1.0

    def effective_width(self, column: Column, values: Optional[np.ndarray] = None) -> float:
        return float(column.width)


@dataclass
class VaryingLengthCompression(CompressionScheme):
    """LZO/delta-style varying length encoding (DBMS-X default).

    Strings and floats shrink to roughly ``string_ratio`` of their declared
    width; integers and dates delta-encode to a few bytes.  Because encoded
    values have varying sizes, reconstructing tuples inside a column group
    pays a per-value penalty.
    """

    string_ratio: float = 0.4
    numeric_width: float = 3.0
    name: str = "lzo-delta"
    reconstruction_penalty: float = 2.5

    def effective_width(self, column: Column, values: Optional[np.ndarray] = None) -> float:
        if column.sql_type.startswith(("char", "varchar", "text", "string")):
            return max(1.0, column.width * self.string_ratio)
        if column.sql_type in ("decimal", "double", "float"):
            return max(2.0, column.width * 0.6)
        # Integers and dates delta-encode very well.
        return min(float(column.width), self.numeric_width)


@dataclass
class DictionaryCompression(CompressionScheme):
    """Fixed-size dictionary encoding.

    Every value is replaced by a fixed-width code of ``ceil(log2(distinct))``
    bits, rounded up to whole bytes.  Without data statistics a conservative
    default of 2 bytes per value is used for narrow columns and 4 bytes for
    wide ones.
    """

    name: str = "dictionary"
    reconstruction_penalty: float = 1.0

    def effective_width(self, column: Column, values: Optional[np.ndarray] = None) -> float:
        distinct = _distinct_count(values)
        if distinct is None:
            return 2.0 if column.width <= 16 else 4.0
        bits = max(1, math.ceil(math.log2(max(2, distinct))))
        return max(1.0, math.ceil(bits / 8))


#: The two schemes compared in Table 7, keyed by the paper's row labels.
TABLE7_SCHEMES: Dict[str, CompressionScheme] = {
    "Default (LZO or Delta)": VaryingLengthCompression(),
    "Dictionary": DictionaryCompression(),
}
