"""Simulated storage engine.

``StorageEngine`` materialises a partitioned table as one
:class:`~repro.storage.pages.PagedFile` per column group and *simulates* query
execution against a :class:`SimulatedDisk`: it walks the referenced files the
way the paper's unified system would (buffered, tuple-by-tuple reconstruction,
the I/O buffer shared among the co-read partitions in proportion to their row
sizes) and counts every block read and every seek performed.

The simulation serves two purposes:

* it validates the analytical HDD cost model — the integration tests check
  that the simulated elapsed time matches
  :class:`repro.cost.hdd.HDDCostModel.query_cost` — and
* it provides the substrate for the DBMS-X experiment (Table 7), where
  compression changes the effective row widths and tuple reconstruction costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.partitioning import Partition, Partitioning
from repro.cost.disk import DEFAULT_DISK, DiskCharacteristics
from repro.storage.pages import PagedFile
from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload


@dataclass
class ScanStatistics:
    """Counters collected while simulating one query (or one workload).

    I/O time (seeks + sequential reads) and CPU time (tuple reconstruction,
    decompression) are tracked separately because the paper's analytical cost
    model covers only the I/O part; ``elapsed_seconds`` is their sum.
    """

    blocks_read: int = 0
    seeks: int = 0
    bytes_read: int = 0
    partitions_read: int = 0
    tuples_reconstructed: int = 0
    io_seconds: float = 0.0
    cpu_seconds: float = 0.0

    @property
    def elapsed_seconds(self) -> float:
        """Total simulated wall-clock time: I/O plus CPU."""
        return self.io_seconds + self.cpu_seconds

    def merge(self, other: "ScanStatistics") -> None:
        """Accumulate another set of counters into this one."""
        self.blocks_read += other.blocks_read
        self.seeks += other.seeks
        self.bytes_read += other.bytes_read
        self.partitions_read += other.partitions_read
        self.tuples_reconstructed += other.tuples_reconstructed
        self.io_seconds += other.io_seconds
        self.cpu_seconds += other.cpu_seconds


class SimulatedDisk:
    """A disk that converts block reads and seeks into elapsed time."""

    def __init__(self, characteristics: DiskCharacteristics = DEFAULT_DISK) -> None:
        self.characteristics = characteristics
        self.total_blocks_read = 0
        self.total_seeks = 0

    def read_blocks(self, count: int) -> float:
        """Sequentially read ``count`` blocks; returns the elapsed seconds."""
        if count < 0:
            raise ValueError("block count must be non-negative")
        self.total_blocks_read += count
        return count * self.characteristics.block_size / self.characteristics.read_bandwidth

    def seek(self, count: int = 1) -> float:
        """Perform ``count`` seeks; returns the elapsed seconds."""
        if count < 0:
            raise ValueError("seek count must be non-negative")
        self.total_seeks += count
        return count * self.characteristics.seek_time

    def reset_counters(self) -> None:
        """Zero the cumulative counters."""
        self.total_blocks_read = 0
        self.total_seeks = 0


class StorageEngine:
    """Materialises a partitioned table and simulates buffered scans over it."""

    #: CPU seconds charged per reconstructed tuple (before the penalty factor).
    PER_TUPLE_RECONSTRUCTION = 2e-8

    def __init__(
        self,
        partitioning: Partitioning,
        disk: Optional[SimulatedDisk] = None,
        row_size_overrides: Optional[Dict[int, float]] = None,
        reconstruction_penalty: float = 1.0,
    ) -> None:
        """Create column-group files for every partition of ``partitioning``.

        Parameters
        ----------
        partitioning:
            The layout to materialise.
        disk:
            The simulated disk; defaults to the paper's testbed characteristics.
        row_size_overrides:
            Optional mapping from partition index (position in
            ``partitioning.partitions``) to an effective row width in bytes —
            used by the compression emulation, where encoded rows are narrower
            than their declared widths.
        reconstruction_penalty:
            Per-tuple CPU work multiplier applied when a query has to
            reconstruct tuples from more than one partition (or from a
            varying-length-encoded group); expressed in seconds per million
            tuples per extra partition.
        """
        self.partitioning = partitioning
        self.disk = disk if disk is not None else SimulatedDisk()
        self.reconstruction_penalty = reconstruction_penalty
        schema = partitioning.schema
        overrides = row_size_overrides or {}
        self.files: List[PagedFile] = []
        for index, partition in enumerate(partitioning.partitions):
            row_size = overrides.get(index, partition.row_size(schema))
            self.files.append(
                PagedFile(
                    name=f"{schema.name}.P{index + 1}",
                    row_size=max(1, int(round(row_size))),
                    row_count=schema.row_count,
                    page_size=self.disk.characteristics.block_size,
                )
            )

    # -- storage facts ---------------------------------------------------------

    def total_size_in_bytes(self) -> int:
        """On-disk footprint of all column-group files."""
        return sum(file.size_in_bytes for file in self.files)

    def file_for(self, partition: Partition) -> PagedFile:
        """The file storing ``partition``."""
        for candidate, file in zip(self.partitioning.partitions, self.files):
            if candidate.attributes == partition.attributes:
                return file
        raise KeyError(f"partition {sorted(partition.attributes)} not materialised")

    # -- simulation ------------------------------------------------------------

    def scan_query(self, query: ResolvedQuery) -> ScanStatistics:
        """Simulate one query: buffered scan of every referenced partition.

        The I/O buffer is divided among the referenced partitions in
        proportion to their (effective) row sizes; each buffer refill costs one
        seek per partition, mirroring the analytical model.
        """
        stats = ScanStatistics()
        referenced = [
            (partition, file)
            for partition, file in zip(self.partitioning.partitions, self.files)
            if partition.is_referenced_by(query)
        ]
        if not referenced:
            return stats

        characteristics = self.disk.characteristics
        total_row_size = sum(file.row_size for _, file in referenced)
        stats.partitions_read = len(referenced)

        for _, file in referenced:
            buffer_bytes = int(
                characteristics.buffer_size * file.row_size / total_row_size
            )
            buffer_blocks = max(1, buffer_bytes // characteristics.block_size)
            blocks = file.page_count
            position = 0
            while position < blocks:
                chunk = min(buffer_blocks, blocks - position)
                stats.io_seconds += self.disk.seek(1)
                stats.io_seconds += self.disk.read_blocks(chunk)
                stats.seeks += 1
                stats.blocks_read += chunk
                stats.bytes_read += chunk * characteristics.block_size
                position += chunk

        # Tuple reconstruction: one "join" per extra referenced partition per
        # row.  The CPU work per reconstructed tuple is PER_TUPLE_RECONSTRUCTION
        # seconds scaled by the engine's penalty factor (1.0 = fixed-width
        # encoding, direct offset arithmetic; > 1.0 = varying-length encoding).
        extra_partitions = max(0, len(referenced) - 1)
        schema = self.partitioning.schema
        stats.tuples_reconstructed = schema.row_count * extra_partitions
        stats.cpu_seconds += (
            stats.tuples_reconstructed
            * self.reconstruction_penalty
            * self.PER_TUPLE_RECONSTRUCTION
        )
        return stats

    def scan_workload(self, workload: Workload) -> ScanStatistics:
        """Simulate every query of ``workload`` (weighted) and sum the counters."""
        total = ScanStatistics()
        for query in workload:
            stats = self.scan_query(query)
            repeat = query.weight
            total.blocks_read += int(stats.blocks_read * repeat)
            total.seeks += int(stats.seeks * repeat)
            total.bytes_read += int(stats.bytes_read * repeat)
            total.partitions_read += int(stats.partitions_read * repeat)
            total.tuples_reconstructed += int(stats.tuples_reconstructed * repeat)
            total.io_seconds += stats.io_seconds * repeat
            total.cpu_seconds += stats.cpu_seconds * repeat
        return total
