"""The grid runner: cached, resumable, optionally parallel cell execution.

:func:`run_grid` takes a :class:`~repro.grid.spec.GridSpec` and

1. resolves every workload and cost model once in the parent process to
   fingerprint each cell and derive its cache key,
2. serves every cell the cache can answer (missing/corrupt/stale entries are
   treated as misses — see :mod:`repro.grid.cache`),
3. executes the remaining cells either in-process (``workers <= 1``) or
   across a ``multiprocessing`` pool whose workers share memoized
   :class:`~repro.cost.evaluator.CostEvaluator` caches per schema,
4. persists each fresh result (cache writes happen only in the parent, so
   concurrent workers never race on files), and
5. returns a :class:`GridReport` ordered by the spec's canonical cell order —
   independent of pool completion order, so serial and parallel runs produce
   identical reports.

Interrupting a run loses only the cells in flight: everything already stored
is served from the cache on the next invocation, which is what makes large
grids resumable.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cost.evaluator import clear_shared_caches, enable_cache_sharing
from repro.grid import worker as grid_worker
from repro.grid.aggregate import headline_tables
from repro.grid.cache import ResultCache, cell_inputs, content_key
from repro.grid.spec import GridCell, GridSpec, resolve_cost_model, resolve_workload


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served) grid cell."""

    cell: GridCell
    key: str
    payload: Dict[str, object]
    cached: bool

    @property
    def estimated_cost(self) -> float:
        """Estimated workload cost of the cell's layout."""
        return float(self.payload["estimated_cost"])

    @property
    def layout(self) -> List[Tuple[str, ...]]:
        """The layout as tuples of attribute names (canonical order)."""
        return [tuple(group) for group in self.payload["layout"]]

    @property
    def measured(self) -> Optional[Dict[str, object]]:
        """The measured-execution section, or ``None``.

        ``None`` for estimated-backend cells and for measured cells whose
        cost model has no buffered-scan counterpart (e.g. main-memory).
        """
        measured = self.payload.get("measured")
        if isinstance(measured, dict) and measured.get("supported"):
            return measured
        return None


@dataclass
class GridReport:
    """All cell results of one grid run plus the cache accounting."""

    spec: GridSpec
    results: List[CellResult]
    cache: Optional[ResultCache] = None

    @property
    def cache_hits(self) -> int:
        """Cells served from the cache."""
        return sum(1 for result in self.results if result.cached)

    @property
    def computed(self) -> int:
        """Cells executed fresh."""
        return sum(1 for result in self.results if not result.cached)

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the cache."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    def cell(self, algorithm: str, workload: str, cost_model: str) -> CellResult:
        """The result of one (algorithm, workload, cost model) combination."""
        for result in self.results:
            if (
                result.cell.algorithm == algorithm
                and result.cell.workload == workload
                and result.cell.cost_model == cost_model
            ):
                return result
        raise KeyError(f"grid has no cell {algorithm}/{workload}/{cost_model}")

    def accounting(self) -> str:
        """The cache-hit accounting line (also printed by the CLI)."""
        return (
            f"cells: {self.cache_hits} cached, {self.computed} computed "
            f"({self.hit_rate * 100:.1f}% cache hits)"
        )

    def describe(self) -> str:
        """Shape line, cache line, and the headline tables."""
        lines = [self.spec.describe()]
        if self.cache is not None:
            lines.append(self.cache.describe())
        lines.append(self.accounting())
        lines.append("")
        lines.append(headline_tables(self.results))
        return "\n".join(lines)


def run_grid(
    spec: GridSpec,
    cache_dir: Optional[str] = None,
    workers: int = 1,
    refresh: bool = False,
    mp_start_method: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> GridReport:
    """Execute a comparison grid, serving unchanged cells from the cache.

    Parameters
    ----------
    spec:
        The grid to run.
    cache_dir:
        Root of the persistent result cache; ``None`` disables caching.
    workers:
        Pool size for fresh cells; ``<= 1`` executes in-process.
    refresh:
        Recompute every cell even when a trusted cache entry exists (entries
        are overwritten with the fresh results).
    mp_start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``, ...);
        ``None`` uses the platform default.
    progress:
        Optional callback receiving one line per completed cell.
    """
    cells = spec.cells()
    workloads = {wid: resolve_workload(wid) for wid in spec.workloads}
    cost_models = {cid: resolve_cost_model(cid) for cid in spec.cost_models}
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    inputs_by_cell: Dict[GridCell, Dict[str, object]] = {}
    keys_by_cell: Dict[GridCell, str] = {}
    for cell in cells:
        inputs = cell_inputs(
            cell.algorithm,
            cell.options(),
            cell.workload,
            workloads[cell.workload],
            cell.cost_model,
            cost_models[cell.cost_model],
            backend=cell.backend,
            measurement=cell.measurement_options(),
        )
        inputs_by_cell[cell] = inputs
        keys_by_cell[cell] = content_key(inputs)

    payloads: Dict[GridCell, Tuple[Dict[str, object], bool]] = {}
    pending: List[GridCell] = []
    for cell in cells:
        payload = None
        if cache is not None and not refresh:
            payload = cache.load(keys_by_cell[cell])
        if payload is not None:
            payloads[cell] = (payload, True)
            if progress is not None:
                progress(f"cached   {cell.label}")
        else:
            pending.append(cell)

    def _record(cell: GridCell, payload: Dict[str, object]) -> None:
        payloads[cell] = (payload, False)
        if cache is not None:
            cache.store(keys_by_cell[cell], inputs_by_cell[cell], payload)
        if progress is not None:
            progress(f"computed {cell.label}")

    if pending:
        if workers <= 1:
            # Seed the worker memos with the already-resolved objects, and
            # mirror the pool workers' shared-cache behaviour (it never
            # changes values) but restore the caller's setting afterwards.
            grid_worker._workloads.update(workloads)
            grid_worker._cost_models.update(cost_models)
            previous = enable_cache_sharing(True)
            try:
                for cell in pending:
                    _, payload = grid_worker.execute_cell(cell)
                    _record(cell, payload)
            finally:
                enable_cache_sharing(previous)
                if not previous:
                    # Sharing was ours alone — release the memoized profiles
                    # rather than retaining them for the process lifetime.
                    clear_shared_caches()
        else:
            context = multiprocessing.get_context(mp_start_method)
            with context.Pool(
                processes=min(workers, len(pending)),
                initializer=grid_worker.initialize_worker,
            ) as pool:
                for cell, payload in pool.imap_unordered(
                    grid_worker.execute_cell, pending, chunksize=1
                ):
                    _record(cell, payload)

    results = [
        CellResult(
            cell=cell,
            key=keys_by_cell[cell],
            payload=payloads[cell][0],
            cached=payloads[cell][1],
        )
        for cell in cells
    ]
    return GridReport(spec=spec, results=results, cache=cache)
