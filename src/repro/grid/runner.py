"""The grid runner: cached, resumable, fault-tolerant, optionally parallel.

:func:`run_grid` takes a :class:`~repro.grid.spec.GridSpec` and

1. resolves every workload and cost model once in the parent process to
   fingerprint each cell and derive its cache key,
2. serves every cell the cache can answer (missing/corrupt/stale entries are
   treated as misses — see :mod:`repro.grid.cache`),
3. executes the remaining cells either in-process (``workers <= 1``) or
   across a supervised set of persistent worker processes that share memoized
   :class:`~repro.cost.evaluator.CostEvaluator` caches per schema,
4. persists each fresh result (cache writes happen only in the parent, so
   concurrent workers never race on files), and
5. returns a :class:`GridReport` ordered by the spec's canonical cell order —
   independent of completion order, so serial and parallel runs produce
   identical reports.

Failure semantics (``docs/ROBUSTNESS.md`` is the full reference):

* A cell that raises is **quarantined**: after its retry budget is exhausted
  it becomes a :class:`CellFailure` carried inside its :class:`CellResult`,
  and the run continues.  Under ``fail_fast=True`` the first exhausted cell
  aborts the run with :class:`~repro.grid.spec.GridExecutionError` instead
  (already-completed cells are in the cache either way).
* Retries follow capped exponential backoff with *deterministic* jitter
  (:class:`RetryPolicy`): the delay before retrying a cell depends only on
  the cell label and the attempt number, never on a random source, so runs
  are reproducible.
* Parallel runs enforce a per-cell wall-clock ``cell_timeout``.  The
  supervisor owns one duplex pipe per worker and polls deadlines while
  waiting for answers, so a hung cell is killed and quarantined, and a worker
  that dies without answering (crash, OOM kill) is detected by liveness
  polling rather than hanging the run the way ``pool.imap_unordered`` did.
  Serial runs execute cells in the calling process and cannot preempt them;
  ``cell_timeout`` is ignored there (with a warning).
* Cache degradation: an unwritable or unreadable cache never kills a run —
  see :meth:`repro.grid.cache.ResultCache.store`.

Interrupting a run loses only the cells in flight: everything already stored
is served from the cache on the next invocation, which is what makes large
grids resumable.  Deterministic fault injection for every path above lives in
:mod:`repro.grid.faults`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time
import warnings
from collections import deque
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.cost.evaluator import clear_shared_caches, enable_cache_sharing
from repro.grid import faults as grid_faults
from repro.grid import worker as grid_worker
from repro.grid.aggregate import headline_tables
from repro.grid.cache import ResultCache, cell_inputs, content_key
from repro.grid.spec import (
    GridCancelled,
    GridCell,
    GridError,
    GridExecutionError,
    GridSpec,
    resolve_cost_model,
    resolve_workload,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.summary import RunTelemetry

#: Default base delay (seconds) of the retry backoff schedule.
DEFAULT_RETRY_BACKOFF = 0.05

# Supervisor-side fault and throughput counters (docs/OBSERVABILITY.md).
_RETRY_ATTEMPTS = obs_metrics.counter("grid.retry.attempts")
_RETRY_BACKOFF = obs_metrics.histogram("grid.retry.backoff_seconds")
_WORKER_CRASHES = obs_metrics.counter("grid.worker.crashes")
_CELL_TIMEOUTS = obs_metrics.counter("grid.cell.timeouts")
_CELLS_COMPUTED = obs_metrics.counter("grid.cells.computed")
_CELLS_FAILED = obs_metrics.counter("grid.cells.failed")

#: How long the parallel supervisor blocks waiting for worker answers before
#: re-checking deadlines, liveness and pending retries.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry budget and its deterministic backoff schedule.

    A cell gets ``retries`` extra attempts after its first.  The delay before
    retry ``attempt + 1`` is ``backoff_base * 2**(attempt-1)`` capped at
    ``backoff_cap``, scaled by a jitter factor in ``[0.5, 1.0]`` derived by
    hashing ``(cell label, attempt)`` — deterministic per cell and attempt
    (reruns behave identically), yet decorrelated across cells (a batch of
    failures does not retry in lockstep).
    """

    retries: int = 0
    backoff_base: float = DEFAULT_RETRY_BACKOFF
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")

    @property
    def max_attempts(self) -> int:
        """Total attempts a cell may use (first try + retries)."""
        return self.retries + 1

    def delay(self, label: str, attempt: int) -> float:
        """Seconds to wait before retrying ``label`` after failed ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        raw = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))
        digest = hashlib.sha256(f"{label}#{attempt}".encode("utf-8")).digest()
        jitter = 0.5 + (digest[0] / 255.0) * 0.5
        return raw * jitter


@dataclass(frozen=True)
class CellFailure:
    """Why one grid cell is quarantined: the failure as a first-class value.

    ``error_type`` is the exception class name for in-cell errors, or one of
    the supervisor's synthetic kinds: ``"WorkerCrash"`` (the worker process
    died without answering) and ``"CellTimeout"`` (the cell exceeded the
    per-cell wall-clock budget and its worker was killed).  ``attempts`` is
    how many attempts were spent before giving up.
    """

    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.error_type} after {self.attempts} attempt(s): {self.message}"
        )


@dataclass(frozen=True)
class CellResult:
    """One grid cell's outcome: a payload, a cache hit, or a quarantined failure."""

    cell: GridCell
    key: str
    payload: Optional[Dict[str, object]]
    cached: bool
    #: Attempts spent on the cell this run (1 for cache hits and first-try
    #: successes; > 1 means retries happened).
    attempts: int = 1
    #: ``None`` for successful cells; the quarantined failure otherwise.
    failure: Optional[CellFailure] = None

    @property
    def ok(self) -> bool:
        """Whether the cell produced a payload (fresh or cached)."""
        return self.failure is None

    def _require_payload(self) -> Dict[str, object]:
        if self.payload is None:
            detail = self.failure.describe() if self.failure else "no payload"
            raise ValueError(f"cell {self.cell.label} failed: {detail}")
        return self.payload

    @property
    def estimated_cost(self) -> float:
        """Estimated workload cost of the cell's layout."""
        return float(self._require_payload()["estimated_cost"])

    @property
    def layout(self) -> List[Tuple[str, ...]]:
        """The layout as tuples of attribute names (canonical order)."""
        return [tuple(group) for group in self._require_payload()["layout"]]

    @property
    def measured(self) -> Optional[Dict[str, object]]:
        """The measured-execution section, or ``None``.

        ``None`` for failed cells, estimated-backend cells, and measured
        cells whose cost model has no buffered-scan counterpart (e.g.
        main-memory).
        """
        if self.payload is None:
            return None
        measured = self.payload.get("measured")
        if isinstance(measured, dict) and measured.get("supported"):
            return measured
        return None

    @property
    def sqlite(self) -> Optional[Dict[str, object]]:
        """The sqlite-engine section, or ``None``.

        ``None`` for failed cells and cells of other backends.  The section
        holds only the deterministic facts (settings, prediction, scan
        accounting); the engine's wall clock lives in
        ``payload["timing"]["sqlite_seconds"]`` / ``["sqlite_query_seconds"]``.
        """
        if self.payload is None:
            return None
        section = self.payload.get("sqlite")
        if isinstance(section, dict) and section.get("supported"):
            return section
        return None


@dataclass
class GridReport:
    """All cell results of one grid run plus the cache accounting."""

    spec: GridSpec
    results: List[CellResult]
    cache: Optional[ResultCache] = None
    #: Run-level telemetry (phase timings, fault counts, metrics delta);
    #: always attached by :func:`run_grid`, ``None`` only for hand-built
    #: reports.
    telemetry: Optional[RunTelemetry] = None

    @property
    def cache_hits(self) -> int:
        """Cells served from the cache."""
        return sum(1 for result in self.results if result.cached)

    @property
    def computed(self) -> int:
        """Cells executed fresh and successfully."""
        return sum(
            1 for result in self.results if not result.cached and result.ok
        )

    @property
    def failures(self) -> List[CellResult]:
        """The quarantined cells (empty for a fully successful run)."""
        return [result for result in self.results if result.failure is not None]

    @property
    def failed(self) -> int:
        """Number of quarantined cells."""
        return len(self.failures)

    @property
    def ok(self) -> bool:
        """Whether every cell of the grid produced a result."""
        return self.failed == 0

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the cache."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    @property
    def cache_store_failures(self) -> int:
        """Cache writes that failed with I/O errors this run (0 without a cache)."""
        return self.cache.store_failures if self.cache is not None else 0

    @property
    def cache_load_failures(self) -> int:
        """Cache reads that failed with I/O errors this run (0 without a cache)."""
        return self.cache.load_failures if self.cache is not None else 0

    @property
    def cache_degraded(self) -> bool:
        """Whether the result cache hit any I/O failure during the run."""
        return bool(self.cache_store_failures or self.cache_load_failures)

    def cell(
        self,
        algorithm: str,
        workload: str,
        cost_model: str,
        backend: Optional[str] = None,
    ) -> CellResult:
        """The result of one (algorithm, workload, cost model) combination.

        ``backend`` disambiguates reports containing both an estimated and a
        measured cell for the same combination; leaving it ``None`` is only
        valid when a single backend matches.
        """
        matches = [
            result
            for result in self.results
            if result.cell.algorithm == algorithm
            and result.cell.workload == workload
            and result.cell.cost_model == cost_model
            and (backend is None or result.cell.backend == backend)
        ]
        if not matches:
            suffix = f" [{backend}]" if backend is not None else ""
            raise KeyError(
                f"grid has no cell {algorithm}/{workload}/{cost_model}{suffix}"
            )
        backends = {result.cell.backend for result in matches}
        if backend is None and len(backends) > 1:
            raise KeyError(
                f"cell {algorithm}/{workload}/{cost_model} is ambiguous: "
                f"present under backends {sorted(backends)}; pass backend="
            )
        return matches[0]

    def accounting(self) -> str:
        """The cache-hit accounting line (also printed by the CLI)."""
        failed = f", {self.failed} failed" if self.failed else ""
        return (
            f"cells: {self.cache_hits} cached, {self.computed} computed{failed} "
            f"({self.hit_rate * 100:.1f}% cache hits)"
        )

    def describe(self) -> str:
        """Shape line, cache line, and the headline tables."""
        lines = [self.spec.describe()]
        if self.cache is not None:
            lines.append(self.cache.describe())
        lines.append(self.accounting())
        lines.append("")
        lines.append(headline_tables(self.results))
        return "\n".join(lines)


# -- execution ------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """Parent-side view of one persistent worker process."""

    process: multiprocessing.process.BaseProcess
    conn: mp_connection.Connection
    #: The in-flight ``(cell, attempt)``, or ``None`` when idle.
    task: Optional[Tuple[GridCell, int]] = None
    #: Monotonic deadline of the in-flight attempt (``None``: no timeout).
    deadline: Optional[float] = None
    #: Monotonic time the in-flight attempt was assigned (for attributing
    #: wall time to attempts whose worker never answered).
    assigned_at: Optional[float] = None

    def assign(self, cell: GridCell, attempt: int, timeout: Optional[float]) -> None:
        self.task = (cell, attempt)
        self.assigned_at = time.monotonic()
        self.deadline = (self.assigned_at + timeout) if timeout else None
        self.conn.send((id(self), cell, attempt))

    def retire(self, kill: bool = False) -> None:
        """Shut the worker down; ``kill`` preempts instead of asking."""
        if kill and self.process.is_alive():
            self.process.kill()
        elif self.process.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck shutdown
            self.process.kill()
            self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class _GridExecutor:
    """Shared bookkeeping of one ``run_grid`` invocation's fresh cells."""

    def __init__(
        self,
        policy: RetryPolicy,
        fail_fast: bool,
        record: Callable[[GridCell, Optional[Dict[str, object]], int, Optional[CellFailure]], None],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        self.policy = policy
        self.fail_fast = fail_fast
        self.record = record
        self.progress = progress
        self.abort: Optional[GridExecutionError] = None
        # Run-level fault accounting, surfaced through ``RunTelemetry``.
        self.retries = 0
        self.worker_crashes = 0
        self.cell_timeouts = 0

    def _progress(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def finish_success(
        self, cell: GridCell, payload: Dict[str, object], attempts: int
    ) -> None:
        _CELLS_COMPUTED.value += 1
        self.record(cell, payload, attempts, None)
        suffix = f" (attempt {attempts})" if attempts > 1 else ""
        self._progress(f"computed {cell.label}{suffix}")

    def finish_failure(
        self, cell: GridCell, error_type: str, message: str, attempts: int
    ) -> None:
        _CELLS_FAILED.value += 1
        failure = CellFailure(error_type, message, attempts)
        self.record(cell, None, attempts, failure)
        self._progress(f"failed   {cell.label}: {failure.describe()}")
        if self.fail_fast and self.abort is None:
            self.abort = GridExecutionError(cell.label, error_type, message, attempts)

    def should_retry(self, attempt: int) -> bool:
        return attempt < self.policy.max_attempts

    def note_retry(self, cell: GridCell, attempt: int, error_type: str) -> float:
        """Log a scheduled retry, returning its backoff delay."""
        delay = self.policy.delay(cell.label, attempt)
        self.retries += 1
        _RETRY_ATTEMPTS.value += 1
        _RETRY_BACKOFF.observe(delay)
        obs_trace.event(
            "grid.retry",
            cell=cell.label,
            attempt=attempt,
            error=error_type,
            delay=delay,
        )
        left = self.policy.max_attempts - attempt
        self._progress(
            f"retry    {cell.label}: attempt {attempt} failed "
            f"({error_type}); {left} attempt(s) left"
        )
        return delay

    def note_worker_crash(
        self, cell: GridCell, attempt: int, exitcode: Optional[int], wall: float
    ) -> None:
        """Attribute a worker death to its in-flight attempt.

        The attempt's real span records died with the worker, so a
        ``grid.cell`` span (error status, wall from the supervisor's clock)
        is synthesized into the trace next to the crash event — the trace
        still accounts for every attempt.
        """
        self.worker_crashes += 1
        _WORKER_CRASHES.value += 1
        obs_trace.event(
            "grid.worker-crash", cell=cell.label, attempt=attempt, exitcode=exitcode
        )
        obs_trace.emit_span(
            "grid.cell",
            wall,
            status="error",
            error=f"WorkerCrash: worker died (exit code {exitcode})",
            cell=cell.label,
            attempt=attempt,
            synthesized=True,
        )

    def note_cell_timeout(
        self, cell: GridCell, attempt: int, timeout: float, wall: float
    ) -> None:
        """Attribute a SIGKILLed over-budget attempt; see :meth:`note_worker_crash`."""
        self.cell_timeouts += 1
        _CELL_TIMEOUTS.value += 1
        obs_trace.event(
            "grid.cell-timeout", cell=cell.label, attempt=attempt, timeout=timeout
        )
        obs_trace.emit_span(
            "grid.cell",
            wall,
            status="error",
            error=f"CellTimeout: attempt exceeded {timeout:g}s",
            cell=cell.label,
            attempt=attempt,
            synthesized=True,
        )


def _check_cancelled(
    cancel_event: Optional[threading.Event], completed: int, pending: int
) -> None:
    """Raise :class:`GridCancelled` when the run's cancel event is set."""
    if cancel_event is not None and cancel_event.is_set():
        obs_trace.event("grid.cancelled", completed=completed, pending=pending)
        raise GridCancelled(completed=completed, pending=pending)


def _execute_serial(
    executor: _GridExecutor,
    pending: List[GridCell],
    cancel_event: Optional[threading.Event] = None,
) -> None:
    """Run pending cells in-process, with retries and quarantine.

    Wall-clock timeouts are not enforced here: the cell runs on the caller's
    own thread and cannot be preempted (``run_grid`` warns when a timeout is
    requested serially).  ``die`` faults degrade to raising for the same
    reason (see :func:`repro.grid.faults.trigger`).  Cancellation is
    cooperative and checked between attempts — a set ``cancel_event`` stops
    the run at the next attempt boundary, never mid-cell.
    """
    total = len(pending)
    for index, cell in enumerate(pending):
        attempt = 0
        while True:
            _check_cancelled(cancel_event, completed=index, pending=total - index)
            attempt += 1
            try:
                with obs_trace.span("grid.cell", cell=cell.label, attempt=attempt):
                    payload = grid_worker.execute_attempt(
                        cell, attempt, in_process=True
                    )
            except Exception as error:
                error_type, message = grid_worker.describe_error(error)
                if executor.should_retry(attempt):
                    delay = executor.note_retry(cell, attempt, error_type)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                executor.finish_failure(cell, error_type, message, attempt)
                break
            executor.finish_success(cell, payload, attempt)
            break
        if executor.abort is not None:
            raise executor.abort


def _execute_parallel(
    executor: _GridExecutor,
    pending: List[GridCell],
    workers: int,
    cell_timeout: Optional[float],
    mp_start_method: Optional[str],
    cancel_event: Optional[threading.Event] = None,
) -> None:
    """Run pending cells across supervised persistent worker processes.

    The supervisor keeps at most one in-flight attempt per worker, so every
    answer (or death) is attributable to exactly one cell.  Each loop
    iteration: promote due retries, assign ready cells to idle workers
    (starting workers on demand up to ``workers``), block briefly on the busy
    workers' pipes, then check deadlines and liveness.  A worker that died
    without answering is a ``WorkerCrash``; an attempt past its deadline gets
    its worker killed and is a ``CellTimeout`` — both feed the same
    retry-then-quarantine path as an in-cell exception.
    """
    context = multiprocessing.get_context(mp_start_method)
    ready: deque = deque((cell, 1) for cell in pending)
    waiting: List[Tuple[float, GridCell, int]] = []  # (not_before, cell, attempt)
    handles: List[_WorkerHandle] = []
    remaining = len(pending)

    def _start_worker() -> _WorkerHandle:
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=grid_worker.worker_loop, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process=process, conn=parent_conn)

    def _attempt_failed(
        handle_task: Tuple[GridCell, int], error_type: str, message: str
    ) -> None:
        nonlocal remaining
        cell, attempt = handle_task
        if executor.should_retry(attempt):
            delay = executor.note_retry(cell, attempt, error_type)
            waiting.append((time.monotonic() + delay, cell, attempt + 1))
        else:
            executor.finish_failure(cell, error_type, message, attempt)
            remaining -= 1

    try:
        while remaining > 0 and executor.abort is None:
            _check_cancelled(
                cancel_event,
                completed=len(pending) - remaining,
                pending=remaining,
            )
            now = time.monotonic()
            if waiting:
                due = [item for item in waiting if item[0] <= now]
                if due:
                    waiting[:] = [item for item in waiting if item[0] > now]
                    ready.extend((cell, attempt) for _, cell, attempt in due)

            # Assign ready attempts to idle live workers, starting new ones on
            # demand; drop workers found dead while idle (already-answered).
            for handle in list(handles):
                if handle.task is None and not handle.process.is_alive():
                    handles.remove(handle)
                    handle.retire()
            for handle in handles:
                if ready and handle.task is None:
                    cell, attempt = ready.popleft()
                    handle.assign(cell, attempt, cell_timeout)
            while ready and len(handles) < workers:
                handle = _start_worker()
                handles.append(handle)
                cell, attempt = ready.popleft()
                handle.assign(cell, attempt, cell_timeout)

            busy = [handle for handle in handles if handle.task is not None]
            if not busy:
                if waiting:
                    next_due = min(item[0] for item in waiting)
                    time.sleep(max(0.0, min(_POLL_SECONDS, next_due - time.monotonic())))
                continue

            for conn in mp_connection.wait(
                [handle.conn for handle in busy], timeout=_POLL_SECONDS
            ):
                handle = next(h for h in busy if h.conn is conn)
                if handle.task is None:
                    continue
                task = handle.task
                assigned_at = handle.assigned_at
                try:
                    _, status, detail, telemetry = conn.recv()
                except (EOFError, OSError):
                    # The pipe closed without an answer: the worker is gone.
                    # Join before reading the exit code — a child that closed
                    # the pipe via ``os._exit`` may not be reapable yet, and
                    # an unjoined process polls its exit code as ``None``.
                    handles.remove(handle)
                    handle.process.join(timeout=5)
                    exitcode = handle.process.exitcode
                    handle.retire(kill=True)
                    handle.task = None
                    wall = time.monotonic() - assigned_at if assigned_at else 0.0
                    executor.note_worker_crash(task[0], task[1], exitcode, wall)
                    _attempt_failed(
                        task,
                        "WorkerCrash",
                        f"worker process died without returning a result "
                        f"(exit code {exitcode})",
                    )
                    continue
                handle.task = None
                handle.deadline = None
                handle.assigned_at = None
                cell, attempt = task
                if telemetry:
                    obs_metrics.registry().merge(telemetry.get("metrics") or {})
                    obs_trace.adopt_spans(
                        telemetry.get("spans") or (),
                        obs_trace.task_seed(cell.label, attempt),
                    )
                if status == "ok":
                    executor.finish_success(cell, detail, attempt)
                    remaining -= 1
                else:
                    error_type, message = detail
                    _attempt_failed(task, error_type, message)

            now = time.monotonic()
            for handle in list(handles):
                if handle.task is None:
                    continue
                task = handle.task
                if not handle.process.is_alive():
                    if handle.conn.poll(0):
                        # Its final answer is still in the pipe; the next
                        # iteration's wait() will deliver it.
                        continue
                    handles.remove(handle)
                    handle.process.join(timeout=5)
                    exitcode = handle.process.exitcode
                    assigned_at = handle.assigned_at
                    handle.retire(kill=True)
                    handle.task = None
                    wall = now - assigned_at if assigned_at else 0.0
                    executor.note_worker_crash(task[0], task[1], exitcode, wall)
                    _attempt_failed(
                        task,
                        "WorkerCrash",
                        f"worker process died without returning a result "
                        f"(exit code {exitcode})",
                    )
                elif handle.deadline is not None and now >= handle.deadline:
                    handles.remove(handle)
                    assigned_at = handle.assigned_at
                    handle.task = None
                    handle.retire(kill=True)
                    attempt = task[1]
                    wall = now - assigned_at if assigned_at else 0.0
                    executor.note_cell_timeout(task[0], attempt, cell_timeout, wall)
                    _attempt_failed(
                        task,
                        "CellTimeout",
                        f"attempt {attempt} exceeded the cell timeout "
                        f"({cell_timeout:g}s); worker killed",
                    )
        if executor.abort is not None:
            raise executor.abort
    finally:
        for handle in handles:
            handle.retire(kill=handle.task is not None)


def run_grid(
    spec: GridSpec,
    cache_dir: Optional[str] = None,
    workers: int = 1,
    refresh: bool = False,
    mp_start_method: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    cell_timeout: Optional[float] = None,
    retries: Union[int, RetryPolicy] = 0,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    fail_fast: bool = False,
    faults: Optional[Union[grid_faults.FaultPlan, Mapping[str, object]]] = None,
    trace: Optional[str] = None,
    cancel_event: Optional[threading.Event] = None,
) -> GridReport:
    """Execute a comparison grid, serving unchanged cells from the cache.

    Parameters
    ----------
    spec:
        The grid to run.
    cache_dir:
        Root of the persistent result cache; ``None`` disables caching.
    workers:
        Worker-process count for fresh cells; ``<= 1`` executes in-process.
    refresh:
        Recompute every cell even when a trusted cache entry exists (entries
        are overwritten with the fresh results).
    mp_start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``, ...);
        ``None`` uses the platform default.
    progress:
        Optional callback receiving one line per completed/retried/failed
        cell.
    cell_timeout:
        Per-cell wall-clock budget in seconds.  Parallel runs kill the
        worker of an attempt that exceeds it and quarantine (or retry) the
        cell; serial runs cannot preempt a running cell, so the timeout is
        ignored there with a warning.
    retries:
        Extra attempts per failing cell (an ``int``), or a full
        :class:`RetryPolicy` for explicit backoff control.
    retry_backoff:
        Base backoff delay in seconds when ``retries`` is an ``int``
        (exponential per attempt, capped, deterministic jitter).
    fail_fast:
        Abort with :class:`~repro.grid.spec.GridExecutionError` on the first
        cell that exhausts its attempts, instead of quarantining it and
        continuing (the default, *keep going*).
    faults:
        Optional deterministic fault plan (:class:`~repro.grid.faults
        .FaultPlan` or a plain mapping) installed for the duration of the
        run — the test harness's entry point; see :mod:`repro.grid.faults`.
    trace:
        Path of a JSONL trace file to write (``docs/OBSERVABILITY.md``).
        Enables span collection in worker processes; every phase, cell
        attempt, retry, crash and timeout is recorded, and the run's metrics
        delta is appended as the final record.  ``None`` (the default) keeps
        tracing off — instrumented call sites stay no-op-cheap.
    cancel_event:
        Optional :class:`threading.Event` enabling cooperative cancellation
        from another thread: once set, the run stops at the next supervisor
        iteration (parallel — in-flight workers are killed) or attempt
        boundary (serial) and raises :class:`~repro.grid.spec.GridCancelled`.
        Cells already completed were persisted to the cache, so a cancelled
        run resumes exactly like an interrupted one.  This is what the
        advisor service's job cancellation and per-job timeouts thread into
        the supervisor loop (``docs/SERVICE.md``).

    Failed cells appear in the returned report as :class:`CellResult` rows
    with a :class:`CellFailure` (``report.failures``); failures are never
    written to the cache, so a rerun retries exactly the lost cells.  The
    report's :attr:`GridReport.telemetry` always carries a
    :class:`~repro.obs.summary.RunTelemetry` summary, traced or not.
    """
    policy = (
        retries
        if isinstance(retries, RetryPolicy)
        else RetryPolicy(retries=retries, backoff_base=retry_backoff)
    )
    if cell_timeout is not None and cell_timeout <= 0:
        raise GridError("cell_timeout must be > 0 seconds")
    if cell_timeout is not None and workers <= 1:
        warnings.warn(
            "cell_timeout is only enforced by parallel runs (workers >= 2); "
            "serial cells run in-process and cannot be preempted",
            RuntimeWarning,
            stacklevel=2,
        )

    run_started = time.perf_counter()
    baseline_metrics = obs_metrics.registry().snapshot()
    phases: Dict[str, float] = {}

    cells = spec.cells()
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    with ExitStack() as stack:
        if trace is not None:
            stack.enter_context(
                obs_trace.tracing(
                    trace,
                    spec.name,
                    {
                        "cells": spec.cell_count,
                        "backend": spec.backend,
                        "workers": workers,
                    },
                )
            )
            # Workers (fork or spawn) inherit the environment and buffer
            # their spans for the supervisor to adopt.
            stack.enter_context(obs_trace.collection_env())

        with obs_trace.timed("grid.resolve") as timer:
            workloads = {wid: resolve_workload(wid) for wid in spec.workloads}
            cost_models = {
                cid: resolve_cost_model(cid) for cid in spec.cost_models
            }
            inputs_by_cell: Dict[GridCell, Dict[str, object]] = {}
            keys_by_cell: Dict[GridCell, str] = {}
            for cell in cells:
                inputs = cell_inputs(
                    cell.algorithm,
                    cell.options(),
                    cell.workload,
                    workloads[cell.workload],
                    cell.cost_model,
                    cost_models[cell.cost_model],
                    backend=cell.backend,
                    measurement=cell.measurement_options(),
                )
                inputs_by_cell[cell] = inputs
                keys_by_cell[cell] = content_key(inputs)
        phases["grid.resolve"] = timer.wall

        outcomes: Dict[GridCell, Tuple[Optional[Dict[str, object]], bool, int, Optional[CellFailure]]] = {}
        pending: List[GridCell] = []
        with obs_trace.timed("grid.cache-scan") as timer:
            for cell in cells:
                payload = None
                if cache is not None and not refresh:
                    payload = cache.load(keys_by_cell[cell])
                if payload is not None:
                    outcomes[cell] = (payload, True, 1, None)
                    obs_trace.event("grid.cache-hit", cell=cell.label)
                    if progress is not None:
                        progress(f"cached   {cell.label}")
                else:
                    pending.append(cell)
        phases["grid.cache-scan"] = timer.wall

        def _record(
            cell: GridCell,
            payload: Optional[Dict[str, object]],
            attempts: int,
            failure: Optional[CellFailure],
        ) -> None:
            outcomes[cell] = (payload, False, attempts, failure)
            if failure is None and payload is not None and cache is not None:
                cache.store(keys_by_cell[cell], inputs_by_cell[cell], payload)

        executor = _GridExecutor(
            policy=policy, fail_fast=fail_fast, record=_record, progress=progress
        )
        with obs_trace.timed("grid.execute") as timer:
            if pending:
                with grid_faults.injected(faults) if faults is not None else nullcontext():
                    if workers <= 1:
                        # Seed the worker memos with the already-resolved
                        # objects and mirror the pool workers' shared-cache
                        # behaviour, but restore both the caller's sharing
                        # setting *and* the memo contents afterwards — the
                        # serial path must not leak module-global state into
                        # the calling process.
                        saved_workloads = dict(grid_worker._workloads)
                        saved_cost_models = dict(grid_worker._cost_models)
                        grid_worker._workloads.update(workloads)
                        grid_worker._cost_models.update(cost_models)
                        previous = enable_cache_sharing(True)
                        try:
                            _execute_serial(executor, pending, cancel_event)
                        finally:
                            enable_cache_sharing(previous)
                            if not previous:
                                # Sharing was ours alone — release the
                                # memoized profiles rather than retaining
                                # them for the process lifetime.
                                clear_shared_caches()
                            grid_worker._workloads.clear()
                            grid_worker._workloads.update(saved_workloads)
                            grid_worker._cost_models.clear()
                            grid_worker._cost_models.update(saved_cost_models)
                    else:
                        _execute_parallel(
                            executor, pending, workers, cell_timeout,
                            mp_start_method, cancel_event,
                        )
        phases["grid.execute"] = timer.wall

        # The run's own metrics delta closes the trace; computed inside the
        # tracing context so the record lands in the file.
        run_metrics = obs_metrics.registry().delta(baseline_metrics)
        obs_trace.emit_metrics(run_metrics)

    results = [
        CellResult(
            cell=cell,
            key=keys_by_cell[cell],
            payload=outcomes[cell][0],
            cached=outcomes[cell][1],
            attempts=outcomes[cell][2],
            failure=outcomes[cell][3],
        )
        for cell in cells
    ]
    telemetry = RunTelemetry(
        run=spec.name,
        wall_seconds=time.perf_counter() - run_started,
        phases=phases,
        cells_total=len(results),
        cells_cached=sum(1 for result in results if result.cached),
        cells_computed=sum(
            1 for result in results if not result.cached and result.ok
        ),
        cells_failed=sum(1 for result in results if result.failure is not None),
        retries=executor.retries,
        worker_crashes=executor.worker_crashes,
        cell_timeouts=executor.cell_timeouts,
        cache_stores=cache.stores if cache is not None else 0,
        cache_store_failures=cache.store_failures if cache is not None else 0,
        cache_load_failures=cache.load_failures if cache is not None else 0,
        metrics=run_metrics,
        trace_path=trace,
    )
    return GridReport(spec=spec, results=results, cache=cache, telemetry=telemetry)
