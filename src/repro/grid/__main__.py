"""``python -m repro.grid`` dispatch."""

import os
import sys

from repro.grid.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; exit quietly after
        # pointing stdout at devnull so interpreter shutdown cannot re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
