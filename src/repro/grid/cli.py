"""Command-line entry point: ``python -m repro.grid``.

Runs a comparison grid — builtin (``--grid tiny|small|full``) or assembled
from explicit axes (``--algorithms``, ``--workloads``, ``--cost-models``) —
against a persistent result cache and prints the cache accounting followed by
the headline tables.  A second identical invocation is served almost entirely
from the cache; an interrupted run resumes where it stopped.

``--backend measured`` additionally executes every cell's layout on the
vectorized scan executor (``--measured-rows`` rows of seed ``--data-seed``
synthetic data) and appends the estimated-vs-measured agreement tables; see
``docs/EXECUTION.md``.  ``--backend sqlite`` instead materialises every
cell's layout as real SQLite tables (optionally at ``--sqlite-page-size``)
and appends the estimated-vs-engine agreement tables; see
``docs/ENGINE_X.md``.

Failure semantics (``docs/ROBUSTNESS.md``): by default the run *keeps going* —
a cell that exhausts its ``--retries`` budget (or exceeds ``--cell-timeout``,
or loses its worker process) is quarantined as a failure row in the report and
the exit code stays 0 with a failure summary on stderr.  ``--fail-fast``
instead aborts on the first exhausted cell with a non-zero exit code;
completed cells are already in the cache either way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.grid.runner import run_grid
from repro.grid.spec import (
    BACKENDS,
    BUILTIN_GRIDS,
    GridError,
    GridExecutionError,
    GridSpec,
    builtin_grid,
)

#: Cache location used when the caller does not pass ``--cache-dir``.
DEFAULT_CACHE_DIR = ".grid-cache"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for ``--help`` testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.grid",
        description=(
            "Run a comparison grid (algorithm x workload x cost model) with a "
            "persistent result cache."
        ),
    )
    parser.add_argument(
        "--grid",
        default="small",
        help=f"builtin grid to run ({', '.join(sorted(BUILTIN_GRIDS))}); default: small",
    )
    parser.add_argument(
        "--algorithms",
        help="comma-separated algorithm names overriding the builtin grid's axis",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated workload ids overriding the builtin grid's axis",
    )
    parser.add_argument(
        "--cost-models",
        help="comma-separated cost model ids overriding the builtin grid's axis",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="estimated",
        help=(
            "cell backend: 'estimated' (analytical costs only), 'measured' "
            "(also execute each layout on the vectorized scan executor and "
            "report estimated-vs-measured agreement) or 'sqlite' (also run "
            "each layout on embedded SQLite and report estimated-vs-engine "
            "agreement)"
        ),
    )
    parser.add_argument(
        "--measured-rows",
        type=int,
        default=None,
        metavar="N",
        help="measured/sqlite backends: row count tables are materialised at "
        "(default: the executor's default)",
    )
    parser.add_argument(
        "--data-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="measured/sqlite backends: synthetic data seed (default: 0)",
    )
    parser.add_argument(
        "--sqlite-page-size",
        type=int,
        default=None,
        metavar="BYTES",
        help="sqlite backend: engine page size, a power of two in "
        "[512, 65536] (default: 4096)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process pool size for fresh cells (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run without reading or writing the result cache",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every cell, overwriting cached entries",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress all non-table output (spec shape, progress lines, "
        "cache accounting, telemetry); only the headline tables are printed",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL trace of the run (spans, events, metrics) to "
        "PATH; inspect it with `python -m repro.obs summary PATH` "
        "(see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock budget; an attempt exceeding it has its "
            "worker killed and the cell retried/quarantined (parallel runs "
            "only: serial cells cannot be preempted)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "extra attempts per failing cell, with capped exponential "
            "backoff and deterministic jitter (default: 0)"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay of the retry backoff schedule (default: 0.05)",
    )
    failure_mode = parser.add_mutually_exclusive_group()
    failure_mode.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help=(
            "quarantine failing cells and finish the grid (default); the "
            "exit code stays 0 and failures are summarised"
        ),
    )
    failure_mode.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        help="abort with a non-zero exit code on the first cell that "
        "exhausts its attempts",
    )
    parser.set_defaults(fail_fast=False)
    return parser


def _measurement_from_args(args: argparse.Namespace) -> Optional[dict]:
    measurement = {}
    if args.measured_rows is not None:
        measurement["rows"] = args.measured_rows
    if args.data_seed is not None:
        measurement["data_seed"] = args.data_seed
    if args.sqlite_page_size is not None:
        measurement["page_size"] = args.sqlite_page_size
    return measurement or None


def _spec_from_args(args: argparse.Namespace) -> GridSpec:
    base = builtin_grid(args.grid)
    overrides = {}
    for axis in ("algorithms", "workloads", "cost_models"):
        raw = getattr(args, axis)
        if raw:
            overrides[axis] = tuple(part.strip() for part in raw.split(",") if part.strip())
    if (args.measured_rows is not None or args.data_seed is not None) and (
        args.backend not in ("measured", "sqlite")
    ):
        raise GridError(
            "--measured-rows/--data-seed require --backend measured or sqlite"
        )
    if args.sqlite_page_size is not None and args.backend != "sqlite":
        raise GridError("--sqlite-page-size requires --backend sqlite")
    if not overrides and args.backend == "estimated":
        return base
    suffixes = [name for name, used in (("custom", bool(overrides)),
                                        (args.backend, args.backend != "estimated"))
                if used]
    return GridSpec(
        name="+".join([base.name] + suffixes),
        algorithms=overrides.get("algorithms", base.algorithms),
        workloads=overrides.get("workloads", base.workloads),
        cost_models=overrides.get("cost_models", base.cost_models),
        algorithm_options=dict(
            (name, dict(options)) for name, options in base.algorithm_options
        ),
        backend=args.backend,
        measurement=_measurement_from_args(args),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Run the grid CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        spec = _spec_from_args(args)
    except GridError as error:
        parser.error(str(error))
        return 2  # unreachable; parser.error raises SystemExit

    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be > 0 seconds")
    if args.cell_timeout is not None and args.workers <= 1:
        print(
            "note: --cell-timeout is only enforced with --workers >= 2 "
            "(serial cells run in-process and cannot be preempted)",
            file=sys.stderr,
        )

    progress = None if args.quiet else lambda line: print(f"  {line}")
    if not args.quiet:
        print(spec.describe())
    run_options = {}
    if args.retry_backoff is not None:
        run_options["retry_backoff"] = args.retry_backoff
    try:
        report = run_grid(
            spec,
            cache_dir=None if args.no_cache else args.cache_dir,
            workers=args.workers,
            refresh=args.refresh,
            progress=progress,
            cell_timeout=args.cell_timeout,
            retries=args.retries,
            fail_fast=args.fail_fast,
            trace=args.trace,
            **run_options,
        )
    except GridExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "fail-fast abort: cells completed before the failure are cached; "
            "rerun to resume (or rerun with --keep-going to quarantine "
            "failures instead)",
            file=sys.stderr,
        )
        return 1
    except GridError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.quiet:
        # Quiet mode prints the headline tables and nothing else; everything
        # diagnostic (accounting, telemetry, warnings) belongs to stderr or
        # the non-quiet path.
        from repro.grid.aggregate import headline_tables

        print(headline_tables(report.results))
    else:
        # GridReport.describe() is the single source of the report format;
        # skip its first line (the spec shape) — printed above before the run
        # started.
        print("\n".join(report.describe().splitlines()[1:]))
        if report.telemetry is not None:
            print(report.telemetry.describe())
    if report.cache_degraded:
        print(
            f"warning: result cache degraded: "
            f"{report.cache_store_failures} store / "
            f"{report.cache_load_failures} load I/O failures — affected "
            f"cells ran cache-less and will be recomputed next run",
            file=sys.stderr,
        )
    if report.failures:
        # Keep-going semantics: the run completed and the tables above carry
        # every successful cell, so the exit code stays 0 — but the failures
        # are summarised loudly on stderr (they also appear in the Failures
        # table and are *not* cached: a rerun retries exactly these cells).
        print(
            f"warning: {report.failed} of {len(report.results)} cells failed "
            f"and were quarantined:",
            file=sys.stderr,
        )
        for result in report.failures:
            print(
                f"  {result.cell.label}: {result.failure.describe()}",
                file=sys.stderr,
            )
    return 0
