"""Grid cell execution, shared by the in-process path and pool workers.

A work item is just a :class:`~repro.grid.spec.GridCell` — strings and plain
options — so nothing heavyweight ever crosses the process boundary.  Workers
re-resolve workloads and cost models from their ids and memoize them per
process; the memoized :class:`~repro.cost.evaluator.CostEvaluator` kernel's
process-local cache sharing is switched on by :func:`initialize_worker`, so
every cell an algorithm runs on a schema the worker has seen before reuses the
already-memoized group profiles and co-read costs (cells of one workload are
adjacent in the grid order precisely to feed this).

Parallel runs are driven by :func:`worker_loop`: each worker is a long-lived
process holding one end of a duplex pipe, receiving ``(index, cell, attempt)``
tasks and answering with the payload or a captured failure description.  A
cell that raises therefore *returns* a failure instead of tearing the worker
(or, as ``pool.imap_unordered`` used to, the whole run) down; only a crashed
or killed process ever fails to answer, and the supervisor in
:mod:`repro.grid.runner` detects exactly that.

The functions here are module-level so they stay picklable under every
``multiprocessing`` start method, including ``spawn``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.grid import faults as grid_faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

from repro.core.algorithm import PartitioningResult, get_algorithm
from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    partitioning_from_names,
    row_partitioning,
)
from repro.cost.base import CostModel
from repro.cost.creation import estimate_creation_time
from repro.cost.evaluator import enable_cache_sharing
from repro.exec.executor import (
    VectorizedScanExecutor,
    measured_buffer_sharing,
    measured_disk,
    unwrap_cost_model,
)
from repro.grid.spec import (
    GridCell,
    resolve_cost_model,
    resolve_measurement,
    resolve_sqlite_measurement,
    resolve_workload,
)
from repro.metrics.agreement import relative_error
from repro.metrics.quality import (
    average_reconstruction_joins,
    improvement_over,
    unnecessary_data_fraction,
)
from repro.workload.workload import Workload

# Per-process memos; populated lazily, valid for the worker's lifetime.  The
# baseline memo is keyed by content (the workload itself plus the model's
# parameter description), not by id, so re-registering an id with different
# content can never serve stale baseline costs.  The measured-data memo is
# keyed by (schema, requested rows, data seed) — generation is fully
# determined by those, so every algorithm cell sharing a workload reuses one
# generated dataset instead of regenerating byte-identical arrays.
_workloads: Dict[str, Workload] = {}
_cost_models: Dict[str, CostModel] = {}
_baselines: Dict[Tuple[Workload, str], Tuple[float, float]] = {}
_measured_data: Dict[Tuple[object, int, int], Dict[str, object]] = {}


def initialize_worker() -> None:
    """Pool initializer: turn on process-local evaluator cache sharing."""
    enable_cache_sharing(True)


def _workload(workload_id: str) -> Workload:
    workload = _workloads.get(workload_id)
    if workload is None:
        workload = resolve_workload(workload_id)
        _workloads[workload_id] = workload
    return workload


def _cost_model(cost_model_id: str) -> CostModel:
    cost_model = _cost_models.get(cost_model_id)
    if cost_model is None:
        cost_model = resolve_cost_model(cost_model_id)
        _cost_models[cost_model_id] = cost_model
    return cost_model


def baseline_costs_for(workload: Workload, cost_model: CostModel) -> Tuple[float, float]:
    """(row cost, column cost) of one workload under one model, memoized.

    Shared by the grid worker and ``run_suite``'s cache path so the baseline
    arithmetic lives in exactly one place.
    """
    key = (workload, cost_model.describe())
    baseline = _baselines.get(key)
    if baseline is None:
        baseline = (
            cost_model.workload_cost(workload, row_partitioning(workload.schema)),
            cost_model.workload_cost(workload, column_partitioning(workload.schema)),
        )
        _baselines[key] = baseline
    return baseline


def result_to_payload(
    result: PartitioningResult,
    workload: Workload,
    row_cost: float,
    column_cost: float,
) -> Dict[str, object]:
    """Serialise one algorithm run to the cacheable JSON payload.

    Everything outside the ``timing`` section is a deterministic function of
    the cell inputs; ``timing`` isolates the wall-clock measurement so cached
    and fresh results can be compared byte for byte (see
    :func:`repro.grid.cache.deterministic_payload`).
    """
    partitioning = result.partitioning
    return {
        "algorithm": result.algorithm,
        "workload_name": result.workload_name,
        "cost_model": result.cost_model,
        "layout": [list(group) for group in partitioning.as_names()],
        "partitions": partitioning.partition_count,
        "estimated_cost": result.estimated_cost,
        "row_cost": row_cost,
        "column_cost": column_cost,
        "improvement_over_row": improvement_over(row_cost, result.estimated_cost),
        "improvement_over_column": improvement_over(
            column_cost, result.estimated_cost
        ),
        "unnecessary_data_fraction": unnecessary_data_fraction(workload, partitioning),
        "average_reconstruction_joins": average_reconstruction_joins(
            workload, partitioning
        ),
        "creation_time": estimate_creation_time(partitioning),
        "cost_evaluations": result.cost_evaluations,
        "timing": {"optimization_time": result.optimization_time},
    }


def payload_to_result(
    payload: Dict[str, object], workload: Workload
) -> PartitioningResult:
    """Rebuild a :class:`PartitioningResult` from a cached payload."""
    partitioning = partitioning_from_names(workload.schema, payload["layout"])
    timing = payload.get("timing", {})
    return PartitioningResult(
        algorithm=payload["algorithm"],
        workload_name=payload["workload_name"],
        partitioning=partitioning,
        optimization_time=float(timing.get("optimization_time", 0.0)),
        estimated_cost=float(payload["estimated_cost"]),
        cost_model=payload["cost_model"],
        cost_evaluations=int(payload.get("cost_evaluations", 0)),
        metadata={"cached": True},
    )


def payload_layout(payload: Dict[str, object], workload: Workload) -> Partitioning:
    """The stored layout as a real :class:`Partitioning` over ``workload``."""
    return partitioning_from_names(workload.schema, payload["layout"])


def attach_measured_section(
    payload: Dict[str, object],
    workload: Workload,
    partitioning: Partitioning,
    cost_model: CostModel,
    measurement: Dict[str, int],
) -> None:
    """Execute the cell's layout on the vectorized backend, record agreement.

    The deterministic part of the measurement — traced blocks/seeks, the
    modeled I/O seconds, the data checksum, the prediction at measured scale
    and their relative error — goes into ``payload["measured"]``, which the
    cache content-hashes.  Measured wall-clock CPU time is genuinely
    non-deterministic and joins the ``timing`` section instead.

    Models without disk characteristics (e.g. the main-memory model) have no
    buffered-scan counterpart to measure; their cells record why instead of
    pretending.
    """
    inner = unwrap_cost_model(cost_model)
    disk = measured_disk(cost_model)
    if disk is None:
        payload["measured"] = {
            "supported": False,
            "reason": f"cost model {inner.describe()} has no disk to execute against",
        }
        return
    settings = resolve_measurement(measurement)
    data_key = (workload.schema, settings["rows"], settings["data_seed"])
    executor = VectorizedScanExecutor(
        partitioning,
        disk=disk,
        rows=settings["rows"],
        buffer_sharing=measured_buffer_sharing(cost_model),
        data_seed=settings["data_seed"],
        data=_measured_data.get(data_key),
    )
    _measured_data.setdefault(data_key, executor.data)
    run = executor.execute_workload(workload)
    predicted = executor.predicted_cost(workload, inner)
    payload["measured"] = {
        "supported": True,
        "rows": executor.rows,
        "data_seed": settings["data_seed"],
        "predicted_seconds": predicted,
        "measured_io_seconds": run.io_seconds,
        "relative_error": relative_error(predicted, run.io_seconds),
        "blocks_read": run.blocks_read,
        "seeks": run.seeks,
        "data_checksum": run.checksum,
    }
    payload["timing"]["measured_cpu_seconds"] = run.cpu_seconds


def attach_sqlite_section(
    payload: Dict[str, object],
    workload: Workload,
    partitioning: Partitioning,
    cost_model: CostModel,
    measurement: Dict[str, int],
) -> None:
    """Execute the cell's layout on embedded SQLite, record the comparison.

    The deterministic part — the execution settings, the model's prediction
    at measured scale, and the scan accounting derived from the database
    catalog — goes into ``payload["sqlite"]``, which the cache content-hashes.
    The engine's wall clock is genuinely non-deterministic and joins the
    ``timing`` section (total weighted seconds plus the per-query trimmed
    means the agreement views rank).

    Every cost model participates: unlike the measured backend (which replays
    the disk model's own buffered scans and needs a disk), the engine
    comparison is a *ranking* against real execution, which is meaningful for
    any model's predictions.
    """
    from repro.engine_x.executor import SQLiteExecutor

    inner = unwrap_cost_model(cost_model)
    settings = resolve_sqlite_measurement(measurement)
    data_key = (workload.schema, settings["rows"], settings["data_seed"])
    executor = SQLiteExecutor(
        partitioning,
        rows=settings["rows"],
        data_seed=settings["data_seed"],
        page_size=settings["page_size"],
        data=_measured_data.get(data_key),
    )
    try:
        _measured_data.setdefault(data_key, executor.data)
        run = executor.execute_workload(workload)
        predicted = executor.predicted_cost(workload, inner)
    finally:
        executor.close()
    payload["sqlite"] = {
        "supported": True,
        "engine": "sqlite",
        "rows": run.rows,
        "data_seed": settings["data_seed"],
        "page_size": settings["page_size"],
        "group_tables": partitioning.partition_count,
        "predicted_seconds": predicted,
        "rows_scanned": run.rows_scanned,
        "bytes_scanned": run.bytes_scanned,
    }
    payload["timing"]["sqlite_seconds"] = run.elapsed_seconds
    payload["timing"]["sqlite_query_seconds"] = run.seconds_by_query()


def execute_cell(cell: GridCell) -> Tuple[GridCell, Dict[str, object]]:
    """Run one cell and return ``(cell, payload)``.

    Returning the cell alongside the payload lets callers match results back
    to cache keys without bookkeeping in the worker.  Faults installed via
    :mod:`repro.grid.faults` are *not* applied here — this is the plain
    execution entry point; the attempt-aware :func:`execute_attempt` wraps it
    for the fault-tolerant paths.
    """
    workload = _workload(cell.workload)
    cost_model = _cost_model(cell.cost_model)
    algorithm = get_algorithm(cell.algorithm, **cell.options())
    result = algorithm.run(workload, cost_model)
    row_cost, column_cost = baseline_costs_for(workload, cost_model)
    payload = result_to_payload(result, workload, row_cost, column_cost)
    if cell.backend == "measured":
        attach_measured_section(
            payload, workload, result.partitioning, cost_model,
            cell.measurement_options(),
        )
    elif cell.backend == "sqlite":
        attach_sqlite_section(
            payload, workload, result.partitioning, cost_model,
            cell.measurement_options(),
        )
    return cell, payload


def execute_attempt(
    cell: GridCell, attempt: int = 1, in_process: bool = False
) -> Dict[str, object]:
    """Run attempt number ``attempt`` (1-based) of one cell.

    Applies any installed fault for this cell first (see
    :mod:`repro.grid.faults`), then executes it.  ``in_process`` marks the
    serial path so ``die`` faults degrade to raising instead of exiting the
    caller's interpreter.
    """
    fault = grid_faults.active_fault(cell.label)
    if fault is not None:
        grid_faults.trigger(fault, attempt, in_process=in_process)
    _, payload = execute_cell(cell)
    return payload


def describe_error(error: BaseException) -> Tuple[str, str]:
    """``(type name, message)`` of an exception — the picklable failure form.

    Exceptions themselves never cross the process boundary: a custom
    exception class may not unpickle in the parent (or pickle in the worker),
    and the supervisor only needs the description to build a
    :class:`~repro.grid.runner.CellFailure`.
    """
    return type(error).__name__, str(error)


def run_task(cell: GridCell, attempt: int) -> Tuple[str, object, Optional[Dict]]:
    """Execute one worker task, returning ``(status, detail, telemetry)``.

    ``telemetry`` is ``None`` unless the supervisor exported
    :data:`repro.obs.trace.COLLECT_ENV_VAR` (which both ``fork`` and
    ``spawn`` children inherit): then it is ``{"spans": [...], "metrics":
    {...}}`` — the span records buffered under a deterministic per-task root
    (seeded ``"{cell}#{attempt}"``) and the *delta* of this process's metrics
    registry across the task, so fork-inherited counter values cancel out and
    the supervisor can merge attempts from any number of workers.  Spans
    captured before an in-cell exception still ship with the error answer;
    only a killed process loses its buffer (the supervisor synthesizes a span
    for those from its own clock).
    """
    if not obs_trace.collection_requested():
        try:
            return "ok", execute_attempt(cell, attempt), None
        except Exception as error:
            return "error", describe_error(error), None
    baseline = obs_metrics.registry().snapshot()
    seed = obs_trace.task_seed(cell.label, attempt)
    with obs_trace.collecting(seed) as buffer:
        try:
            with obs_trace.span(
                "grid.cell", cell=cell.label, attempt=attempt, pid=os.getpid()
            ):
                payload = execute_attempt(cell, attempt)
            status, detail = "ok", payload
        except Exception as error:
            status, detail = "error", describe_error(error)
    telemetry = {
        "spans": buffer.records,
        "metrics": obs_metrics.registry().delta(baseline),
    }
    return status, detail, telemetry


def worker_loop(conn) -> None:
    """Main loop of one persistent grid worker process.

    ``conn`` is the worker's end of a duplex :func:`multiprocessing.Pipe`.
    Tasks arrive as ``(index, cell, attempt)`` tuples; ``None`` (or a closed
    pipe) shuts the worker down.  Every task is answered with
    ``(index, "ok", payload, telemetry)`` or ``(index, "error",
    (type, message), telemetry)`` — a raising cell is an *answer*, not a dead
    worker.  Only a process that is killed (timeout enforcement, OOM, a
    ``die`` fault) fails to answer, which is exactly the signal the
    supervisor treats as a crash.  ``telemetry`` carries the task's buffered
    spans and metrics delta when the supervisor requested collection (see
    :func:`run_task`), else ``None``.
    """
    initialize_worker()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, cell, attempt = task
        status, detail, telemetry = run_task(cell, attempt)
        try:
            conn.send((index, status, detail, telemetry))
        except (BrokenPipeError, OSError):
            return
