"""Aggregation of grid cells into the paper's headline tables.

Each function maps a sequence of cell results to plain list-of-dict rows (the
same convention as :mod:`repro.experiments`), rendered through
:func:`repro.experiments.report.format_table` by :func:`headline_tables`.
The four headline views mirror the paper's evaluation axes:

* **layout quality** (Figures 3–5, Tables 5/6) — estimated cost, improvement
  over the row and column baselines, unnecessary data read, reconstruction
  joins;
* **optimisation time** (Figure 1) — wall clock and cost evaluations;
* **pay-off** (Figure 10 / Appendix A.1) — how many workload executions
  amortise the optimisation + creation investment, against both baselines;
* **fragility** (Figure 8) — relative cost change of the *stored* layout when
  the I/O buffer shrinks 100x after the fact (HDD cells only: the main-memory
  model has no buffer to shrink).

Measured-backend runs add two more views (Figure 3 / Table 7 in spirit):

* **estimated vs measured** — per cell, the model's prediction at measured
  scale against the executor's traced I/O time, with the relative error;
* **agreement by algorithm** — per algorithm, mean/max |relative error| and
  the Spearman rank correlation between predicted and measured runtimes
  across that algorithm's cells, plus a pooled ``(all)`` row.

Sqlite-backend runs add the real-engine counterparts (Table 7 in spirit,
``docs/ENGINE_X.md``): per-cell prediction vs engine wall clock with scan
volume, and per-algorithm rank correlation — rankings only, because the model
predicts the paper's testbed while the engine runs on this host.

All aggregation is computed from cached payloads (plus cheap local re-costing
for fragility), so a fully cached grid run reproduces its tables without
running a single algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.cost.hdd import HDDCostModel
from repro.experiments.report import format_table
from repro.grid.spec import resolve_cost_model, resolve_workload
from repro.grid.worker import payload_layout
from repro.metrics.agreement import (
    max_absolute_relative_error,
    mean_absolute_relative_error,
    spearman_rank_correlation,
)
from repro.metrics.fragility import fragility as fragility_metric
from repro.metrics.payoff import payoff_fraction
from repro.workload.workload import Workload

if TYPE_CHECKING:  # imported for type hints only; runner imports this module
    from repro.grid.runner import CellResult

#: Shrink factor of the fragility stress (8 MB -> 80 KB, the paper's Figure 8).
FRAGILITY_BUFFER_SHRINK = 100

#: Failure messages longer than this are truncated in the failures table.
_FAILURE_MESSAGE_WIDTH = 72


def _ok(results: Sequence["CellResult"]) -> List["CellResult"]:
    """The successful cells — quarantined failures carry no payload and are
    reported by :func:`failure_rows` instead of polluting the metric views."""
    return [result for result in results if result.failure is None]


def failure_rows(results: Sequence["CellResult"]) -> List[Dict[str, object]]:
    """One row per quarantined cell: error kind, attempts spent, message."""
    rows = []
    for result in results:
        failure = result.failure
        if failure is None:
            continue
        message = failure.message
        if len(message) > _FAILURE_MESSAGE_WIDTH:
            message = message[: _FAILURE_MESSAGE_WIDTH - 3] + "..."
        rows.append(
            {
                "workload": result.cell.workload,
                "cost model": result.cell.cost_model,
                "algorithm": result.cell.algorithm,
                "error": failure.error_type,
                "attempts": failure.attempts,
                "message": message,
            }
        )
    return rows


def quality_rows(results: Sequence["CellResult"]) -> List[Dict[str, object]]:
    """One row per cell: cost, improvements, waste, reconstruction joins."""
    rows = []
    for result in _ok(results):
        payload = result.payload
        rows.append(
            {
                "workload": result.cell.workload,
                "cost model": result.cell.cost_model,
                "algorithm": result.cell.algorithm,
                "cost (s)": payload["estimated_cost"],
                "vs row %": 100.0 * payload["improvement_over_row"],
                "vs column %": 100.0 * payload["improvement_over_column"],
                "waste %": 100.0 * payload["unnecessary_data_fraction"],
                "joins": payload["average_reconstruction_joins"],
                "parts": payload["partitions"],
            }
        )
    return rows


def optimization_time_rows(results: Sequence["CellResult"]) -> List[Dict[str, object]]:
    """One row per cell: wall-clock optimisation time and effort proxy."""
    rows = []
    for result in _ok(results):
        payload = result.payload
        rows.append(
            {
                "workload": result.cell.workload,
                "cost model": result.cell.cost_model,
                "algorithm": result.cell.algorithm,
                "opt time (ms)": 1e3 * payload["timing"]["optimization_time"],
                "cost evals": payload["cost_evaluations"],
                "creation (s)": payload["creation_time"],
            }
        )
    return rows


def payoff_rows(results: Sequence["CellResult"]) -> List[Dict[str, object]]:
    """One row per cell: workload executions to amortise the investment."""
    rows = []
    for result in _ok(results):
        payload = result.payload
        optimization_time = payload["timing"]["optimization_time"]
        creation_time = payload["creation_time"]
        rows.append(
            {
                "workload": result.cell.workload,
                "cost model": result.cell.cost_model,
                "algorithm": result.cell.algorithm,
                "payoff vs row": payoff_fraction(
                    optimization_time,
                    creation_time,
                    payload["row_cost"],
                    payload["estimated_cost"],
                ),
                "payoff vs column": payoff_fraction(
                    optimization_time,
                    creation_time,
                    payload["column_cost"],
                    payload["estimated_cost"],
                ),
            }
        )
    return rows


def fragility_rows(
    results: Sequence["CellResult"],
    buffer_shrink: int = FRAGILITY_BUFFER_SHRINK,
) -> List[Dict[str, object]]:
    """Cost change of each stored layout when the buffer shrinks after the fact.

    Only cells whose cost model is an :class:`HDDCostModel` participate.  The
    stored layout is re-costed locally under a model whose buffer is
    ``buffer_shrink`` times smaller (never below one block), so this view
    needs no algorithm re-runs.
    """
    rows = []
    workloads: Dict[str, Workload] = {}
    for result in _ok(results):
        model = resolve_cost_model(result.cell.cost_model)
        if not isinstance(model, HDDCostModel):
            continue
        workload = workloads.get(result.cell.workload)
        if workload is None:
            workload = resolve_workload(result.cell.workload)
            workloads[result.cell.workload] = workload
        disk = model.disk
        shrunk = HDDCostModel(
            disk.with_buffer_size(max(disk.block_size, disk.buffer_size // buffer_shrink)),
            buffer_sharing=model.buffer_sharing,
        )
        layout = payload_layout(result.payload, workload)
        rows.append(
            {
                "workload": result.cell.workload,
                "cost model": result.cell.cost_model,
                "algorithm": result.cell.algorithm,
                f"fragility (buffer/{buffer_shrink})": fragility_metric(
                    workload, layout, model, shrunk
                ),
            }
        )
    return rows


def cross_model_rows(results: Sequence["CellResult"]) -> List[Dict[str, object]]:
    """Improvement over column per cost model — the paper's Table 6 pivot.

    One row per (workload, algorithm); one column per cost model present.
    """
    by_key: Dict[tuple, Dict[str, object]] = {}
    model_ids: List[str] = []
    for result in _ok(results):
        if result.cell.cost_model not in model_ids:
            model_ids.append(result.cell.cost_model)
        key = (result.cell.workload, result.cell.algorithm)
        row = by_key.setdefault(
            key,
            {"workload": result.cell.workload, "algorithm": result.cell.algorithm},
        )
        row[f"vs column % ({result.cell.cost_model})"] = (
            100.0 * result.payload["improvement_over_column"]
        )
    columns = ["workload", "algorithm"] + [f"vs column % ({m})" for m in model_ids]
    return [
        {name: row.get(name, "") for name in columns} for row in by_key.values()
    ]


def _measured_cells(results: Sequence["CellResult"]) -> List["CellResult"]:
    """The cells carrying a supported measured section."""
    return [result for result in results if result.measured is not None]


def _sqlite_cells(results: Sequence["CellResult"]) -> List["CellResult"]:
    """The cells carrying a sqlite-engine section."""
    return [result for result in results if result.sqlite is not None]


def agreement_rows(results: Sequence["CellResult"]) -> List[Dict[str, object]]:
    """One row per measured cell: prediction, measurement, relative error."""
    rows = []
    for result in _measured_cells(results):
        measured = result.measured
        rows.append(
            {
                "workload": result.cell.workload,
                "cost model": result.cell.cost_model,
                "algorithm": result.cell.algorithm,
                "rows": measured["rows"],
                "predicted (s)": measured["predicted_seconds"],
                "measured (s)": measured["measured_io_seconds"],
                "rel err %": 100.0 * measured["relative_error"],
                "blocks": measured["blocks_read"],
                "seeks": measured["seeks"],
            }
        )
    return rows


def agreement_summary_rows(
    results: Sequence["CellResult"],
) -> List[Dict[str, object]]:
    """Per-algorithm agreement: error statistics and rank correlation.

    Each algorithm's correlation ranks its own cells (does the model order
    this algorithm's workloads the way execution does); the final ``(all)``
    row pools every measured cell.
    """
    measured = _measured_cells(results)
    by_algorithm: Dict[str, List["CellResult"]] = {}
    for result in measured:
        by_algorithm.setdefault(result.cell.algorithm, []).append(result)

    def _summary(label: str, cells: Sequence["CellResult"]) -> Dict[str, object]:
        pairs = [
            (c.measured["predicted_seconds"], c.measured["measured_io_seconds"])
            for c in cells
        ]
        return {
            "algorithm": label,
            "cells": len(cells),
            "rank corr": spearman_rank_correlation(
                [p for p, _ in pairs], [m for _, m in pairs]
            ),
            "mean |err| %": 100.0 * mean_absolute_relative_error(pairs),
            "max |err| %": 100.0 * max_absolute_relative_error(pairs),
        }

    rows = [_summary(name, cells) for name, cells in sorted(by_algorithm.items())]
    if len(by_algorithm) > 1:
        rows.append(_summary("(all)", measured))
    return rows


def _sqlite_seconds(result: "CellResult") -> float:
    """A sqlite cell's weighted engine wall clock (from the timing section)."""
    return float(result.payload.get("timing", {}).get("sqlite_seconds", 0.0))


def sqlite_agreement_rows(results: Sequence["CellResult"]) -> List[Dict[str, object]]:
    """One row per sqlite cell: prediction, engine wall clock, scan volume.

    No relative-error column: the model predicts the paper's testbed while
    the engine runs on this host, so only the *ranking* of the two columns is
    meaningful (see :func:`sqlite_agreement_summary_rows` and
    ``docs/ENGINE_X.md``).
    """
    rows = []
    for result in _sqlite_cells(results):
        section = result.sqlite
        rows.append(
            {
                "workload": result.cell.workload,
                "cost model": result.cell.cost_model,
                "algorithm": result.cell.algorithm,
                "rows": section["rows"],
                "page": section["page_size"],
                "predicted (s)": section["predicted_seconds"],
                "sqlite (ms)": 1e3 * _sqlite_seconds(result),
                "MB scanned": section["bytes_scanned"] / 1e6,
                "tables": section["group_tables"],
            }
        )
    return rows


def sqlite_agreement_summary_rows(
    results: Sequence["CellResult"],
) -> List[Dict[str, object]]:
    """Per-algorithm rank correlation of predictions against the engine.

    Each algorithm's correlation ranks its own cells; the ``(all)`` row pools
    every sqlite cell.  The pooled ranking is the repo's strongest claim: the
    analytical model orders layouts/workloads the way a real engine runs
    them.
    """
    cells = _sqlite_cells(results)
    by_algorithm: Dict[str, List["CellResult"]] = {}
    for result in cells:
        by_algorithm.setdefault(result.cell.algorithm, []).append(result)

    def _summary(label: str, group: Sequence["CellResult"]) -> Dict[str, object]:
        return {
            "algorithm": label,
            "cells": len(group),
            "rank corr": spearman_rank_correlation(
                [c.sqlite["predicted_seconds"] for c in group],
                [_sqlite_seconds(c) for c in group],
            ),
        }

    rows = [_summary(name, group) for name, group in sorted(by_algorithm.items())]
    if len(by_algorithm) > 1:
        rows.append(_summary("(all)", cells))
    return rows


def headline_tables(results: Sequence["CellResult"]) -> str:
    """The headline tables rendered as aligned plain text.

    Quarantined cells are excluded from every metric view and reported in
    their own *Failures* table at the end, so a partially failed run still
    renders all the science its successful cells support.
    """
    sections = [
        format_table(quality_rows(results), title="Layout quality"),
        format_table(optimization_time_rows(results), title="Optimisation time"),
        format_table(payoff_rows(results), title="Pay-off (workload executions)"),
    ]
    fragility = fragility_rows(results)
    if fragility:
        sections.append(
            format_table(fragility, title="Fragility (stored layout, shrunken buffer)")
        )
    if len({result.cell.cost_model for result in results}) > 1:
        sections.append(
            format_table(cross_model_rows(results), title="Cross-model comparison")
        )
    agreement = agreement_rows(results)
    if agreement:
        sections.append(
            format_table(agreement, title="Estimated vs measured agreement")
        )
        sections.append(
            format_table(
                agreement_summary_rows(results), title="Agreement by algorithm"
            )
        )
    sqlite_agreement = sqlite_agreement_rows(results)
    if sqlite_agreement:
        sections.append(
            format_table(
                sqlite_agreement, title="Estimated vs SQLite engine agreement"
            )
        )
        sections.append(
            format_table(
                sqlite_agreement_summary_rows(results),
                title="SQLite agreement by algorithm",
            )
        )
    failures = failure_rows(results)
    if failures:
        sections.append(
            format_table(failures, title="Failures (quarantined cells)")
        )
    return "\n\n".join(sections)
