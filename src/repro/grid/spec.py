"""Declarative comparison grids: cells and their axes.

A *grid* is the paper's experimental design as a value: the cross product of
algorithms x workloads x cost models.  Each :class:`GridCell` names one
combination entirely by strings and plain options, so cells are trivially
picklable (they cross the ``multiprocessing`` boundary), hashable (they key
result dictionaries) and content-addressable (the cache hashes the *resolved*
inputs, see :mod:`repro.grid.cache`).

Workloads and cost models are referenced by id and resolved late through
:func:`resolve_workload` / :func:`resolve_cost_model`, both in the parent
process (to fingerprint cache keys) and inside worker processes (to build the
actual objects without pickling them).  Builtin id schemes:

==========================  ==================================================
``tpch:<table>@<sf>``       TPC-H table workload at a scale factor
``ssb:<table>@<sf>``        Star Schema Benchmark table workload
``star:tiny|default``       synthetic star schema (:mod:`repro.workload.star`)
``telemetry:small|wide``    wide-sparse telemetry (:mod:`repro.workload.telemetry`)
==========================  ==================================================

Cost model ids: ``hdd`` (paper testbed disk), ``hdd:equal`` (equal buffer
sharing ablation), ``hdd:small-buffer`` (80 KB buffer, the paper's fragility
stress), ``mainmemory`` (cache-miss model of Table 6).  Custom workloads and
models register via :func:`register_workload` / :func:`register_cost_model`.

Cells come in three *backends*: ``"estimated"`` (the default — the cell's
numbers are analytical cost-model outputs, exactly as before),
``"measured"`` — each cell additionally executes its computed layout on the
vectorized scan executor (:mod:`repro.exec`) and records the
estimated-vs-measured agreement — and ``"sqlite"`` — each cell materialises
its layout as real SQLite tables (:mod:`repro.engine_x`) and times the
workload on the engine.  Measured and sqlite cells carry ``measurement``
settings (``rows``: measured row count, ``data_seed``: synthetic data seed,
plus ``page_size`` for sqlite cells); together with the execution engine's
parameters these are part of the cell's cache identity (see
:func:`repro.grid.cache.cell_inputs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cost.base import CostModel
from repro.cost.disk import DEFAULT_DISK, KB
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.workload.workload import Workload


class GridError(ValueError):
    """Raised when a grid spec, workload id or cost model id is invalid."""


class GridExecutionError(GridError):
    """Raised under fail-fast when a cell exhausts its attempts.

    Carries the label and failure description of the cell that aborted the
    run.  Cells completed before the abort were already persisted to the
    result cache, so a later keep-going (or fixed) invocation resumes rather
    than restarts.
    """

    def __init__(self, label: str, error_type: str, message: str, attempts: int) -> None:
        self.label = label
        self.error_type = error_type
        self.message = message
        self.attempts = attempts
        super().__init__(
            f"cell {label} failed after {attempts} attempt(s) "
            f"[{error_type}: {message}] (fail-fast)"
        )


class GridCancelled(GridError):
    """Raised when a run's ``cancel_event`` is set before it completes.

    Cooperative cancellation: the supervisor (or the serial loop, between
    cells) polls the event, kills any in-flight workers, and raises.  Cells
    completed before the cancellation were already persisted to the result
    cache, so cancelling loses at most the cells in flight — the same
    guarantee an interrupted run has.
    """

    def __init__(self, completed: int = 0, pending: int = 0) -> None:
        self.completed = completed
        self.pending = pending
        super().__init__(
            f"grid run cancelled with {pending} cell(s) pending "
            f"({completed} already completed and cached)"
        )


# -- cells and specs -----------------------------------------------------------

#: Valid cell backends: purely analytical, analytical plus a measured
#: execution on the vectorized scan executor, or analytical plus a real
#: execution on embedded SQLite.
BACKENDS = ("estimated", "measured", "sqlite")

#: Backends that execute layouts and therefore accept measurement settings.
EXECUTING_BACKENDS = ("measured", "sqlite")

#: Valid keys of the execution settings, per executing backend.
_BACKEND_MEASUREMENT_KEYS = {
    "measured": ("rows", "data_seed"),
    "sqlite": ("rows", "data_seed", "page_size"),
}

#: Union of every backend's valid measurement keys (kept for introspection).
MEASUREMENT_KEYS = ("rows", "data_seed", "page_size")


def canonical_measurement(
    measurement: Optional[Mapping[str, object]],
    backend: str = "measured",
) -> Tuple[Tuple[str, int], ...]:
    """Validate one backend's execution settings; canonical tuple form."""
    if not measurement:
        return ()
    valid = _BACKEND_MEASUREMENT_KEYS.get(backend, ())
    unknown = set(measurement) - set(valid)
    if unknown:
        raise GridError(
            f"unknown measurement settings {sorted(unknown)} for backend "
            f"{backend!r}; valid: {sorted(valid)}"
        )
    canonical = []
    for key in valid:
        if key in measurement:
            try:
                value = int(measurement[key])
            except (TypeError, ValueError):
                raise GridError(
                    f"measurement setting {key!r} must be an integer, "
                    f"got {measurement[key]!r}"
                ) from None
            if key == "rows" and value < 1:
                raise GridError("measurement setting 'rows' must be >= 1")
            if key == "page_size":
                from repro.engine_x.executor import PAGE_SIZES

                if value not in PAGE_SIZES:
                    raise GridError(
                        f"measurement setting 'page_size' must be one of "
                        f"{list(PAGE_SIZES)}, got {value}"
                    )
            canonical.append((key, value))
    return tuple(canonical)


def resolve_measurement(
    measurement: Optional[Mapping[str, object]],
) -> Dict[str, int]:
    """Measurement settings with defaults applied — the executed values.

    The same resolution is used to fingerprint measured cells
    (:func:`repro.grid.cache.cell_inputs`) and to execute them
    (:mod:`repro.grid.worker`), so an explicit setting equal to its default
    hashes identically to the default.
    """
    from repro.exec.executor import DEFAULT_MEASURED_ROWS

    settings = dict(measurement or {})
    return {
        "rows": int(settings.get("rows", DEFAULT_MEASURED_ROWS)),
        "data_seed": int(settings.get("data_seed", 0)),
    }


def resolve_sqlite_measurement(
    measurement: Optional[Mapping[str, object]],
) -> Dict[str, int]:
    """Sqlite-backend settings with defaults applied — the executed values.

    The sqlite counterpart of :func:`resolve_measurement`: the same rows and
    data-seed defaults plus the engine's page size, shared by the cache
    fingerprint (:func:`repro.grid.cache.sqlite_execution_fingerprint`) and
    the worker so an explicit default hashes identically to the implicit one.
    """
    from repro.engine_x.executor import DEFAULT_PAGE_SIZE

    settings = resolve_measurement(measurement)
    settings["page_size"] = int(
        dict(measurement or {}).get("page_size", DEFAULT_PAGE_SIZE)
    )
    return settings


@dataclass(frozen=True)
class GridCell:
    """One (algorithm, workload, cost model) combination of a grid."""

    algorithm: str
    workload: str
    cost_model: str
    #: Algorithm constructor options in canonical (sorted) tuple form so the
    #: cell stays hashable; use :meth:`options` for the dict view.
    algorithm_options: Tuple[Tuple[str, object], ...] = ()
    #: Cell backend: ``"estimated"``, ``"measured"`` or ``"sqlite"``.
    backend: str = "estimated"
    #: Execution-backend settings in canonical tuple form; use
    #: :meth:`measurement_options` for the dict view.
    measurement: Tuple[Tuple[str, int], ...] = ()

    @property
    def label(self) -> str:
        """Compact display form, e.g. ``hillclimb/tpch:partsupp@0.1/hdd``."""
        base = f"{self.algorithm}/{self.workload}/{self.cost_model}"
        if self.backend != "estimated":
            return f"{base} [{self.backend}]"
        return base

    def options(self) -> Dict[str, object]:
        """The algorithm constructor options as a plain dict."""
        return dict(self.algorithm_options)

    def measurement_options(self) -> Dict[str, int]:
        """The measured-backend settings as a plain dict (without defaults)."""
        return dict(self.measurement)


@dataclass(frozen=True)
class GridSpec:
    """The cross product of algorithms x workloads x cost models.

    ``algorithm_options`` maps algorithm name to constructor options applied
    to every cell of that algorithm (the same convention as
    :class:`~repro.core.advisor.LayoutAdvisor`).  ``backend`` selects the
    cell kind for the whole grid (``"estimated"``, ``"measured"`` or
    ``"sqlite"``); ``measurement`` carries the executing backend's ``rows`` /
    ``data_seed`` (/ ``page_size`` for sqlite) settings.
    """

    name: str
    algorithms: Tuple[str, ...]
    workloads: Tuple[str, ...]
    cost_models: Tuple[str, ...]
    algorithm_options: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...] = ()
    backend: str = "estimated"
    measurement: Tuple[Tuple[str, int], ...] = ()

    def __init__(
        self,
        name: str,
        algorithms: Sequence[str],
        workloads: Sequence[str],
        cost_models: Sequence[str],
        algorithm_options: Optional[Mapping[str, Mapping[str, object]]] = None,
        backend: str = "estimated",
        measurement: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not algorithms or not workloads or not cost_models:
            raise GridError("a grid needs at least one algorithm, workload and cost model")
        for axis_name, axis in (
            ("algorithms", algorithms),
            ("workloads", workloads),
            ("cost_models", cost_models),
        ):
            if len(set(axis)) != len(axis):
                raise GridError(f"grid axis {axis_name!r} contains duplicates")
        if backend not in BACKENDS:
            raise GridError(
                f"unknown backend {backend!r}; available: {list(BACKENDS)}"
            )
        if measurement and backend not in EXECUTING_BACKENDS:
            raise GridError(
                "measurement settings require an executing backend "
                f"({' or '.join(repr(b) for b in EXECUTING_BACKENDS)})"
            )
        canonical_options = tuple(
            sorted(
                (algorithm, tuple(sorted(options.items())))
                for algorithm, options in (algorithm_options or {}).items()
            )
        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "algorithms", tuple(algorithms))
        object.__setattr__(self, "workloads", tuple(workloads))
        object.__setattr__(self, "cost_models", tuple(cost_models))
        object.__setattr__(self, "algorithm_options", canonical_options)
        object.__setattr__(self, "backend", backend)
        object.__setattr__(
            self, "measurement", canonical_measurement(measurement, backend)
        )

    @property
    def cell_count(self) -> int:
        """Number of cells in the grid."""
        return len(self.algorithms) * len(self.workloads) * len(self.cost_models)

    def options_for(self, algorithm: str) -> Tuple[Tuple[str, object], ...]:
        """Canonical options tuple for one algorithm (empty if none set)."""
        for name, options in self.algorithm_options:
            if name == algorithm:
                return options
        return ()

    def cells(self) -> List[GridCell]:
        """All cells in deterministic (workload, cost model, algorithm) order.

        Workload-major order keeps cells sharing a schema adjacent, which
        maximises evaluator-cache reuse inside pool workers.
        """
        return [
            GridCell(
                algorithm=algorithm,
                workload=workload,
                cost_model=cost_model,
                algorithm_options=self.options_for(algorithm),
                backend=self.backend,
                measurement=self.measurement,
            )
            for workload in self.workloads
            for cost_model in self.cost_models
            for algorithm in self.algorithms
        ]

    def with_backend(
        self, backend: str, measurement: Optional[Mapping[str, object]] = None
    ) -> "GridSpec":
        """The same grid under a different backend (e.g. ``"measured"``)."""
        return GridSpec(
            name=self.name,
            algorithms=self.algorithms,
            workloads=self.workloads,
            cost_models=self.cost_models,
            algorithm_options={
                name: dict(options) for name, options in self.algorithm_options
            },
            backend=backend,
            measurement=measurement,
        )

    def describe(self) -> str:
        """One-line shape summary."""
        suffix = "" if self.backend == "estimated" else f" ({self.backend} backend)"
        return (
            f"grid {self.name!r}: {self.cell_count} cells = "
            f"{len(self.algorithms)} algorithms x {len(self.workloads)} workloads "
            f"x {len(self.cost_models)} cost models{suffix}"
        )


# -- workload resolution -------------------------------------------------------

_WORKLOAD_REGISTRY: Dict[str, Callable[[], Workload]] = {}


def register_workload(
    workload_id: str, factory: Callable[[], Workload], replace: bool = False
) -> None:
    """Register a custom workload factory under ``workload_id``.

    The factory must be deterministic: the cache fingerprints the *content* of
    the resolved workload, so a factory returning different queries per call
    would defeat caching (every run would recompute).

    Registrations live in this module's process-local registry.  Pool workers
    re-resolve ids on their side of the boundary, so with ``workers > 1``
    under a non-``fork`` start method (``spawn`` is the default on macOS and
    Windows) the registration must happen at import time of a module the
    workers also import — otherwise they raise ``GridError`` for the custom
    id.  Builtin id schemes resolve everywhere.
    """
    if workload_id in _WORKLOAD_REGISTRY and not replace:
        raise GridError(f"workload id {workload_id!r} is already registered")
    _WORKLOAD_REGISTRY[workload_id] = factory


def _parse_table_at_scale(rest: str, workload_id: str) -> Tuple[str, float]:
    table, separator, scale = rest.partition("@")
    if not table:
        raise GridError(f"workload id {workload_id!r} names no table")
    if not separator:
        return table, 1.0
    try:
        return table, float(scale)
    except ValueError:
        raise GridError(
            f"workload id {workload_id!r} has a non-numeric scale factor {scale!r}"
        ) from None


#: Preset factories of the generator-backed schemes.
_STAR_PRESETS: Dict[str, Callable[[], Workload]] = {}
_TELEMETRY_PRESETS: Dict[str, Callable[[], Workload]] = {}


def _generator_presets() -> None:
    """Populate the preset tables lazily (keeps import time flat)."""
    if _STAR_PRESETS:
        return
    from repro.workload import star, telemetry

    _STAR_PRESETS.update(
        {"tiny": star.tiny_star_workload, "default": star.default_star_workload}
    )
    _TELEMETRY_PRESETS.update(
        {
            "small": telemetry.small_telemetry_workload,
            "wide": telemetry.wide_telemetry_workload,
        }
    )


def resolve_workload(workload_id: str) -> Workload:
    """Build the :class:`~repro.workload.workload.Workload` named by an id."""
    factory = _WORKLOAD_REGISTRY.get(workload_id)
    if factory is not None:
        return factory()
    scheme, _, rest = workload_id.partition(":")
    if scheme == "tpch":
        from repro.workload import tpch

        table, scale_factor = _parse_table_at_scale(rest, workload_id)
        return tpch.tpch_workload(table, scale_factor=scale_factor)
    if scheme == "ssb":
        from repro.workload import ssb

        table, scale_factor = _parse_table_at_scale(rest, workload_id)
        return ssb.ssb_workload(table, scale_factor=scale_factor)
    if scheme in ("star", "telemetry"):
        _generator_presets()
        presets = _STAR_PRESETS if scheme == "star" else _TELEMETRY_PRESETS
        try:
            return presets[rest]()
        except KeyError:
            raise GridError(
                f"unknown {scheme} preset {rest!r}; available: {sorted(presets)}"
            ) from None
    raise GridError(
        f"unknown workload id {workload_id!r}; use tpch:<table>@<sf>, "
        f"ssb:<table>@<sf>, star:<preset>, telemetry:<preset>, or register_workload()"
    )


# -- cost model resolution -----------------------------------------------------

_COST_MODEL_REGISTRY: Dict[str, Callable[[], CostModel]] = {
    "hdd": HDDCostModel,
    "hdd:equal": lambda: HDDCostModel(buffer_sharing="equal"),
    "hdd:small-buffer": lambda: HDDCostModel(DEFAULT_DISK.with_buffer_size(80 * KB)),
    "mainmemory": MainMemoryCostModel,
}


def register_cost_model(
    cost_model_id: str, factory: Callable[[], CostModel], replace: bool = False
) -> None:
    """Register a custom cost model factory under ``cost_model_id``."""
    if cost_model_id in _COST_MODEL_REGISTRY and not replace:
        raise GridError(f"cost model id {cost_model_id!r} is already registered")
    _COST_MODEL_REGISTRY[cost_model_id] = factory


def resolve_cost_model(cost_model_id: str) -> CostModel:
    """Build the :class:`~repro.cost.base.CostModel` named by an id."""
    try:
        factory = _COST_MODEL_REGISTRY[cost_model_id]
    except KeyError:
        raise GridError(
            f"unknown cost model id {cost_model_id!r}; "
            f"available: {sorted(_COST_MODEL_REGISTRY)}"
        ) from None
    return factory()


# -- builtin grids -------------------------------------------------------------

#: The paper's six default algorithms (brute force excluded: its enumeration
#: explodes on the wider grid tables; narrow custom grids may add it).
_DEFAULT_ALGORITHMS = ("autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan")

BUILTIN_GRIDS: Dict[str, GridSpec] = {
    # 2 x 2 x 1: the CI smoke grid — one benchmark table, one generated
    # scenario, the two algorithm families (bottom-up / top-down).
    "tiny": GridSpec(
        name="tiny",
        algorithms=("hillclimb", "navathe"),
        workloads=("tpch:partsupp@0.1", "telemetry:small"),
        cost_models=("hdd",),
    ),
    # The default interactive grid: every algorithm on four scenario classes
    # under both hardware models — small enough to finish in well under a
    # minute, wide enough that every aggregate table is populated.
    "small": GridSpec(
        name="small",
        algorithms=_DEFAULT_ALGORITHMS,
        workloads=(
            "tpch:partsupp@0.1",
            "tpch:customer@0.1",
            "star:tiny",
            "telemetry:small",
        ),
        cost_models=("hdd", "mainmemory"),
    ),
    # The full cross product over both published benchmarks plus the generated
    # scenarios, under three hardware models (the paper's headline grid).
    "full": GridSpec(
        name="full",
        algorithms=_DEFAULT_ALGORITHMS,
        workloads=(
            "tpch:lineitem@1",
            "tpch:orders@1",
            "tpch:partsupp@1",
            "tpch:part@1",
            "tpch:customer@1",
            "tpch:supplier@1",
            "ssb:lineorder@1",
            "ssb:customer@1",
            "ssb:part@1",
            "star:default",
            "telemetry:wide",
        ),
        cost_models=("hdd", "hdd:small-buffer", "mainmemory"),
    ),
}


def builtin_grid(name: str) -> GridSpec:
    """Look up a builtin grid by name (``tiny``, ``small``, ``full``)."""
    try:
        return BUILTIN_GRIDS[name]
    except KeyError:
        raise GridError(
            f"unknown grid {name!r}; available: {sorted(BUILTIN_GRIDS)}"
        ) from None
