"""Deterministic fault injection for the grid's robustness machinery.

The fault-tolerance layer (retries, per-cell timeouts, worker-crash recovery,
failure quarantine — see :mod:`repro.grid.runner` and ``docs/ROBUSTNESS.md``)
only earns trust if every one of its paths can be exercised *reproducibly*.
This module is that harness: a :class:`FaultPlan` maps cell labels to
:class:`Fault` descriptions, and :func:`trigger` fires the described fault at
the top of the cell's execution, deterministically per ``(cell, attempt)``.

Plans travel through the :data:`ENV_VAR` environment variable as canonical
JSON, because the cells run in worker *processes*: both ``fork`` and ``spawn``
children inherit the parent's environment at creation time, so a plan
installed before ``run_grid`` starts its workers is visible on the far side of
the process boundary without any extra plumbing.  ``run_grid(faults=...)``
installs and removes a plan around one run; tests can also use the
:func:`injected` context manager or set the variable by hand before invoking
the CLI.

Fault kinds (``kind``):

``raise``
    Raise :class:`InjectedFaultError` on every attempt — a deterministic bug
    in a cell.  Exercises quarantine: the cell must become a
    :class:`~repro.grid.runner.CellFailure`, not abort the run.
``transient``
    Raise :class:`TransientInjectedError` on the first ``attempts`` attempts,
    then execute normally — a flaky cell.  Exercises retries: with enough
    attempts budgeted the cell must *succeed*, reporting how many tries it
    took.
``hang``
    Sleep ``seconds`` before executing normally — a stuck cell.  Exercises
    per-cell timeouts: with ``seconds`` beyond the cell timeout the worker is
    killed and the cell quarantined; below it the cell merely finishes slowly.
``die``
    ``os._exit`` without returning a result — a crashed / OOM-killed worker.
    Exercises dead-worker detection and respawn.  Only meaningful for
    parallel runs: in a serial (in-process) run this would take the calling
    process down with it, so the serial path refuses to trigger it and raises
    :class:`InjectedFaultError` instead.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

#: Environment variable carrying the installed plan as canonical JSON.
ENV_VAR = "REPRO_GRID_FAULTS"

#: Valid fault kinds.
KINDS = ("raise", "transient", "hang", "die")

#: Exit status used by ``die`` faults — distinctive enough to recognise in a
#: worker's reported exit code.
DIE_EXIT_CODE = 86


class FaultPlanError(ValueError):
    """Raised when a fault plan (mapping or JSON) does not validate."""


class InjectedFaultError(RuntimeError):
    """The error a ``raise`` fault throws (also ``die`` on the serial path)."""


class TransientInjectedError(RuntimeError):
    """The error a ``transient`` fault throws on its failing attempts."""


@dataclass(frozen=True)
class Fault:
    """One injected fault: what goes wrong and (where relevant) how much.

    ``attempts`` is read by ``transient`` faults (fail the first N attempts);
    ``seconds`` by ``hang`` faults (sleep duration).  ``message`` joins the
    raised error text so tests can assert on it.
    """

    kind: str
    attempts: int = 1
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; valid: {list(KINDS)}"
            )
        if self.kind == "transient" and self.attempts < 1:
            raise FaultPlanError("transient faults need attempts >= 1")
        if self.kind == "hang" and self.seconds <= 0:
            raise FaultPlanError("hang faults need seconds > 0")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "Fault":
        """Build a fault from a plain mapping, validating every field."""
        if not isinstance(raw, Mapping):
            raise FaultPlanError(f"a fault must be a mapping, got {raw!r}")
        unknown = set(raw) - {"kind", "attempts", "seconds", "message"}
        if unknown:
            raise FaultPlanError(f"unknown fault fields {sorted(unknown)}")
        if "kind" not in raw:
            raise FaultPlanError(f"fault {dict(raw)!r} names no kind")
        try:
            return cls(
                kind=str(raw["kind"]),
                attempts=int(raw.get("attempts", 1)),
                seconds=float(raw.get("seconds", 0.0)),
                message=str(raw.get("message", "injected fault")),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, FaultPlanError):
                raise
            raise FaultPlanError(f"invalid fault {dict(raw)!r}: {error}") from None


class FaultPlan:
    """An immutable mapping from cell label to the fault injected there.

    Labels are matched exactly against :attr:`repro.grid.spec.GridCell.label`
    (``algorithm/workload/cost_model``, plus `` [measured]`` for measured
    cells).
    """

    def __init__(self, faults: Mapping[str, Fault]) -> None:
        for label, fault in faults.items():
            if not isinstance(fault, Fault):
                raise FaultPlanError(
                    f"plan entry {label!r} is not a Fault: {fault!r}"
                )
        self._faults: Dict[str, Fault] = dict(faults)

    @classmethod
    def from_mapping(cls, raw: Mapping[str, Mapping[str, object]]) -> "FaultPlan":
        """Build a plan from ``{label: {"kind": ..., ...}}`` plain dicts."""
        if not isinstance(raw, Mapping):
            raise FaultPlanError(f"a fault plan must be a mapping, got {raw!r}")
        return cls(
            {
                str(label): fault if isinstance(fault, Fault) else Fault.from_dict(fault)
                for label, fault in raw.items()
            }
        )

    def get(self, label: str) -> Optional[Fault]:
        """The fault injected at ``label``, or ``None``."""
        return self._faults.get(label)

    def labels(self) -> Tuple[str, ...]:
        """The labels the plan injects at, sorted."""
        return tuple(sorted(self._faults))

    def __len__(self) -> int:
        return len(self._faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self._faults == other._faults

    def to_json(self) -> str:
        """Canonical JSON form (what :func:`install` puts in the environment)."""
        return json.dumps(
            {label: fault.to_dict() for label, fault in self._faults.items()},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        """Parse a plan from its JSON form, validating it."""
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") from None
        return cls.from_mapping(decoded)


def coerce_plan(
    faults: "FaultPlan | Mapping[str, object] | None",
) -> Optional[FaultPlan]:
    """A :class:`FaultPlan` from a plan, a plain mapping, or ``None``."""
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    return FaultPlan.from_mapping(faults)


# -- installation and lookup ---------------------------------------------------

#: Parse cache: the last seen raw environment value and its parsed plan, so
#: every cell execution does not re-parse identical JSON.
_parsed: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` into the environment (``None`` uninstalls)."""
    if plan is None or len(plan) == 0:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = plan.to_json()


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, parsed from the environment (or ``None``).

    A malformed plan raises :class:`FaultPlanError` loudly — a fault harness
    that silently ignores a typo would make its tests pass vacuously.
    """
    global _parsed
    raw = os.environ.get(ENV_VAR)
    if raw is None or not raw.strip():
        return None
    cached_raw, cached_plan = _parsed
    if raw == cached_raw:
        return cached_plan
    plan = FaultPlan.from_json(raw)
    _parsed = (raw, plan)
    return plan


def active_fault(label: str) -> Optional[Fault]:
    """The installed fault for one cell label, or ``None``."""
    plan = active_plan()
    return plan.get(label) if plan is not None else None


@contextmanager
def injected(
    faults: "FaultPlan | Mapping[str, object] | None",
) -> Iterator[Optional[FaultPlan]]:
    """Install a plan for the duration of a ``with`` block, then restore.

    The previous environment value (installed plan or none) is restored on
    exit, so nested and sequential injections compose.
    """
    plan = coerce_plan(faults)
    previous = os.environ.get(ENV_VAR)
    install(plan)
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def trigger(fault: Fault, attempt: int, in_process: bool = False) -> None:
    """Fire ``fault`` for attempt number ``attempt`` (1-based).

    Called at the top of cell execution.  Returns normally when the fault
    does not apply to this attempt (a ``transient`` past its failing window)
    or when its effect is a delay (``hang`` — the sleep happens here).

    ``in_process`` marks the serial execution path: a ``die`` fault would
    ``os._exit`` the *caller's* process there, so it degrades to raising
    :class:`InjectedFaultError` instead of killing the interpreter running
    the grid (and, in tests, the test runner).
    """
    if fault.kind == "raise":
        raise InjectedFaultError(fault.message)
    if fault.kind == "transient":
        if attempt <= fault.attempts:
            raise TransientInjectedError(
                f"{fault.message} (attempt {attempt}/{fault.attempts} injected to fail)"
            )
        return
    if fault.kind == "hang":
        time.sleep(fault.seconds)
        return
    if fault.kind == "die":
        if in_process:
            raise InjectedFaultError(
                f"{fault.message} (die fault degraded to raise: serial runs "
                f"execute cells in the calling process)"
            )
        os._exit(DIE_EXIT_CODE)
    raise FaultPlanError(f"unknown fault kind {fault.kind!r}")  # pragma: no cover
