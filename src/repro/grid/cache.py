"""Persistent, content-addressed result cache for grid cells.

Every cell result is stored as one JSON file whose name is the SHA-256 hash of
the cell's *resolved inputs*: the algorithm name and options, the cost model's
id and parameter fingerprint, and the workload's id plus its full content
(schema columns, row count, every query's footprint, weight and selectivity).
Measured-backend cells additionally hash their execution fingerprint — the
measured row count, the synthetic data seed and the executor's disk
characteristics — so a change to any of them is a cache miss, never a stale
hit (see :func:`execution_fingerprint`).
Hashing resolved content — not just ids — means the cache invalidates itself
when anything that could change a result changes: a generator producing
different queries, a rescaled table, a retuned cost model.  The ids stay in
the key on top of the content as a safety margin: a model's ``describe()``
string need not spell out every behavioural knob (e.g. the HDD model's buffer
sharing policy), so two ids are never allowed to collide on one entry even
when their parameter descriptions coincide.  Entries remain valid across
runs, processes and machines for identical inputs.

Layout on disk::

    <root>/<first two hash hex chars>/<full hash>.json

Each entry carries the inputs it was computed from and a checksum of its
payload::

    {"format": 1, "key": "<hash>", "inputs": {...},
     "payload": {...}, "payload_sha256": "<hash of canonical payload JSON>"}

``load`` trusts an entry only if all of the following hold; anything else is
treated as a miss and the cell is recomputed (and the entry overwritten):

* the file parses as JSON with the current format version, carries the
  expected shape, and its stored ``key`` matches its filename (a file copied
  to the wrong name fails here and counts as *corrupt*),
* re-hashing the stored ``inputs`` reproduces the key (a *stale* entry —
  hand-edited inputs whose result no longer belongs to this key — fails
  this),
* re-hashing the stored ``payload`` matches ``payload_sha256`` (a *corrupt*
  entry — truncated write, bit rot, tampering — fails this).

Writes are atomic (temp file + ``os.replace``) so an interrupted run never
leaves a half-written entry that a resume would then have to distrust.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.cost.base import CostModel
from repro.obs.metrics import counter as _obs_counter
from repro.workload.workload import Workload

#: Bump when the payload schema changes incompatibly; old entries then miss.
FORMAT_VERSION = 1

# Process-global mirrors of the per-instance counters below, so cache
# effectiveness shows up in run telemetry and traces (docs/OBSERVABILITY.md).
_CACHE_HITS = _obs_counter("grid.cache.hits")
_CACHE_MISSES = _obs_counter("grid.cache.misses")
_CACHE_CORRUPT = _obs_counter("grid.cache.corrupt")
_CACHE_STALE = _obs_counter("grid.cache.stale")
_CACHE_STORES = _obs_counter("grid.cache.stores")
_CACHE_STORE_FAILURES = _obs_counter("grid.cache.store_failures")
_CACHE_LOAD_FAILURES = _obs_counter("grid.cache.load_failures")


def canonical_json(value: object) -> str:
    """Deterministic JSON used for hashing: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_key(inputs: Mapping[str, object]) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``inputs``."""
    return hashlib.sha256(canonical_json(inputs).encode("utf-8")).hexdigest()


def workload_fingerprint(workload: Workload) -> Dict[str, object]:
    """Everything about a workload that can influence a cell's result."""
    schema = workload.schema
    return {
        "name": workload.name,
        "schema": {
            "name": schema.name,
            "row_count": schema.row_count,
            "columns": [[column.name, column.width] for column in schema.columns],
        },
        "queries": [
            [
                query.name,
                list(query.attribute_indices),
                query.weight,
                query.selectivity,
            ]
            for query in workload
        ],
    }


def cost_model_fingerprint(cost_model_id: str, cost_model: CostModel) -> Dict[str, object]:
    """The cost model's identity: its id plus its full parameter description.

    ``describe()`` includes every tunable parameter for the built-in models,
    so re-registering an id with different parameters invalidates old entries.
    """
    return {"id": cost_model_id, "parameters": cost_model.describe()}


def execution_fingerprint(
    measurement: Mapping[str, object], cost_model: CostModel, workload: Workload
) -> Dict[str, object]:
    """Everything that can change a *measured* cell's result beyond the
    estimated inputs: the measured scale, the synthetic data seed, and the
    disk characteristics the executor prices its traced I/O with.

    The fingerprinted row count is the *effective* one — the requested count
    capped at the schema's, exactly as the executor caps it — so two requests
    that execute identically (e.g. 50k and 100k rows of a 20k-row table)
    share one entry.  The disk is already part of the cost model's parameter
    fingerprint for built-in models, but it is repeated here explicitly: the
    executor reads it off the model object, so a custom model whose
    ``describe()`` omitted disk parameters would otherwise let two different
    disks share one measured entry.
    """
    from repro.exec.executor import measured_disk
    from repro.grid.spec import resolve_measurement

    settings = resolve_measurement(measurement)
    disk = measured_disk(cost_model)
    return {
        "rows": max(1, min(settings["rows"], workload.schema.row_count)),
        "data_seed": settings["data_seed"],
        "disk": disk.describe() if disk is not None else None,
    }


def sqlite_execution_fingerprint(
    measurement: Mapping[str, object], workload: Workload
) -> Dict[str, object]:
    """Everything that can change a *sqlite* cell's result beyond the
    estimated inputs: the engine marker, the measured scale, the synthetic
    data seed and the engine's page size.

    Rows are fingerprinted at the effective (schema-capped) count like
    :func:`execution_fingerprint`.  No disk appears here — the engine's wall
    clock depends on the host, not on modeled disk characteristics, and host
    identity deliberately stays out of the key: a cached sqlite timing is a
    *sample*, and rerunning on different hardware resumes rather than
    remeasures (pass ``refresh`` to remeasure).
    """
    from repro.grid.spec import resolve_sqlite_measurement

    settings = resolve_sqlite_measurement(measurement)
    return {
        "engine": "sqlite",
        "rows": max(1, min(settings["rows"], workload.schema.row_count)),
        "data_seed": settings["data_seed"],
        "page_size": settings["page_size"],
    }


def cell_inputs(
    algorithm: str,
    algorithm_options: Mapping[str, object],
    workload_id: str,
    workload: Workload,
    cost_model_id: str,
    cost_model: CostModel,
    backend: str = "estimated",
    measurement: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The complete, hashable input description of one grid cell.

    Estimated cells hash exactly the same inputs as before the measured
    backend existed, and measured cells exactly the same as before the sqlite
    backend existed, so pre-existing cache entries stay valid.  Executing
    cells add the backend marker and their execution fingerprint — a result
    computed from one data seed, row count, disk, engine or page size must
    never be served for another.
    """
    inputs = {
        "format": FORMAT_VERSION,
        "algorithm": algorithm,
        "algorithm_options": dict(algorithm_options),
        "workload_id": workload_id,
        "workload": workload_fingerprint(workload),
        "cost_model": cost_model_fingerprint(cost_model_id, cost_model),
    }
    if backend == "sqlite":
        inputs["backend"] = backend
        inputs["execution"] = sqlite_execution_fingerprint(measurement or {}, workload)
    elif backend != "estimated":
        inputs["backend"] = backend
        inputs["execution"] = execution_fingerprint(
            measurement or {}, cost_model, workload
        )
    return inputs


def deterministic_payload(payload: Mapping[str, object]) -> Dict[str, object]:
    """The payload minus its wall-clock ``timing`` section.

    Everything left is a pure function of the cell inputs, so two computations
    of the same cell — serial or parallel, cached or fresh — agree byte for
    byte on this view's canonical JSON.
    """
    return {key: value for key, value in payload.items() if key != "timing"}


class ResultCache:
    """On-disk JSON cache of grid cell results, keyed by input content hash.

    I/O failures degrade instead of killing the run: a ``store`` that cannot
    write (read-only root, disk full, root path occupied by a file) and a
    ``load`` that cannot read (permissions, I/O error) are *counted*, warned
    about once per cache instance, and otherwise ignored — the grid simply
    runs cache-less for the affected entries.  A cache is an accelerator; it
    must never be the reason a multi-hour grid dies.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        #: Entries served from disk.
        self.hits = 0
        #: Lookups with no entry on disk.
        self.misses = 0
        #: Entries rejected because they did not parse or failed a checksum.
        self.corrupt = 0
        #: Entries rejected because their stored inputs no longer hash to
        #: their key.
        self.stale = 0
        #: Entries written (fresh computations stored).
        self.stores = 0
        #: Writes that failed with an ``OSError`` (results kept in memory,
        #: run continued cache-less).
        self.store_failures = 0
        #: Reads that failed with an ``OSError`` other than the entry being
        #: absent (treated as misses, recomputed).
        self.load_failures = 0
        self._io_warned = False

    def _warn_io_failure(self, action: str, error: OSError) -> None:
        """Warn on the first I/O failure only; later ones just count."""
        if self._io_warned:
            return
        self._io_warned = True
        warnings.warn(
            f"result cache {self.root} cannot {action} entries "
            f"({type(error).__name__}: {error}); continuing without the "
            f"cache for affected cells — further failures are counted "
            f"silently (see ResultCache.describe())",
            RuntimeWarning,
            stacklevel=3,
        )

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``key``, or ``None`` if absent or untrusted."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            self.misses += 1
            _CACHE_MISSES.value += 1
            return None
        except OSError as error:
            self.load_failures += 1
            _CACHE_LOAD_FAILURES.value += 1
            self._warn_io_failure("read", error)
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            self.corrupt += 1
            _CACHE_CORRUPT.value += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != FORMAT_VERSION
            or entry.get("key") != key
            or not isinstance(entry.get("payload"), dict)
        ):
            self.corrupt += 1
            _CACHE_CORRUPT.value += 1
            return None
        if content_key(entry.get("inputs", {})) != key:
            self.stale += 1
            _CACHE_STALE.value += 1
            return None
        payload = entry["payload"]
        if (
            hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
            != entry.get("payload_sha256")
        ):
            self.corrupt += 1
            _CACHE_CORRUPT.value += 1
            return None
        self.hits += 1
        _CACHE_HITS.value += 1
        return payload

    def store(
        self, key: str, inputs: Mapping[str, object], payload: Mapping[str, object]
    ) -> None:
        """Atomically persist one entry (overwrites any distrusted leftover).

        A write that fails with ``OSError`` (read-only root, disk full, root
        occupied by a file) is counted in :attr:`store_failures`, warned
        about once, and swallowed — the result stays usable in memory and the
        run continues cache-less for this entry.
        """
        entry = {
            "format": FORMAT_VERSION,
            "key": key,
            "inputs": inputs,
            "payload": payload,
            "payload_sha256": hashlib.sha256(
                canonical_json(payload).encode("utf-8")
            ).hexdigest(),
        }
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    json.dump(entry, stream, sort_keys=True, indent=1)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            self.store_failures += 1
            _CACHE_STORE_FAILURES.value += 1
            self._warn_io_failure("write", error)
            return
        self.stores += 1
        _CACHE_STORES.value += 1

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits + all flavours of miss)."""
        return self.hits + self.misses + self.corrupt + self.stale + self.load_failures

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        """One-line statistics summary."""
        rejected = ""
        if self.corrupt or self.stale:
            rejected = f", {self.corrupt} corrupt, {self.stale} stale (recomputed)"
        degraded = ""
        if self.store_failures or self.load_failures:
            degraded = (
                f", degraded: {self.store_failures} store / "
                f"{self.load_failures} load I/O failures"
            )
        return (
            f"cache {self.root}: {self.hits} hits, {self.misses} misses "
            f"({self.hit_rate * 100:.1f}% hit rate{rejected}{degraded})"
        )
