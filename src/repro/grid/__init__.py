"""The comparison grid: the paper's systematic study as a runnable subsystem.

The paper's central artifact is not one algorithm but the *grid* — every
vertical partitioning algorithm crossed with every schema, workload and
hardware cost model.  This package makes that grid declarative, parallel and
incremental:

* :mod:`repro.grid.spec` — :class:`GridSpec` / :class:`GridCell` describe the
  cross product by id; workload and cost model resolvers turn ids into
  objects on either side of a process boundary.
* :mod:`repro.grid.cache` — :class:`ResultCache`, an on-disk JSON cache keyed
  by a content hash of each cell's resolved inputs, so re-runs and
  interrupted runs are incremental and corrupted or stale entries are
  recomputed rather than trusted.
* :mod:`repro.grid.worker` — per-process cell execution; workers rebind the
  memoized :class:`~repro.cost.evaluator.CostEvaluator` kernel per schema via
  process-local cache sharing.
* :mod:`repro.grid.runner` — :func:`run_grid`, the fault-tolerant
  serial/parallel execution loop returning a :class:`GridReport`: per-cell
  retries with deterministic backoff (:class:`RetryPolicy`), per-cell
  wall-clock timeouts, dead-worker detection and respawn, and failure
  quarantine (:class:`CellFailure`) with keep-going vs fail-fast semantics.
* :mod:`repro.grid.faults` — deterministic fault injection
  (:class:`FaultPlan`): raise / transient / hang / die faults per cell label,
  installable through the environment so they reach worker processes — the
  reproducible test harness behind every failure path above.
* :mod:`repro.grid.aggregate` — cells to headline tables (quality,
  optimisation time, pay-off, fragility, cross-model, failures).
* :mod:`repro.grid.cli` — the ``python -m repro.grid`` front end.

Every run is observable through :mod:`repro.obs`: ``run_grid(trace=PATH)``
(CLI ``--trace PATH``) writes a JSONL trace of phases, cell attempts,
retries, crashes and timeouts — worker spans travel back over the answer
pipe — and ``GridReport.telemetry`` always carries a
:class:`~repro.obs.summary.RunTelemetry` digest.

See ``docs/GRID.md`` for cell hashing, the cache layout on disk, resume
semantics and worker-pool sizing, ``docs/ROBUSTNESS.md`` for the failure
semantics, retry/timeout knobs and the fault-injection reference, and
``docs/OBSERVABILITY.md`` for the trace schema and metric names.
"""

from repro.grid.spec import (
    BACKENDS,
    BUILTIN_GRIDS,
    GridCancelled,
    GridCell,
    GridError,
    GridExecutionError,
    GridSpec,
    builtin_grid,
    register_cost_model,
    register_workload,
    resolve_cost_model,
    resolve_workload,
)
from repro.grid.cache import ResultCache, content_key, deterministic_payload
from repro.grid.faults import Fault, FaultPlan, FaultPlanError
from repro.grid.runner import (
    CellFailure,
    CellResult,
    GridReport,
    RetryPolicy,
    run_grid,
)
from repro.obs.summary import RunTelemetry
from repro.grid.aggregate import (
    agreement_rows,
    agreement_summary_rows,
    failure_rows,
    headline_tables,
)

__all__ = [
    "BACKENDS",
    "BUILTIN_GRIDS",
    "GridCancelled",
    "GridCell",
    "GridError",
    "GridExecutionError",
    "GridSpec",
    "builtin_grid",
    "register_workload",
    "register_cost_model",
    "resolve_workload",
    "resolve_cost_model",
    "ResultCache",
    "content_key",
    "deterministic_payload",
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "CellFailure",
    "CellResult",
    "GridReport",
    "RetryPolicy",
    "RunTelemetry",
    "run_grid",
    "headline_tables",
    "agreement_rows",
    "agreement_summary_rows",
    "failure_rows",
]
