"""Drift detection: cost-regret triggers over windowed statistics.

A workload has *drifted*, for partitioning purposes, exactly when the
deployed layout has become expensive relative to what a re-partitioning
could achieve on the recent window.  The detector therefore compares two
numbers every time it checks:

* the **deployed cost** — the windowed workload's cost under the currently
  deployed layout, evaluated through the memoized
  :class:`~repro.cost.evaluator.CostEvaluator` (the window is the aggregated
  footprint summary, so this is O(distinct footprints), not O(window), and
  repeated footprints are cache hits);
* a **best-case bound** — a cheap lower bound on the cost any layout could
  achieve on the same window.  For bandwidth-based models (the HDD model)
  the bound is the windowed *needed bytes* divided by the read bandwidth:
  every layout must physically read at least the bytes the queries
  reference, so no re-partitioning can beat it.  The needed bytes are
  maintained incrementally by the statistics — the bound costs O(1) per
  check.  Models without a bandwidth notion fall back to the column-layout
  cost on the window (the reference layout the paper's Figures normalise
  against), which is equally cheap through the evaluator's caches.

The *regret* is ``(deployed - bound) / bound``.  Because the bound ignores
seeks and block rounding, even an optimal layout carries some constant
regret; the trigger threshold is therefore a multiple of the bound (default:
fire when the deployed layout costs more than twice the best case), and the
controller's pay-off gate — not the detector — has the final word on whether
re-partitioning is actually worth it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cost.base import CostModel
from repro.cost.evaluator import CostEvaluator
from repro.online.stats import WorkloadStatistics


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one drift check."""

    fired: bool
    regret: float
    deployed_cost: float
    bound_cost: float
    arrival: int
    reason: str = ""


def best_case_bound(
    stats: WorkloadStatistics,
    cost_model: CostModel,
    evaluator: Optional[CostEvaluator] = None,
) -> float:
    """Cheap lower-ish bound on the best achievable windowed cost.

    Bandwidth models get the true scan lower bound (needed bytes over read
    bandwidth, O(1) from the incrementally maintained statistics); other
    models fall back to the column layout's cost on the window, which
    requires an ``evaluator`` bound to the window workload.
    """
    disk = getattr(cost_model, "disk", None)
    if disk is not None and getattr(disk, "read_bandwidth", 0):
        return stats.weighted_needed_bytes() / disk.read_bandwidth
    if evaluator is None:
        raise ValueError(
            "cost model exposes no read bandwidth; best_case_bound needs an "
            "evaluator bound to the window workload for the column fallback"
        )
    column_groups = [1 << index for index in range(stats.schema.attribute_count)]
    return evaluator.evaluate(column_groups)


class CostRegretDetector:
    """Fires when the deployed layout's windowed regret exceeds a threshold.

    Parameters
    ----------
    cost_model:
        The model the regret is measured under.
    threshold:
        Fire when ``(deployed - bound) / bound > threshold``.  Because the
        bound is optimistic (no seeks), thresholds below ~0.5 fire on noise;
        the default 1.0 means "the deployed layout costs more than twice the
        best case".
    min_arrivals:
        Warm-up: never fire before this many arrivals have been observed
        (a near-empty window makes regret meaningless).
    cooldown:
        Number of arrivals after a firing during which the detector stays
        silent, giving the re-organised layout time to prove itself on a
        window it did not serve.
    check_every:
        Only evaluate the regret every this many arrivals; between checks
        :meth:`check` returns an unfired decision without touching the cost
        model at all.
    """

    def __init__(
        self,
        cost_model: CostModel,
        threshold: float = 1.0,
        min_arrivals: int = 16,
        cooldown: int = 0,
        check_every: int = 1,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_arrivals < 1:
            raise ValueError("min_arrivals must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.cost_model = cost_model
        self.threshold = threshold
        self.min_arrivals = min_arrivals
        self.cooldown = cooldown
        self.check_every = check_every
        self._last_fired_at: Optional[int] = None
        #: History of fired decisions (diagnostics).
        self.firings: List[DriftDecision] = []

    def should_check(self, stats: WorkloadStatistics) -> bool:
        """True if a regret evaluation is due at the current arrival."""
        if stats.arrivals < self.min_arrivals:
            return False
        if stats.arrivals % self.check_every != 0:
            return False
        if (
            self._last_fired_at is not None
            and stats.arrivals - self._last_fired_at <= self.cooldown
        ):
            return False
        return True

    def check(
        self,
        stats: WorkloadStatistics,
        deployed_groups: Sequence[int],
        evaluator: CostEvaluator,
    ) -> DriftDecision:
        """Evaluate the deployed layout's regret on the current window.

        ``evaluator`` must be bound (or rebound, see
        :meth:`CostEvaluator.rebind`) to ``stats.as_workload()`` so the
        deployed cost is the windowed cost; ``deployed_groups`` is the
        deployed layout as group bitmasks.
        """
        if not self.should_check(stats):
            return DriftDecision(
                fired=False,
                regret=0.0,
                deployed_cost=0.0,
                bound_cost=0.0,
                arrival=stats.arrivals,
                reason="not-due",
            )
        deployed_cost = evaluator.evaluate(deployed_groups)
        bound = best_case_bound(stats, self.cost_model, evaluator)
        if bound <= 0.0:
            return DriftDecision(
                fired=False,
                regret=0.0,
                deployed_cost=deployed_cost,
                bound_cost=bound,
                arrival=stats.arrivals,
                reason="empty-window",
            )
        regret = (deployed_cost - bound) / bound
        fired = regret > self.threshold
        decision = DriftDecision(
            fired=fired,
            regret=regret,
            deployed_cost=deployed_cost,
            bound_cost=bound,
            arrival=stats.arrivals,
            reason="regret-threshold" if fired else "below-threshold",
        )
        if fired:
            self._last_fired_at = stats.arrivals
            self.firings.append(decision)
        return decision

    def notify_reorganized(self, arrival: int) -> None:
        """Start the cooldown window after the controller re-partitioned."""
        self._last_fired_at = arrival
