"""Query streams: ordered, seed-deterministic sources of arriving queries.

The paper's unified setting is strictly offline — every algorithm sees the
whole workload up front.  A :class:`QueryStream` models the dynamic setting
instead: queries *arrive* one at a time, and nothing downstream may peek
ahead.  A stream is a finite, re-iterable sequence of
:class:`~repro.workload.query.ResolvedQuery` objects over one schema, plus
the phase boundaries the generator knows about (used by the experiments to
mark where the workload actually shifted).

Sources
-------

* :func:`replay_stream` — replay any offline :class:`~repro.workload.workload.Workload`
  in workload order (the unified-setting replay O2P uses).
* :func:`phase_shift_stream` — the workload alternates between *phases*, each
  drawing uniformly from its own set of query templates; at a phase boundary
  the template set changes abruptly.
* :func:`rotating_hot_set_stream` — each phase has a *hot* attribute set that
  rotates through the schema between phases; queries reference mostly-hot
  attributes, so the profitable column grouping drifts phase by phase.
* :func:`zipf_template_stream` — a fixed pool of query templates drawn with
  Zipf-skewed frequencies; the rank→template assignment rotates periodically,
  so the *frequency mass* (not the template shapes) drifts.

Every generator takes an integer seed or :class:`numpy.random.Generator` and
materialises its queries eagerly, so iterating a stream twice yields the
identical sequence and two streams built with the same seed are equal
query-for-query.  Arrival names are made unique (``<template>@<arrival>``)
so any slice of a stream can be materialised into a ``Workload``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.workload.query import Query, ResolvedQuery
from repro.workload.schema import TableSchema
from repro.workload.synthetic import RandomState, _rng
from repro.workload.workload import Workload


class StreamError(ValueError):
    """Raised when a stream definition is inconsistent."""


class QueryStream:
    """A finite, re-iterable sequence of arriving queries over one schema.

    Parameters
    ----------
    schema:
        The table the queries run against.
    queries:
        The arrivals in order; plain :class:`Query` objects are resolved
        against ``schema``.
    name:
        Stream identifier used in reports.
    phase_boundaries:
        Arrival indices (0-based) at which a new phase *starts*, excluding
        the implicit phase start at arrival 0.  Generators that know their
        drift points record them here so experiments can annotate results.
    """

    def __init__(
        self,
        schema: TableSchema,
        queries: Sequence[Union[Query, ResolvedQuery]],
        name: str = "stream",
        phase_boundaries: Sequence[int] = (),
    ) -> None:
        resolved: List[ResolvedQuery] = []
        for query in queries:
            if isinstance(query, ResolvedQuery):
                resolved.append(query)
            elif isinstance(query, Query):
                resolved.append(query.resolve(schema))
            else:
                raise StreamError(
                    f"expected Query or ResolvedQuery, got {type(query).__name__}"
                )
        boundaries = tuple(sorted(set(int(b) for b in phase_boundaries)))
        if boundaries and (boundaries[0] <= 0 or boundaries[-1] >= len(resolved)):
            raise StreamError(
                "phase boundaries must lie strictly inside the stream "
                f"(got {boundaries} for {len(resolved)} arrivals)"
            )
        self.schema = schema
        self.queries: Tuple[ResolvedQuery, ...] = tuple(resolved)
        self.name = name
        self.phase_boundaries: Tuple[int, ...] = boundaries

    # -- sequence protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[ResolvedQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def arrival_count(self) -> int:
        """Number of queries the stream delivers."""
        return len(self.queries)

    @property
    def phase_count(self) -> int:
        """Number of phases (boundaries + 1)."""
        return len(self.phase_boundaries) + 1

    def phase_of(self, arrival: int) -> int:
        """0-based phase index of the given arrival index."""
        if not 0 <= arrival < len(self.queries):
            raise StreamError(f"arrival {arrival} outside stream of {len(self)}")
        phase = 0
        for boundary in self.phase_boundaries:
            if arrival >= boundary:
                phase += 1
        return phase

    # -- materialisation -----------------------------------------------------

    def as_workload(self, name: Optional[str] = None) -> Workload:
        """The whole stream as an offline workload (the hindsight view)."""
        return Workload(
            self.schema, list(self.queries), name=name or f"{self.name}-hindsight"
        )

    def prefix_workload(self, k: int, name: Optional[str] = None) -> Workload:
        """The first ``k`` arrivals as an offline workload."""
        if not 1 <= k <= len(self.queries):
            raise StreamError(f"prefix length {k} outside stream of {len(self)}")
        return Workload(
            self.schema, list(self.queries[:k]), name=name or f"{self.name}[:{k}]"
        )

    def describe(self) -> str:
        """One-line summary of the stream."""
        return (
            f"QueryStream {self.name!r} on {self.schema.name}: "
            f"{self.arrival_count} arrivals, {self.phase_count} phase(s)"
        )


# -- sources ---------------------------------------------------------------------


def replay_stream(workload: Workload, name: Optional[str] = None) -> QueryStream:
    """Replay an offline workload query by query, in workload order."""
    return QueryStream(
        workload.schema,
        list(workload.queries),
        name=name or f"{workload.name}-replay",
    )


def phase_shift_stream(
    schema: TableSchema,
    phases: Sequence[Sequence[Query]],
    queries_per_phase: int,
    noise: float = 0.0,
    random_state: RandomState = 0,
    name: str = "phase-shift",
) -> QueryStream:
    """Phases of uniform draws from per-phase template sets.

    Each phase emits ``queries_per_phase`` arrivals, every arrival sampling
    one template uniformly from that phase's set (template weights and
    selectivities are preserved on the emitted copy).  The drift is abrupt:
    at a boundary the template set is swapped wholesale.

    ``noise`` is the probability that an arrival is a one-off query with a
    uniformly random attribute footprint instead of a template draw.  Noise
    is *not* drift — the template mix is unchanged — and it is what
    separates a drift-gated controller from an eager one: a policy that
    re-optimises on every arrival chases each outlier through its window,
    paying a re-organisation whenever one enters or leaves.
    """
    if queries_per_phase < 1:
        raise StreamError("queries_per_phase must be >= 1")
    if not phases or any(len(templates) == 0 for templates in phases):
        raise StreamError("each phase needs at least one query template")
    if not 0.0 <= noise <= 1.0:
        raise StreamError("noise must be in [0, 1]")
    rng = _rng(random_state)
    n = schema.attribute_count
    names = schema.attribute_names
    arrivals: List[Query] = []
    boundaries: List[int] = []
    for phase_index, templates in enumerate(phases):
        if phase_index > 0:
            boundaries.append(len(arrivals))
        for _ in range(queries_per_phase):
            if noise and rng.random() < noise:
                size = int(rng.integers(1, n + 1))
                chosen = rng.choice(n, size=size, replace=False)
                arrivals.append(
                    Query(
                        name=f"noise@{len(arrivals)}",
                        attributes=[names[i] for i in chosen],
                    )
                )
                continue
            template = templates[int(rng.integers(len(templates)))]
            arrivals.append(
                Query(
                    name=f"{template.name}@{len(arrivals)}",
                    attributes=template.attributes,
                    weight=template.weight,
                    selectivity=template.selectivity,
                )
            )
    return QueryStream(schema, arrivals, name=name, phase_boundaries=boundaries)


def rotating_hot_set_stream(
    schema: TableSchema,
    num_phases: int,
    queries_per_phase: int,
    hot_size: Optional[int] = None,
    rotation: Optional[int] = None,
    min_attributes: int = 1,
    max_attributes: Optional[int] = None,
    hot_probability: float = 0.95,
    random_state: RandomState = 0,
    name: str = "rotating-hot",
) -> QueryStream:
    """Phases whose *hot* attribute set rotates through the schema.

    A random attribute order is fixed once; phase ``p`` takes a window of
    ``hot_size`` consecutive attributes starting at offset ``p * rotation``
    (wrapping around).  Each arriving query draws its footprint size
    uniformly from ``[min_attributes, max_attributes]`` and fills it by
    sampling without replacement, with ``hot_probability`` of the mass on the
    hot set.  A rotation smaller than ``hot_size`` makes consecutive phases
    overlap, so the same attribute's co-access partners change across phases
    — the situation in which a single compromise layout must read
    unnecessary data in every phase.
    """
    if num_phases < 1 or queries_per_phase < 1:
        raise StreamError("num_phases and queries_per_phase must be >= 1")
    if not 0.0 < hot_probability <= 1.0:
        raise StreamError("hot_probability must be in (0, 1]")
    n = schema.attribute_count
    hot_size = max(2, n // 2) if hot_size is None else hot_size
    if not 1 <= hot_size <= n:
        raise StreamError("hot_size must be within [1, #attributes]")
    rotation = max(1, hot_size // 2) if rotation is None else rotation
    if rotation < 1:
        raise StreamError("rotation must be >= 1")
    max_attributes = hot_size if max_attributes is None else min(max_attributes, n)
    if not 1 <= min_attributes <= max_attributes:
        raise StreamError("need 1 <= min_attributes <= max_attributes <= #attributes")
    rng = _rng(random_state)
    names = schema.attribute_names
    order = list(rng.permutation(n))
    arrivals: List[Query] = []
    boundaries: List[int] = []
    for phase in range(num_phases):
        if phase > 0:
            boundaries.append(len(arrivals))
        offset = (phase * rotation) % n
        hot = [order[(offset + i) % n] for i in range(hot_size)]
        cold = [a for a in order if a not in set(hot)]
        # Per-attribute selection probabilities: hot attributes share
        # ``hot_probability`` of the mass, cold attributes the remainder.
        probabilities = np.zeros(n)
        probabilities[hot] = hot_probability / len(hot)
        if cold:
            probabilities[cold] = (1.0 - hot_probability) / len(cold)
        probabilities /= probabilities.sum()
        # Sampling without replacement can only fill a footprint from the
        # attributes with non-zero probability; with hot_probability == 1.0
        # (or an empty cold set) that is just the hot set.
        drawable = int(np.count_nonzero(probabilities))
        for _ in range(queries_per_phase):
            size = min(
                int(rng.integers(min_attributes, max_attributes + 1)), drawable
            )
            chosen = rng.choice(n, size=size, replace=False, p=probabilities)
            arrivals.append(
                Query(
                    name=f"p{phase}@{len(arrivals)}",
                    attributes=[names[i] for i in chosen],
                )
            )
    return QueryStream(schema, arrivals, name=name, phase_boundaries=boundaries)


def zipf_template_stream(
    schema: TableSchema,
    num_templates: int,
    length: int,
    skew: float = 1.2,
    rotate_every: Optional[int] = None,
    min_attributes: int = 1,
    max_attributes: Optional[int] = None,
    random_state: RandomState = 0,
    name: str = "zipf",
) -> QueryStream:
    """Zipf-skewed draws from a fixed template pool, with rotating ranks.

    ``num_templates`` random-footprint templates are generated once; arrival
    frequencies follow a Zipf law with exponent ``skew`` (rank ``r`` has
    probability proportional to ``1 / r**skew``).  Every ``rotate_every``
    arrivals the rank→template assignment rotates by one, shifting the
    frequency mass onto different templates — the template *shapes* never
    change, only how often each one runs.  ``rotate_every=None`` disables
    the drift.
    """
    if num_templates < 1 or length < 1:
        raise StreamError("num_templates and length must be >= 1")
    if skew <= 0:
        raise StreamError("skew must be positive")
    if rotate_every is not None and rotate_every < 1:
        raise StreamError("rotate_every must be >= 1 (or None)")
    rng = _rng(random_state)
    n = schema.attribute_count
    max_attributes = n if max_attributes is None else min(max_attributes, n)
    if not 1 <= min_attributes <= max_attributes:
        raise StreamError("need 1 <= min_attributes <= max_attributes <= #attributes")
    names = schema.attribute_names
    templates: List[Query] = []
    for t in range(num_templates):
        size = int(rng.integers(min_attributes, max_attributes + 1))
        chosen = rng.choice(n, size=size, replace=False)
        templates.append(Query(f"T{t}", [names[i] for i in chosen]))
    weights = 1.0 / np.arange(1, num_templates + 1) ** skew
    weights /= weights.sum()
    arrivals: List[Query] = []
    boundaries: List[int] = []
    for arrival in range(length):
        if rotate_every is not None and arrival > 0 and arrival % rotate_every == 0:
            boundaries.append(arrival)
        shift = 0 if rotate_every is None else arrival // rotate_every
        rank = int(rng.choice(num_templates, p=weights))
        template = templates[(rank + shift) % num_templates]
        arrivals.append(
            Query(
                name=f"{template.name}@{arrival}",
                attributes=template.attributes,
            )
        )
    return QueryStream(schema, arrivals, name=name, phase_boundaries=boundaries)
