"""Streaming, adaptive re-partitioning: the dynamic-workload subsystem.

The paper compares vertical partitioning algorithms in a strictly offline
setting; this package opens the *dynamic* question its own online algorithm
(O2P) and pay-off metric (Appendix A.1) beg — when a workload shifts, when is
re-partitioning worth it?  See ``docs/ONLINE.md`` for the architecture.

* :mod:`repro.online.stream` — query streams: workload replay and
  seed-deterministic synthetic drift (phase shifts, rotating hot attribute
  sets, Zipf-skewed template frequencies);
* :mod:`repro.online.stats` — sliding-window and exponentially decayed
  workload summaries, maintained incrementally per arrival and
  materialisable into an offline ``Workload``;
* :mod:`repro.online.drift` — cost-regret drift triggers over the windowed
  statistics, costed through the memoized ``CostEvaluator``;
* :mod:`repro.online.controller` — the pay-off-gated
  :class:`~repro.online.controller.AdaptiveAdvisor`, the baseline policies
  it is compared against, and the :func:`~repro.online.controller.run_policy`
  harness that accounts cumulative scan + re-organisation cost.
"""

from repro.online.stream import (
    QueryStream,
    StreamError,
    phase_shift_stream,
    replay_stream,
    rotating_hot_set_stream,
    zipf_template_stream,
)
from repro.online.stats import (
    DecayedStats,
    SlidingWindowStats,
    WorkloadStatistics,
)
from repro.online.drift import CostRegretDetector, DriftDecision, best_case_bound
from repro.online.controller import (
    AdaptiveAdvisor,
    O2PPolicy,
    OnlinePolicy,
    OnlineRunResult,
    Reorganization,
    ReorgEvent,
    ReorgEveryQueryPolicy,
    StaticPolicy,
    hindsight_policy,
    run_policy,
)

__all__ = [
    "QueryStream",
    "StreamError",
    "replay_stream",
    "phase_shift_stream",
    "rotating_hot_set_stream",
    "zipf_template_stream",
    "WorkloadStatistics",
    "SlidingWindowStats",
    "DecayedStats",
    "CostRegretDetector",
    "DriftDecision",
    "best_case_bound",
    "OnlinePolicy",
    "OnlineRunResult",
    "Reorganization",
    "ReorgEvent",
    "StaticPolicy",
    "hindsight_policy",
    "O2PPolicy",
    "ReorgEveryQueryPolicy",
    "AdaptiveAdvisor",
    "run_policy",
]
