"""Windowed workload statistics, maintained incrementally per arriving query.

The adaptive controller needs an up-to-date summary of the *recent* workload
— query-footprint frequencies, the attribute affinity matrix, and the
weighted bytes each query actually needs — without ever replaying the stream.
Two summaries are provided:

* :class:`SlidingWindowStats` — the last ``window_size`` arrivals, exact:
  every arrival adds its contribution and evicts the oldest one's, so the
  summary always equals the batch statistics of the same window.
* :class:`DecayedStats` — an exponentially decayed summary of the whole
  stream: every arrival first multiplies all accumulated mass by ``decay``.
  Implemented with the classic running-scale trick, so an arrival costs
  O(footprint²) like the sliding window — no rescan of accumulated state.

Both maintain their structures in **O(query footprint)** work per arrival
(footprint² for the affinity matrix), independent of how many queries the
stream has delivered — the invariant the adaptive microbenchmark asserts.

Arrivals are aggregated by footprint bitmask: two queries touching the same
attribute set are one entry with summed weight.  :meth:`WorkloadStatistics.as_workload`
materialises that aggregate into an ordinary
:class:`~repro.workload.workload.Workload` (one weighted query per distinct
footprint, deterministically ordered by mask), so any offline algorithm can
run on the window as-is.  All derived statistics — affinity matrix, access
weights, workload cost — are weight-linear, so the aggregate is equivalent
to the raw window query-for-query.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.workload.query import ResolvedQuery
from repro.workload.schema import TableSchema, indices_of_mask
from repro.workload.workload import Workload

#: When the running scale of :class:`DecayedStats` drops below this, stored
#: magnitudes are folded back into the entries to keep floats well-scaled.
_RENORMALIZE_BELOW = 1e-12

#: Relative threshold below which a post-eviction residual is snapped to
#: exactly zero (see :func:`_clamp_residual`).
_RESIDUAL_RELATIVE_EPS = 1e-12


def _clamp_residual(value: float, scale: float) -> float:
    """Snap float residue left by an eviction subtraction to exact zero.

    Subtracting an arrival's contribution back out of a running float sum
    can leave ±1e-16-ish mass where the true remainder is zero (catastrophic
    cancellation with mixed weights) — including *negative* mass, which no
    accumulated weight can legitimately be.  Anything at or below a relative
    epsilon of the just-subtracted contribution (``scale``) is
    indistinguishable from such residue and becomes exactly ``0.0``; real
    remaining mass is orders of magnitude above it and passes through.
    """
    if value <= 0.0 or value <= abs(scale) * _RESIDUAL_RELATIVE_EPS:
        return 0.0
    return value


class WorkloadStatistics(abc.ABC):
    """Common interface of the incrementally maintained workload summaries."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        #: Total number of queries ever observed.
        self.arrivals = 0
        # Aggregated per-footprint weight, keyed by attribute bitmask.
        self._footprints: Dict[int, float] = {}
        # Affinity matrix over attribute indices (Navathe's measure).
        self._affinity = np.zeros(
            (schema.attribute_count, schema.attribute_count), dtype=float
        )
        # Σ weight · (bytes the query's referenced attributes occupy), the
        # ingredient of the drift detector's best-case scan bound.
        self._needed_bytes = 0.0
        # Row size of each footprint seen so far (schema lookups are cached
        # because footprints repeat massively in a stream).
        self._row_sizes: Dict[int, int] = {}

    # -- abstract ------------------------------------------------------------

    @abc.abstractmethod
    def observe(self, query: ResolvedQuery) -> None:
        """Fold one arriving query into the summary."""

    # -- shared helpers ------------------------------------------------------

    def _footprint_row_size(self, mask: int, query: ResolvedQuery) -> int:
        row_size = self._row_sizes.get(mask)
        if row_size is None:
            row_size = self.schema.subset_row_size(query.attribute_indices)
            self._row_sizes[mask] = row_size
        return row_size

    # -- derived views -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of arrivals currently contributing to the summary."""
        return self.arrivals

    @property
    def distinct_footprints(self) -> int:
        """Number of distinct attribute footprints in the summary."""
        return len(self._footprints)

    @abc.abstractmethod
    def total_weight(self) -> float:
        """Summed (possibly decayed) weight of the summarised queries."""

    @abc.abstractmethod
    def footprint_weights(self) -> Dict[int, float]:
        """Per-footprint accumulated weight, keyed by attribute bitmask."""

    @abc.abstractmethod
    def affinity(self) -> np.ndarray:
        """Attribute affinity matrix of the summarised window (a copy)."""

    @abc.abstractmethod
    def weighted_needed_bytes(self) -> float:
        """Σ weight · needed bytes over the window (drift bound ingredient)."""

    def attribute_access_weights(self) -> np.ndarray:
        """Per-attribute total access weight (diagonal of the affinity matrix)."""
        return np.diag(self.affinity()).copy()

    def as_workload(self, name: Optional[str] = None) -> Workload:
        """The summary as an offline workload: one weighted query per footprint.

        Queries are ordered by ascending footprint bitmask and named after
        it (``g<mask:x>``), so the materialisation is deterministic — two
        equal summaries produce byte-identical workloads.
        """
        queries: List[ResolvedQuery] = []
        for mask, weight in sorted(self.footprint_weights().items()):
            if weight <= 0.0:
                continue
            queries.append(
                ResolvedQuery(
                    name=f"g{mask:x}",
                    attribute_indices=indices_of_mask(mask),
                    weight=weight,
                )
            )
        return Workload(self.schema, queries, name=name or "window")


class SlidingWindowStats(WorkloadStatistics):
    """Exact statistics over the last ``window_size`` arrivals.

    Each arrival adds its contribution to the aggregates and, once the
    window is full, subtracts the evicted arrival's — O(footprint²) per
    arrival regardless of stream length.  Per-footprint occurrence counts
    are tracked alongside the float weights so an entry is dropped exactly
    when its last occurrence leaves the window (no reliance on float
    subtraction reaching exactly zero).
    """

    def __init__(self, schema: TableSchema, window_size: int) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        super().__init__(schema)
        self.window_size = window_size
        self._window: Deque[Tuple[int, float]] = deque()
        self._counts: Dict[int, int] = {}
        self._total_weight = 0.0

    def observe(self, query: ResolvedQuery) -> None:
        self.arrivals += 1
        mask = query.index_mask
        weight = query.weight
        row_size = self._footprint_row_size(mask, query)
        self._window.append((mask, weight))
        self._footprints[mask] = self._footprints.get(mask, 0.0) + weight
        self._counts[mask] = self._counts.get(mask, 0) + 1
        self._total_weight += weight
        indices = query.attribute_indices
        for i in indices:
            for j in indices:
                self._affinity[i, j] += weight
        self._needed_bytes += weight * row_size * self.schema.row_count
        if len(self._window) > self.window_size:
            self._evict()

    def _evict(self) -> None:
        mask, weight = self._window.popleft()
        count = self._counts[mask] - 1
        if count == 0:
            del self._counts[mask]
            del self._footprints[mask]
        else:
            self._counts[mask] = count
            self._footprints[mask] = _clamp_residual(
                self._footprints[mask] - weight, weight
            )
        self._total_weight = _clamp_residual(self._total_weight - weight, weight)
        indices = indices_of_mask(mask)
        for i in indices:
            for j in indices:
                self._affinity[i, j] = _clamp_residual(
                    self._affinity[i, j] - weight, weight
                )
        needed = weight * self._row_sizes[mask] * self.schema.row_count
        self._needed_bytes = _clamp_residual(self._needed_bytes - needed, needed)

    @property
    def size(self) -> int:
        return len(self._window)

    def total_weight(self) -> float:
        return self._total_weight

    def footprint_weights(self) -> Dict[int, float]:
        return dict(self._footprints)

    def affinity(self) -> np.ndarray:
        return self._affinity.copy()

    def weighted_needed_bytes(self) -> float:
        return self._needed_bytes


class DecayedStats(WorkloadStatistics):
    """Exponentially decayed statistics over the whole stream.

    Every arrival multiplies all accumulated mass by ``decay`` before adding
    its own contribution, so a query observed ``k`` arrivals ago contributes
    ``decay**k`` of its weight.  Rather than rescaling every entry per
    arrival, a running scale factor is maintained and entries are stored
    divided by it; the stored magnitudes are folded back (renormalised) only
    when the scale underflows, keeping the amortised per-arrival cost at
    O(footprint²).
    """

    def __init__(self, schema: TableSchema, decay: float = 0.98) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        super().__init__(schema)
        self.decay = decay
        self._scale = 1.0
        self._total_weight = 0.0

    def observe(self, query: ResolvedQuery) -> None:
        self.arrivals += 1
        self._scale *= self.decay
        if self._scale < _RENORMALIZE_BELOW:
            self._renormalize()
        mask = query.index_mask
        stored = query.weight / self._scale
        row_size = self._footprint_row_size(mask, query)
        self._footprints[mask] = self._footprints.get(mask, 0.0) + stored
        self._total_weight += stored
        indices = query.attribute_indices
        for i in indices:
            for j in indices:
                self._affinity[i, j] += stored
        self._needed_bytes += stored * row_size * self.schema.row_count

    def _renormalize(self) -> None:
        """Fold the running scale back into the stored magnitudes."""
        for mask in self._footprints:
            self._footprints[mask] *= self._scale
        self._affinity *= self._scale
        self._needed_bytes *= self._scale
        self._total_weight *= self._scale
        self._scale = 1.0

    def total_weight(self) -> float:
        return self._total_weight * self._scale

    def footprint_weights(self) -> Dict[int, float]:
        return {mask: weight * self._scale for mask, weight in self._footprints.items()}

    def affinity(self) -> np.ndarray:
        return self._affinity * self._scale

    def weighted_needed_bytes(self) -> float:
        return self._needed_bytes * self._scale
