"""Adaptive re-partitioning controller and the online policy harness.

:func:`run_policy` replays a :class:`~repro.online.stream.QueryStream`
against an :class:`OnlinePolicy` and accounts the *cumulative* cost the
paper's pay-off metric reasons about, all in seconds:

* **scan cost** — every arriving query is charged its cost under the layout
  deployed *at arrival time*, evaluated through the memoized
  :class:`~repro.cost.evaluator.CostEvaluator` (repeated footprints are
  cache hits, so charging a query is O(1) after its first occurrence);
* **creation cost** — every re-organisation is charged the physical
  transformation time of :func:`repro.cost.creation.estimate_creation_time`
  (a full read-transform-write of the table; streams start on a row layout,
  so a policy whose first deployment differs from row pays for it too);
* **optimisation time** — the wall-clock seconds the policy spent deciding
  (running offline algorithms on windows, stepping O2P, ...).

Policies
--------

* :class:`StaticPolicy` — deploy one fixed layout, never adapt
  (:func:`hindsight_policy` builds the paper-style offline baseline: run an
  algorithm on the *whole* stream with hindsight and deploy its layout at
  the start).
* :class:`O2PPolicy` — the always-on incremental baseline: O2P's stepper
  commits at most one split per arrival, each split is a re-organisation.
* :class:`ReorgEveryQueryPolicy` — the other extreme: re-run an offline
  algorithm on the sliding window after every arrival and deploy whatever
  it returns.
* :class:`AdaptiveAdvisor` — the adaptive controller: maintain windowed
  statistics, let a :class:`~repro.online.drift.CostRegretDetector` decide
  *when* re-partitioning is worth considering, run a registered offline
  algorithm on the window only then, and re-partition only when the
  projected pay-off (optimisation + creation time against the windowed
  improvement, :func:`repro.metrics.payoff.payoff_fraction`) clears the
  configured budget.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import Partitioning, row_partitioning
from repro.cost.base import CostModel
from repro.cost.creation import estimate_creation_time
from repro.cost.disk import DEFAULT_DISK
from repro.cost.evaluator import CostEvaluator
from repro.cost.hdd import HDDCostModel
from repro.metrics.payoff import payoff_fraction
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import event as _obs_event, timed
from repro.online.drift import CostRegretDetector
from repro.online.stats import SlidingWindowStats, WorkloadStatistics
from repro.online.stream import QueryStream
from repro.workload.query import ResolvedQuery
from repro.workload.schema import TableSchema
from repro.workload.workload import Workload

# Controller decision counters (docs/OBSERVABILITY.md), mirroring the
# per-policy diagnostics so adaptive behaviour shows up in run telemetry.
_ONLINE_CHECKS = _obs_counter("online.checks")
_ONLINE_TRIGGERS = _obs_counter("online.triggers")
_ONLINE_REORGS = _obs_counter("online.reorgs")
_ONLINE_REJECTED = _obs_counter("online.rejected")


@dataclass(frozen=True)
class Reorganization:
    """A policy's decision to deploy a new layout after the current arrival."""

    layout: Partitioning
    reason: str = ""


@dataclass
class ReorgEvent:
    """One charged re-organisation during a policy run."""

    arrival: int
    layout: Partitioning
    creation_time: float
    reason: str


@dataclass
class OnlineRunResult:
    """Cumulative accounting of one policy over one stream."""

    policy: str
    stream_name: str
    arrivals: int
    scan_cost: float
    creation_cost: float
    optimization_time: float
    events: List[ReorgEvent] = field(default_factory=list)
    final_layout: Optional[Partitioning] = None

    @property
    def reorg_count(self) -> int:
        """Number of charged re-organisations (including an initial deploy)."""
        return len(self.events)

    @property
    def total_cost(self) -> float:
        """Scan + creation + optimisation seconds — the comparison number."""
        return self.scan_cost + self.creation_cost + self.optimization_time

    def to_row(self) -> Dict[str, object]:
        """Tabular form for the experiment report."""
        return {
            "policy": self.policy,
            "scan_cost_s": self.scan_cost,
            "creation_cost_s": self.creation_cost,
            "optimization_time_s": self.optimization_time,
            "total_cost_s": self.total_cost,
            "reorgs": self.reorg_count,
            "final_partitions": (
                self.final_layout.partition_count if self.final_layout else 0
            ),
        }


class OnlinePolicy(abc.ABC):
    """A re-partitioning policy fed one arriving query at a time."""

    #: Policy identifier used in reports.
    name: str = "abstract"

    def __init__(self) -> None:
        #: Wall-clock seconds the policy spent deciding (accumulated).
        self.optimization_time = 0.0

    @abc.abstractmethod
    def start(self, schema: TableSchema) -> Partitioning:
        """Reset state for a new stream and return the initial layout."""

    @abc.abstractmethod
    def on_query(self, arrival: int, query: ResolvedQuery) -> Optional[Reorganization]:
        """React to one arrival; return a re-organisation or ``None``."""


def run_policy(
    stream: QueryStream,
    policy: OnlinePolicy,
    cost_model: Optional[CostModel] = None,
) -> OnlineRunResult:
    """Replay ``stream`` against ``policy`` and account the cumulative cost."""
    model = cost_model if cost_model is not None else HDDCostModel()
    disk = getattr(model, "disk", DEFAULT_DISK)
    evaluator = CostEvaluator(
        Workload(stream.schema, [], name=f"{stream.name}-online"), model
    )
    layout = policy.start(stream.schema)
    layout_masks = layout.as_masks()
    result = OnlineRunResult(
        policy=policy.name,
        stream_name=stream.name,
        arrivals=stream.arrival_count,
        scan_cost=0.0,
        creation_cost=0.0,
        optimization_time=0.0,
    )
    # Streams start physically stored as a row table; an initial deployment
    # that differs from row is a real transformation and is charged as one.
    if not layout.is_row_layout():
        creation = estimate_creation_time(layout, disk)
        result.creation_cost += creation
        result.events.append(ReorgEvent(0, layout, creation, "initial-deployment"))

    for arrival, query in enumerate(stream):
        # The arriving query executes under the layout deployed *now*; a
        # policy's reaction can only benefit later arrivals.
        result.scan_cost += query.weight * evaluator.query_cost(
            query.index_mask, layout_masks
        )
        reorganization = policy.on_query(arrival, query)
        if reorganization is not None and reorganization.layout != layout:
            layout = reorganization.layout
            layout_masks = layout.as_masks()
            creation = estimate_creation_time(layout, disk)
            result.creation_cost += creation
            result.events.append(
                ReorgEvent(arrival, layout, creation, reorganization.reason)
            )

    result.optimization_time = policy.optimization_time
    result.final_layout = layout
    return result


# -- baseline policies -----------------------------------------------------------


class StaticPolicy(OnlinePolicy):
    """Deploy one fixed layout at the start and never adapt."""

    def __init__(self, layout: Partitioning, name: str = "static") -> None:
        super().__init__()
        self.layout = layout
        self.name = name

    def start(self, schema: TableSchema) -> Partitioning:
        return self.layout

    def on_query(self, arrival: int, query: ResolvedQuery) -> Optional[Reorganization]:
        return None


def hindsight_policy(
    stream: QueryStream,
    cost_model: Optional[CostModel] = None,
    algorithm: str = "hillclimb",
    algorithm_options: Optional[Mapping[str, object]] = None,
) -> StaticPolicy:
    """The offline baseline: optimise the *whole* stream with hindsight.

    Runs ``algorithm`` on the stream's hindsight workload and returns a
    static policy deploying that layout at the start (its optimisation time
    is charged to the policy, its creation time by the harness).
    """
    model = cost_model if cost_model is not None else HDDCostModel()
    result = get_algorithm(algorithm, **dict(algorithm_options or {})).run(
        stream.as_workload(), model
    )
    policy = StaticPolicy(result.partitioning, name="static-hindsight")
    policy.optimization_time = result.optimization_time
    return policy


class O2PPolicy(OnlinePolicy):
    """Always-on incremental baseline: one greedy O2P split per arrival.

    Every committed split is a physical re-organisation (charged as a full
    table rewrite, like every other policy's re-organisations).  The
    per-step layouts are costed by the harness through the
    :class:`~repro.cost.evaluator.CostEvaluator` fast path — the stepper
    itself never builds or costs a throwaway ``Partitioning``.
    """

    name = "o2p-incremental"

    def __init__(self, max_splits_per_step: int = 1) -> None:
        super().__init__()
        self.max_splits_per_step = max_splits_per_step
        self._stepper = None

    def start(self, schema: TableSchema) -> Partitioning:
        from repro.algorithms.o2p import O2PStepper

        self._stepper = O2PStepper(schema, max_splits_per_step=self.max_splits_per_step)
        self.optimization_time = 0.0
        return row_partitioning(schema)

    def on_query(self, arrival: int, query: ResolvedQuery) -> Optional[Reorganization]:
        with timed("online.o2p-step") as timer:
            changed = self._stepper.step(query)
        self.optimization_time += timer.wall
        if not changed:
            return None
        return Reorganization(self._stepper.layout(), reason="o2p-split")


class ReorgEveryQueryPolicy(OnlinePolicy):
    """Degenerate upper baseline: re-optimise the window after every arrival.

    Whatever the offline algorithm returns for the current sliding window is
    deployed immediately — every layout change pays a full re-organisation,
    and the optimisation runs whether or not anything changed.
    """

    name = "reorg-every-query"

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        algorithm: str = "hillclimb",
        window: int = 64,
        algorithm_options: Optional[Mapping[str, object]] = None,
    ) -> None:
        super().__init__()
        self.cost_model = cost_model if cost_model is not None else HDDCostModel()
        self.algorithm = algorithm
        self.window = window
        self.algorithm_options = dict(algorithm_options or {})
        self._stats: Optional[SlidingWindowStats] = None

    def start(self, schema: TableSchema) -> Partitioning:
        self._stats = SlidingWindowStats(schema, self.window)
        self.optimization_time = 0.0
        return row_partitioning(schema)

    def on_query(self, arrival: int, query: ResolvedQuery) -> Optional[Reorganization]:
        self._stats.observe(query)
        algorithm = get_algorithm(self.algorithm, **self.algorithm_options)
        result = algorithm.run(self._stats.as_workload(), self.cost_model)
        self.optimization_time += result.optimization_time
        return Reorganization(result.partitioning, reason="recompute")


# -- the adaptive controller ------------------------------------------------------


class AdaptiveAdvisor(OnlinePolicy):
    """Drift-triggered, pay-off-gated adaptive re-partitioning.

    Per arrival the controller folds the query into its windowed statistics
    (O(footprint²) incremental work, see :mod:`repro.online.stats`) and asks
    the drift detector whether a check is due; only when the detector fires
    does it run the configured offline algorithm on the window.  Even then
    it re-partitions only if the candidate's projected pay-off clears the
    budget: the invested time (optimisation + physical creation) must be
    recovered within ``payoff_limit`` executions of the current window's
    workload, measured by :func:`repro.metrics.payoff.payoff_fraction`.

    Parameters
    ----------
    cost_model:
        Model used for windowed costing and by the offline algorithm.
    algorithm:
        Registry name of the offline algorithm run on trigger (default
        ``"hillclimb"``, the paper's quality/effort sweet spot).
    algorithm_options:
        Constructor keyword arguments for that algorithm.
    window:
        Sliding window size when no ``stats`` object is supplied.
    stats:
        Optional pre-built statistics object (e.g. a
        :class:`~repro.online.stats.DecayedStats`); defaults to a fresh
        :class:`~repro.online.stats.SlidingWindowStats` per stream.
    detector:
        Optional pre-built :class:`~repro.online.drift.CostRegretDetector`;
        the default fires at regret > 0.75, warms up for a quarter window
        and cools down for an eighth of a window after every considered
        trigger (long cooldowns make the controller slow to finish adapting
        across a phase boundary, where the first re-organisation is computed
        from a still-mixed window).
    payoff_limit:
        Maximum acceptable pay-off fraction, in executions of the windowed
        workload (2.0 = the investment must amortise within two executions
        of the window's queries).
    """

    name = "adaptive"

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        algorithm: str = "hillclimb",
        algorithm_options: Optional[Mapping[str, object]] = None,
        window: int = 32,
        stats: Optional[WorkloadStatistics] = None,
        detector: Optional[CostRegretDetector] = None,
        payoff_limit: float = 2.0,
    ) -> None:
        super().__init__()
        if payoff_limit <= 0:
            raise ValueError("payoff_limit must be positive")
        self.cost_model = cost_model if cost_model is not None else HDDCostModel()
        self.algorithm = algorithm
        self.algorithm_options = dict(algorithm_options or {})
        self.window = window
        self.payoff_limit = payoff_limit
        self._initial_stats = stats
        self._initial_detector = detector
        self._started = False
        self.stats: Optional[WorkloadStatistics] = None
        self.detector: Optional[CostRegretDetector] = None
        self._evaluator: Optional[CostEvaluator] = None
        self._deployed_masks: List[int] = []
        # Diagnostics.
        self.checks = 0
        self.triggers = 0
        self.rejected = 0

    def start(self, schema: TableSchema) -> Partitioning:
        # A user-supplied stats/detector object carries state that cannot be
        # reset generically; it is valid for exactly one stream.
        if self._started and (
            self._initial_stats is not None or self._initial_detector is not None
        ):
            raise ValueError(
                "this AdaptiveAdvisor was built around a user-supplied stats/"
                "detector object and has already served a stream; construct a "
                "fresh policy (or omit stats/detector to make it reusable)"
            )
        self._started = True
        self.stats = (
            self._initial_stats
            if self._initial_stats is not None
            else SlidingWindowStats(schema, self.window)
        )
        self.detector = (
            self._initial_detector
            if self._initial_detector is not None
            else CostRegretDetector(
                self.cost_model,
                threshold=0.75,
                min_arrivals=max(4, self.window // 4),
                cooldown=max(2, self.window // 8),
            )
        )
        self._evaluator = CostEvaluator(
            Workload(schema, [], name="adaptive-window"), self.cost_model
        )
        self.optimization_time = 0.0
        self.checks = 0
        self.triggers = 0
        self.rejected = 0
        layout = row_partitioning(schema)
        self._deployed_masks = layout.as_masks()
        return layout

    def on_query(self, arrival: int, query: ResolvedQuery) -> Optional[Reorganization]:
        self.stats.observe(query)
        if not self.detector.should_check(self.stats):
            return None
        self.checks += 1
        _ONLINE_CHECKS.value += 1
        window_workload = self.stats.as_workload()
        evaluator = self._evaluator.rebind(window_workload)
        decision = self.detector.check(self.stats, self._deployed_masks, evaluator)
        if not decision.fired:
            return None
        self.triggers += 1
        _ONLINE_TRIGGERS.value += 1

        with timed("online.optimize", algorithm=self.algorithm) as timer:
            algorithm = get_algorithm(self.algorithm, **self.algorithm_options)
            result = algorithm.run(window_workload, self.cost_model)
        self.optimization_time += timer.wall

        candidate = result.partitioning
        candidate_masks = candidate.as_masks()
        candidate_cost = evaluator.evaluate(candidate_masks)
        creation_time = estimate_creation_time(
            candidate, getattr(self.cost_model, "disk", DEFAULT_DISK)
        )
        payoff = payoff_fraction(
            result.optimization_time,
            creation_time,
            decision.deployed_cost,
            candidate_cost,
        )
        # The pay-off gate: a re-organisation is taken only when it improves
        # the windowed cost and amortises within the budget.  Rejected
        # triggers still start the detector's cooldown, so a stubbornly
        # expensive-but-unimprovable window does not re-run the offline
        # algorithm on every arrival.
        if (
            candidate_masks != self._deployed_masks
            and candidate_cost < decision.deployed_cost
            and 0.0 <= payoff <= self.payoff_limit
        ):
            self._deployed_masks = candidate_masks
            self.detector.notify_reorganized(self.stats.arrivals)
            _ONLINE_REORGS.value += 1
            _obs_event(
                "online.reorg",
                arrival=arrival,
                regret=decision.regret,
                payoff=payoff,
                partitions=candidate.partition_count,
            )
            return Reorganization(
                candidate,
                reason=(
                    f"regret {decision.regret:.2f}, "
                    f"payoff {payoff:.2f} window-executions"
                ),
            )
        self.rejected += 1
        _ONLINE_REJECTED.value += 1
        self.detector.notify_reorganized(self.stats.arrivals)
        return None
