"""Bond Energy Algorithm (BEA).

McCormick, Schweitzer & White (1972) proposed the Bond Energy Algorithm to
reorder the rows/columns of a matrix so that large values cluster together.
Navathe et al. use it to cluster the attribute affinity matrix before
splitting the clustered order into vertical partitions; O2P adapts the same
algorithm to an online setting.

The algorithm places attributes one at a time: each new attribute is inserted
at the position (among all gaps in the current order) that maximises the
*contribution* — the bond it forms with its new neighbours minus the bond the
neighbours lose by being separated:

``cont(l, k, r) = 2 * bond(l, k) + 2 * bond(k, r) - 2 * bond(l, r)``

where ``bond(i, j) = Σ_a aff(a, i) * aff(a, j)`` and a virtual attribute 0
with zero affinity sits at both ends of the order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def _bond(affinity: np.ndarray, left: Optional[int], right: Optional[int]) -> float:
    """Bond between two columns of the affinity matrix; 0 at the borders."""
    if left is None or right is None:
        return 0.0
    return float(affinity[:, left] @ affinity[:, right])


def _contribution(
    affinity: np.ndarray,
    left: Optional[int],
    middle: int,
    right: Optional[int],
) -> float:
    """Net bond-energy gain of placing ``middle`` between ``left`` and ``right``."""
    return (
        2.0 * _bond(affinity, left, middle)
        + 2.0 * _bond(affinity, middle, right)
        - 2.0 * _bond(affinity, left, right)
    )


def bond_energy_order(
    affinity: np.ndarray, initial: Optional[Sequence[int]] = None
) -> List[int]:
    """Clustered attribute order produced by the Bond Energy Algorithm.

    Parameters
    ----------
    affinity:
        Square attribute affinity matrix.
    initial:
        Optional seed order of attribute indices to start from (O2P appends
        to an existing clustered order); defaults to the first two attributes
        in index order.

    Returns
    -------
    list of int
        A permutation of ``range(n)`` with high-affinity attributes adjacent.
    """
    affinity = np.asarray(affinity, dtype=float)
    if affinity.ndim != 2 or affinity.shape[0] != affinity.shape[1]:
        raise ValueError("affinity must be a square matrix")
    n = affinity.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [0]

    if initial is not None:
        order = list(initial)
        if len(set(order)) != len(order):
            raise ValueError("initial order contains duplicates")
        if any(not 0 <= index < n for index in order):
            raise ValueError("initial order references unknown attribute indices")
    else:
        order = [0, 1] if n >= 2 else [0]

    remaining = [index for index in range(n) if index not in set(order)]
    for attribute in remaining:
        best_position = 0
        best_contribution = -np.inf
        # Try every insertion gap, including both ends.
        for position in range(len(order) + 1):
            left = order[position - 1] if position > 0 else None
            right = order[position] if position < len(order) else None
            contribution = _contribution(affinity, left, attribute, right)
            if contribution > best_contribution:
                best_contribution = contribution
                best_position = position
        order.insert(best_position, attribute)
    return order


def bond_energy_score(affinity: np.ndarray, order: Sequence[int]) -> float:
    """Total bond energy of an ordering (sum of bonds between adjacent columns).

    Higher is better; used by tests to check that the BEA ordering is at least
    as good as the identity ordering on clustered inputs.
    """
    affinity = np.asarray(affinity, dtype=float)
    score = 0.0
    for left, right in zip(order, list(order)[1:]):
        score += _bond(affinity, left, right)
    return score
