"""K-way graph partitioning for HYRISE.

HYRISE builds an affinity graph over the primary partitions (nodes = primary
partitions, edge weights = co-access frequency) and splits it into subgraphs
of at most ``K`` nodes so that each sub-problem stays small enough for
candidate merging.  The original paper uses a general k-way partitioner; we
implement a greedy multi-constraint partitioner followed by Kernighan–Lin
style refinement, which is entirely sufficient for the graph sizes that occur
here (one node per primary partition — at most a handful per TPC-H table).

The partitioner maximises the total weight of edges *inside* subgraphs (it
never helps HYRISE to separate strongly co-accessed primary partitions),
subject to every subgraph holding at most ``max_nodes_per_part`` nodes.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


def _edge_weight(weights: Mapping[Edge, float], a: Node, b: Node) -> float:
    if (a, b) in weights:
        return weights[(a, b)]
    if (b, a) in weights:
        return weights[(b, a)]
    return 0.0


def _internal_weight(
    groups: Sequence[Set[Node]], weights: Mapping[Edge, float]
) -> float:
    total = 0.0
    for group in groups:
        members = list(group)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                total += _edge_weight(weights, a, b)
    return total


def kway_partition(
    nodes: Sequence[Node],
    edge_weights: Mapping[Edge, float],
    max_nodes_per_part: int,
    refinement_passes: int = 4,
) -> List[Set[Node]]:
    """Split ``nodes`` into groups of at most ``max_nodes_per_part`` nodes.

    Parameters
    ----------
    nodes:
        The graph's nodes (hashable, order defines tie-breaking).
    edge_weights:
        Mapping from node pairs to non-negative co-access weights; missing
        pairs have weight zero.  Direction is ignored.
    max_nodes_per_part:
        Capacity K of each subgraph.
    refinement_passes:
        Number of Kernighan–Lin style improvement sweeps after the greedy
        assignment.

    Returns
    -------
    list of set
        Disjoint groups covering every node, each of size ≤ K, ordered by
        their smallest node (deterministic).
    """
    if max_nodes_per_part < 1:
        raise ValueError("max_nodes_per_part must be >= 1")
    node_list = list(nodes)
    if not node_list:
        return []
    if max_nodes_per_part >= len(node_list):
        return [set(node_list)]

    group_count = -(-len(node_list) // max_nodes_per_part)  # ceil division
    groups: List[Set[Node]] = [set() for _ in range(group_count)]

    # Greedy seeding: place nodes in descending order of total incident weight,
    # each into the non-full group with which it has the strongest connection.
    def incident_weight(node: Node) -> float:
        return sum(
            _edge_weight(edge_weights, node, other)
            for other in node_list
            if other != node
        )

    ordered = sorted(node_list, key=lambda n: (-incident_weight(n), str(n)))
    for node in ordered:
        best_group = None
        best_gain = -1.0
        for group in groups:
            if len(group) >= max_nodes_per_part:
                continue
            gain = sum(_edge_weight(edge_weights, node, member) for member in group)
            if gain > best_gain:
                best_gain = gain
                best_group = group
        assert best_group is not None  # capacity guarantees a free group exists
        best_group.add(node)

    # Kernighan-Lin style refinement: try swapping node pairs across groups and
    # moving single nodes into groups with spare capacity while it improves the
    # total internal weight.
    for _ in range(max(0, refinement_passes)):
        improved = False
        current = _internal_weight(groups, edge_weights)
        for gi in range(len(groups)):
            for gj in range(gi + 1, len(groups)):
                # Single-node moves.
                for source, target in ((gi, gj), (gj, gi)):
                    for node in list(groups[source]):
                        if len(groups[target]) >= max_nodes_per_part:
                            break
                        if len(groups[source]) == 1:
                            continue
                        groups[source].discard(node)
                        groups[target].add(node)
                        candidate = _internal_weight(groups, edge_weights)
                        if candidate > current:
                            current = candidate
                            improved = True
                        else:
                            groups[target].discard(node)
                            groups[source].add(node)
                # Pairwise swaps (sizes stay unchanged).
                for node_a in list(groups[gi]):
                    if node_a not in groups[gi]:
                        continue  # already swapped away in this pass
                    for node_b in list(groups[gj]):
                        if node_b not in groups[gj]:
                            continue
                        groups[gi].discard(node_a)
                        groups[gj].discard(node_b)
                        groups[gi].add(node_b)
                        groups[gj].add(node_a)
                        candidate = _internal_weight(groups, edge_weights)
                        if candidate > current:
                            current = candidate
                            improved = True
                            # node_a now lives in the other group; stop trying
                            # to swap it again from its old home.
                            break
                        groups[gi].discard(node_b)
                        groups[gj].discard(node_a)
                        groups[gi].add(node_a)
                        groups[gj].add(node_b)
        if not improved:
            break

    groups = [group for group in groups if group]
    return sorted(groups, key=lambda group: min(str(node) for node in group))
