"""Support algorithms shared by the partitioning algorithms.

* :mod:`repro.algorithms.support.bond_energy` — the Bond Energy Algorithm
  used by Navathe and O2P to cluster the attribute affinity matrix.
* :mod:`repro.algorithms.support.enumeration` — set-partition enumeration
  (restricted growth strings), Bell and Stirling numbers, used by brute force
  and by the paper's complexity discussion.
* :mod:`repro.algorithms.support.graph_partition` — a Kernighan–Lin style
  k-way graph partitioner used by HYRISE.
* :mod:`repro.algorithms.support.knapsack` — 0/1 knapsack used by Trojan to
  assemble a complete, disjoint layout from interesting column groups.
* :mod:`repro.algorithms.support.interestingness` — the mutual-information
  based column-group interestingness measure used by Trojan.
"""

from repro.algorithms.support.bond_energy import bond_energy_order, bond_energy_score
from repro.algorithms.support.enumeration import (
    bell_number,
    set_partitions,
    stirling_second,
)
from repro.algorithms.support.graph_partition import kway_partition
from repro.algorithms.support.knapsack import solve_knapsack
from repro.algorithms.support.interestingness import (
    column_group_interestingness,
    mutual_information,
)

__all__ = [
    "bond_energy_order",
    "bond_energy_score",
    "bell_number",
    "stirling_second",
    "set_partitions",
    "kway_partition",
    "solve_knapsack",
    "column_group_interestingness",
    "mutual_information",
]
