"""Column-group interestingness for the Trojan layouts algorithm.

Trojan prunes the exponential set of column groups with an *interestingness*
measure based on the mutual information between the attributes of a group over
the query-access distribution: a group is interesting if knowing that a query
accesses one of its attributes tells you a lot about whether it accesses the
others, i.e. the attributes tend to be co-accessed.

We treat each attribute ``a`` as a binary random variable ``X_a`` over the
(weighted) queries — ``X_a = 1`` iff the query references ``a`` — and define
the interestingness of a column group ``G`` as the average normalised mutual
information over its attribute pairs:

``I(G) = mean_{a != b in G}  NMI(X_a, X_b)``,   ``I({a}) = 1``

where ``NMI(X, Y) = MI(X, Y) / max(H(X), H(Y))`` (0 when either entropy is 0,
but 1 when the two attributes have identical access patterns).  Groups whose
interestingness falls below the threshold are pruned.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, Sequence

import numpy as np

from repro.workload.workload import Workload


def _entropy(probability: float) -> float:
    """Binary entropy in nats; 0 for degenerate probabilities."""
    if probability <= 0.0 or probability >= 1.0:
        return 0.0
    return -(
        probability * math.log(probability)
        + (1.0 - probability) * math.log(1.0 - probability)
    )


def mutual_information(workload: Workload, attr_a: int, attr_b: int) -> float:
    """Mutual information (nats) between two attributes' access indicators."""
    weights = workload.weights()
    total = float(weights.sum())
    if total <= 0.0:
        return 0.0
    usage = workload.usage_matrix()
    a = usage[:, attr_a].astype(bool)
    b = usage[:, attr_b].astype(bool)

    def probability(mask: np.ndarray) -> float:
        return float(weights[mask].sum()) / total

    mi = 0.0
    p_a1 = probability(a)
    p_b1 = probability(b)
    marginals_a = {True: p_a1, False: 1.0 - p_a1}
    marginals_b = {True: p_b1, False: 1.0 - p_b1}
    for value_a in (False, True):
        for value_b in (False, True):
            joint = probability((a == value_a) & (b == value_b))
            if joint <= 0.0:
                continue
            denominator = marginals_a[value_a] * marginals_b[value_b]
            if denominator <= 0.0:
                continue
            mi += joint * math.log(joint / denominator)
    return max(0.0, mi)


def normalized_mutual_information(workload: Workload, attr_a: int, attr_b: int) -> float:
    """MI normalised to [0, 1] by the larger marginal entropy.

    Two refinements make the raw information measure suitable for *column
    grouping*:

    * attributes with identical access patterns score 1 even when their
      entropy is zero (always co-accessed is maximally interesting), and
    * negatively associated attributes (accessed *instead of* each other more
      often than chance) score 0 — information about mutual exclusion is high
      MI but a terrible reason to co-locate two columns.
    """
    weights = workload.weights()
    total = float(weights.sum())
    usage = workload.usage_matrix()
    a = usage[:, attr_a].astype(bool)
    b = usage[:, attr_b].astype(bool)
    if np.array_equal(a, b):
        return 1.0
    if total <= 0.0:
        return 0.0
    p_a = float(weights[a].sum()) / total
    p_b = float(weights[b].sum()) / total
    p_both = float(weights[a & b].sum()) / total
    if p_both < p_a * p_b:
        return 0.0
    normaliser = max(_entropy(p_a), _entropy(p_b))
    if normaliser <= 0.0:
        return 0.0
    return min(1.0, mutual_information(workload, attr_a, attr_b) / normaliser)


def column_group_interestingness(
    workload: Workload, attributes: Iterable[int]
) -> float:
    """Interestingness of a column group: mean pairwise normalised MI."""
    group = sorted(set(attributes))
    if not group:
        raise ValueError("a column group must contain at least one attribute")
    if len(group) == 1:
        return 1.0
    scores = []
    for position, attr_a in enumerate(group):
        for attr_b in group[position + 1:]:
            scores.append(normalized_mutual_information(workload, attr_a, attr_b))
    return float(np.mean(scores))
