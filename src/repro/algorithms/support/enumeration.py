"""Set-partition enumeration and the associated counting functions.

The brute force algorithm enumerates every possible vertical partitioning of a
table's attribute set, i.e. every *set partition*.  The number of set
partitions of an ``n``-element set is the Bell number ``B_n`` (4140 for the
8-attribute TPC-H customer table, ~10.5 million for the 16-attribute Lineitem
table — the numbers quoted in the paper).  Stirling numbers of the second kind
count partitions with exactly ``k`` blocks.

Enumeration uses restricted growth strings (RGS): a sequence ``a_1..a_n`` with
``a_1 = 0`` and ``a_{i+1} <= max(a_1..a_i) + 1``; each RGS corresponds to
exactly one set partition, so enumeration is both exhaustive and duplicate
free.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple


@lru_cache(maxsize=None)
def stirling_second(n: int, k: int) -> int:
    """Stirling number of the second kind: partitions of n items into k blocks."""
    if n < 0 or k < 0:
        raise ValueError("n and k must be non-negative")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return k * stirling_second(n - 1, k) + stirling_second(n - 1, k - 1)


def bell_number(n: int) -> int:
    """Bell number B_n: the number of set partitions of an n-element set."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return sum(stirling_second(n, k) for k in range(n + 1)) if n else 1


def restricted_growth_strings(n: int) -> Iterator[Tuple[int, ...]]:
    """Yield every restricted growth string of length ``n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        yield ()
        return

    assignment = [0] * n
    maxima = [0] * n

    while True:
        yield tuple(assignment)
        # Find the rightmost position that can be incremented.
        position = n - 1
        while position > 0 and assignment[position] >= maxima[position - 1] + 1:
            position -= 1
        if position == 0:
            return
        assignment[position] += 1
        maxima[position] = max(maxima[position - 1], assignment[position])
        for tail in range(position + 1, n):
            assignment[tail] = 0
            maxima[tail] = maxima[position]


def set_partitions(items: Sequence[int]) -> Iterator[List[List[int]]]:
    """Yield every set partition of ``items`` as a list of blocks.

    Blocks preserve the input order of items; the number of partitions yielded
    equals ``bell_number(len(items))``.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        yield []
        return
    for rgs in restricted_growth_strings(n):
        block_count = max(rgs) + 1
        blocks: List[List[int]] = [[] for _ in range(block_count)]
        for item, block_index in zip(items, rgs):
            blocks[block_index].append(item)
        yield blocks


def count_set_partitions(n: int) -> int:
    """Alias of :func:`bell_number`, named for readability at call sites."""
    return bell_number(n)
