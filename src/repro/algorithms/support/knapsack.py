"""0/1 knapsack solver used by the Trojan layouts algorithm.

Trojan maps the final column-group selection to a 0/1 knapsack problem: from
the set of interesting column groups, pick a subset that (a) does not contain
any attribute twice and (b) maximises total benefit.  Because items here
conflict through *shared attributes* rather than through a single scalar
capacity, the solver below is a branch-and-bound over items with an
attribute-disjointness constraint — exact for the candidate-set sizes that
survive interestingness pruning, and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate column group with its benefit (higher is better)."""

    attributes: FrozenSet[int]
    benefit: float

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a knapsack item must cover at least one attribute")


def solve_knapsack(
    items: Sequence[KnapsackItem],
    max_items: Optional[int] = None,
) -> List[KnapsackItem]:
    """Select a maximum-benefit subset of attribute-disjoint items.

    Parameters
    ----------
    items:
        Candidate column groups with benefits.
    max_items:
        Optional cap on the number of selected groups.

    Returns
    -------
    list of KnapsackItem
        The chosen items, in the order they appear in ``items``.  Ties are
        broken towards fewer items, then towards earlier items, so results
        are deterministic.
    """
    ordered = sorted(
        range(len(items)),
        key=lambda index: (-items[index].benefit, len(items[index].attributes), index),
    )
    limit = len(items) if max_items is None else max(0, max_items)

    best_benefit = float("-inf")
    best_choice: Tuple[int, ...] = ()

    # Suffix sums of benefits for bounding.
    suffix_benefit = [0.0] * (len(ordered) + 1)
    for position in range(len(ordered) - 1, -1, -1):
        suffix_benefit[position] = (
            suffix_benefit[position + 1] + max(0.0, items[ordered[position]].benefit)
        )

    def branch(
        position: int,
        used_attributes: FrozenSet[int],
        chosen: Tuple[int, ...],
        benefit: float,
    ) -> None:
        nonlocal best_benefit, best_choice
        if benefit > best_benefit or (
            benefit == best_benefit and len(chosen) < len(best_choice)
        ):
            best_benefit = benefit
            best_choice = chosen
        if position >= len(ordered) or len(chosen) >= limit:
            return
        # Bound: even taking every remaining positive-benefit item cannot beat
        # the incumbent.
        if benefit + suffix_benefit[position] <= best_benefit:
            return
        index = ordered[position]
        item = items[index]
        if not used_attributes & item.attributes:
            branch(
                position + 1,
                used_attributes | item.attributes,
                chosen + (index,),
                benefit + item.benefit,
            )
        branch(position + 1, used_attributes, chosen, benefit)

    branch(0, frozenset(), (), 0.0)
    selected_indices = sorted(best_choice)
    return [items[index] for index in selected_indices]
