"""AutoPart (Papadomanolakis & Ailamaki, SSDBM 2004).

AutoPart is a bottom-up algorithm originally designed for large scientific
datasets.  Its starting point is the set of *atomic fragments* (the paper's
primary partitions): maximal groups of attributes that are always accessed
together, i.e. no query references a strict subset of the group.  In each
iteration the current fragments are extended by combining them pairwise —
either with an atomic fragment or with a fragment from the previous iteration
— and the combination with the best improvement in estimated workload cost is
kept.  The process repeats until no combination improves the cost.

The original algorithm also creates *overlapping* fragments (partial attribute
replication).  The paper's unified setting forbids replication, so — exactly
as the authors did — combinations here are disjoint merges, which makes
AutoPart behave like HillClimb seeded with atomic fragments instead of single
columns.  On TPC-H both find the brute-force-optimal layouts.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partition, Partitioning, merge_group_pair
from repro.cost.base import CostModel
from repro.cost.evaluator import CostEvaluator
from repro.workload.workload import Workload


@register_algorithm("autopart")
class AutoPartAlgorithm(PartitioningAlgorithm):
    """Bottom-up merging of atomic fragments."""

    name = "autopart"
    search_strategy = "bottom-up"
    starting_point = "whole-workload"
    candidate_pruning = "none"

    def __init__(self, naive_costing: bool = False) -> None:
        self.naive_costing = naive_costing
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Merge atomic fragments pairwise while the estimated cost improves."""
        schema = workload.schema
        atomic_fragments = workload.primary_partitions()
        fragments: List[FrozenSet[int]] = list(atomic_fragments)
        evaluator = CostEvaluator(workload, cost_model, naive=self.naive_costing)
        current_cost = evaluator.evaluate(fragments)
        iterations = 0
        merges = 0

        while len(fragments) > 1:
            iterations += 1
            best_pair: Optional[Tuple[int, int]] = None
            best_cost = current_cost
            # Candidate extensions: any current fragment combined with an atomic
            # fragment or with another current fragment.  Without replication
            # both cases reduce to merging two of the current disjoint
            # fragments, so the pairwise scan below covers the candidate set.
            for a, b in combinations(range(len(fragments)), 2):
                candidate_cost = evaluator.evaluate_merge(fragments, a, b)
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_pair = (a, b)
            if best_pair is None:
                break
            fragments = self._merge(fragments, best_pair[0], best_pair[1])
            current_cost = best_cost
            merges += 1

        self._metadata = {
            "atomic_fragments": [sorted(fragment) for fragment in atomic_fragments],
            "iterations": iterations,
            "merges": merges,
            "final_cost": current_cost,
            "candidate_evaluations": evaluator.evaluations,
        }
        return Partitioning(schema, [Partition(fragment) for fragment in fragments])

    @staticmethod
    def _merge(
        fragments: Sequence[FrozenSet[int]], a: int, b: int
    ) -> List[FrozenSet[int]]:
        """A new fragment list with positions ``a``/``b`` replaced by their union."""
        return merge_group_pair(fragments, a, b)

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)
