"""Brute force: exhaustive enumeration of every possible vertical partitioning.

The number of candidate layouts for an ``n``-attribute table is the Bell
number ``B_n`` — 4140 for the 8-attribute TPC-H customer table (the number
quoted in the paper) and over 10 billion for the 16-attribute Lineitem table.
Brute force evaluates the workload cost of each candidate and keeps
the cheapest; it is the optimality reference the paper measures every
heuristic against (Figure 3, "BruteForce").

Primary-partition reduction
---------------------------

By default the enumeration runs over the workload's *primary partitions*
(maximal attribute groups referenced by exactly the same queries) instead of
over raw attributes.  Splitting a primary partition is never useful at the
level of logical bytes: every query that reads one of its attributes reads all
of them, so a split only adds partitions to co-read (more seeks) while the
scanned bytes stay identical.  Collapsing them shrinks the search space
considerably (Lineitem: 16 attributes -> 13 primary partitions) and finds the
optimal layout up to block-rounding effects — a split group can occasionally
pack disk blocks or the shared I/O buffer marginally better, so the collapsed
search is an extremely tight approximation rather than a strict optimum.  Set
``collapse_primary_partitions=False`` for the exact enumeration over raw
attributes (the property-based tests use that mode as the true lower bound).

Because the search space still explodes, the implementation refuses inputs
whose enumeration units exceed ``max_attributes`` (default 12, i.e. about 4.2
million candidates) unless the caller explicitly raises the limit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.algorithms.support.enumeration import bell_number, set_partitions
from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partitioning, mask_of
from repro.cost.base import CostModel
from repro.cost.evaluator import CostEvaluator
from repro.workload.workload import Workload


class BruteForceSearchSpaceError(ValueError):
    """Raised when the table is too wide for exhaustive enumeration."""


@register_algorithm("brute-force")
class BruteForceAlgorithm(PartitioningAlgorithm):
    """Optimal (and exponentially slow) vertical partitioning by enumeration."""

    name = "brute-force"
    search_strategy = "brute-force"
    starting_point = "whole-workload"
    candidate_pruning = "none"

    def __init__(
        self,
        max_attributes: int = 12,
        collapse_primary_partitions: bool = True,
    ) -> None:
        if max_attributes < 1:
            raise ValueError("max_attributes must be >= 1")
        self.max_attributes = max_attributes
        self.collapse_primary_partitions = collapse_primary_partitions
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Evaluate every set partition of the enumeration units; return the cheapest."""
        schema = workload.schema
        if self.collapse_primary_partitions:
            units: List[FrozenSet[int]] = workload.primary_partitions()
        else:
            units = [frozenset([index]) for index in range(schema.attribute_count)]

        if len(units) > self.max_attributes:
            raise BruteForceSearchSpaceError(
                f"table {schema.name!r} has {len(units)} enumeration units; brute "
                f"force would need to evaluate {bell_number(len(units)):,} layouts "
                f"(limit: {self.max_attributes}). Raise max_attributes explicitly "
                f"to override."
            )

        # Candidates are costed as bitmask layouts through the memoized
        # CostEvaluator; a real Partitioning is built only for the winner.
        evaluator = CostEvaluator(workload, cost_model)
        unit_masks = [mask_of(unit) for unit in units]
        best_masks: Optional[List[int]] = None
        best_cost = float("inf")
        evaluated = 0
        for blocks in set_partitions(range(len(units))):
            candidate_masks = []
            for block in blocks:
                mask = 0
                for index in block:
                    mask |= unit_masks[index]
                candidate_masks.append(mask)
            cost = evaluator.evaluate(candidate_masks)
            evaluated += 1
            if cost < best_cost:
                best_cost = cost
                best_masks = candidate_masks
        assert best_masks is not None  # at least one unit guarantees a candidate
        self._metadata = {
            "candidates_evaluated": evaluated,
            "enumeration_units": len(units),
            "bell_number_attributes": bell_number(schema.attribute_count),
            "bell_number_units": bell_number(len(units)),
            "collapsed_primary_partitions": self.collapse_primary_partitions,
            "best_cost": best_cost,
            "candidate_evaluations": evaluator.evaluations,
        }
        return Partitioning.from_masks(schema, best_masks, validate=False)

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)
