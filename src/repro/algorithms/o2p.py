"""O2P — One-dimensional Online Partitioning (Jindal & Dittrich, BIRTE 2011).

O2P turns Navathe's algorithm into an online one: the affinity matrix and its
bond-energy clustering are maintained incrementally as queries arrive, and the
partitioning analysis is amortised over the workload — in each step O2P
greedily creates at most *one* new split (it never revisits earlier splits)
and uses dynamic programming to remember the z-gains of the split points it
did not choose, so the per-query work stays tiny.  This makes O2P by far the
fastest algorithm in the paper's Figure 1 while producing layouts of roughly
Navathe quality (both are clearly worse than the HillClimb class, and worse
than a plain column layout on the full TPC-H workload).

Faithful to the original, the split decision uses Navathe's affinity objective
``z = CTQ * CBQ - COQ**2`` computed from the affinity matrix's block sums (see
:func:`repro.algorithms.navathe.affinity_split_gain`); the I/O cost model is
only used by the surrounding framework to *evaluate* the resulting layout.

Unified-setting replay: the offline workload is fed to the algorithm query by
query in workload order; the layout reached after the last query is returned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.algorithms.navathe import affinity_split_gain
from repro.algorithms.support.bond_energy import bond_energy_order
from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partition, Partitioning, mask_of
from repro.cost.base import CostModel
from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload


@register_algorithm("o2p")
class O2PAlgorithm(PartitioningAlgorithm):
    """Online top-down partitioner: one greedy split per incoming query."""

    name = "o2p"
    search_strategy = "top-down"
    starting_point = "whole-workload"
    candidate_pruning = "none"

    def __init__(
        self,
        max_splits_per_step: int = 1,
        reorder_until_first_split: bool = True,
    ) -> None:
        if max_splits_per_step < 1:
            raise ValueError("max_splits_per_step must be >= 1")
        self.max_splits_per_step = max_splits_per_step
        self.reorder_until_first_split = reorder_until_first_split
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Replay the workload online and return the final layout."""
        schema = workload.schema
        n = schema.attribute_count
        affinity = np.zeros((n, n), dtype=float)
        order: List[int] = list(range(n))
        split_points: Set[int] = set()
        # Dynamic programming memo: z-gain of each candidate split position
        # under the current affinity matrix.  New queries invalidate only the
        # positions whose surrounding segment they touch; applying a split
        # invalidates the positions of the segment that was split.
        gain_memo: Dict[int, float] = {}
        total_splits = 0
        steps = 0

        for query in workload:
            steps += 1
            self._update_affinity(affinity, query)

            # Incremental clustering: keep re-clustering while the table is
            # still physically one piece; once data has been split, an online
            # system no longer reshuffles the stored attribute order.
            if not split_points and self.reorder_until_first_split:
                new_order = bond_energy_order(affinity)
                if new_order != order:
                    order = new_order
                    gain_memo.clear()

            gain_memo = self._refresh_gains(
                order, split_points, affinity, gain_memo, touched=query.index_mask
            )

            for _ in range(self.max_splits_per_step):
                position = self._best_split(gain_memo, split_points)
                if position is None:
                    break
                # Gains of positions inside the segment being split were
                # computed against that (now obsolete) segment; drop them so
                # they are recomputed next step.  The membership test must use
                # the boundaries *before* the new split is added.
                old_boundaries = set(split_points)
                split_points.add(position)
                total_splits += 1
                gain_memo = {
                    pos: gain
                    for pos, gain in gain_memo.items()
                    if not self._same_segment(pos, position, old_boundaries)
                }

        self._metadata = {
            "steps": steps,
            "splits": total_splits,
            "final_order": list(order),
            "split_points": sorted(split_points),
        }
        return self._layout(schema, order, split_points)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _update_affinity(affinity: np.ndarray, query: ResolvedQuery) -> None:
        """Add one query's co-access counts to the affinity matrix in place."""
        indices = list(query.attribute_indices)
        for i in indices:
            for j in indices:
                affinity[i, j] += query.weight

    def _refresh_gains(
        self,
        order: Sequence[int],
        split_points: Set[int],
        affinity: np.ndarray,
        memo: Dict[int, float],
        touched: int,
    ) -> Dict[int, float]:
        """Recompute z-gains for candidate positions affected by the new query.

        ``touched`` is the new query's attribute bitmask.  Positions whose
        surrounding segment contains none of the attributes the new query
        touches keep their memoised gain (the new query cannot change the
        affinity block sums of that segment).
        """
        refreshed: Dict[int, float] = {}
        for position in range(1, len(order)):
            if position in split_points:
                continue
            segment, start = self._segment_of(position, split_points, order)
            if position in memo and not mask_of(segment) & touched:
                refreshed[position] = memo[position]
                continue
            local_split = position - start
            refreshed[position] = affinity_split_gain(
                affinity, segment[:local_split], segment[local_split:]
            )
        return refreshed

    @staticmethod
    def _best_split(gain_memo: Dict[int, float], split_points: Set[int]) -> Optional[int]:
        """The candidate position with the largest strictly positive z-gain."""
        best_position = None
        best_gain = 0.0
        for position, gain in gain_memo.items():
            if position in split_points:
                continue
            if gain > best_gain:
                best_gain = gain
                best_position = position
        return best_position

    @staticmethod
    def _segment_of(
        position: int, split_points: Set[int], order: Sequence[int]
    ) -> Tuple[List[int], int]:
        """The contiguous segment of ``order`` containing gap ``position``.

        Returns the segment's attributes and its start offset in ``order``.
        """
        boundaries = sorted(split_points)
        start = 0
        end = len(order)
        for boundary in boundaries:
            if boundary <= position:
                start = boundary
            else:
                end = boundary
                break
        return list(order[start:end]), start

    @staticmethod
    def _same_segment(position: int, other: int, split_points: Set[int]) -> bool:
        """True if two gap positions fall inside the same current segment."""
        boundaries = sorted(split_points)

        def segment_index(pos: int) -> int:
            index = 0
            for boundary in boundaries:
                if boundary <= pos:
                    index += 1
            return index

        return segment_index(position) == segment_index(other)

    @staticmethod
    def _layout(schema, order: Sequence[int], split_points: Set[int]) -> Partitioning:
        """Materialise the partitioning defined by an order plus split points."""
        boundaries = sorted(split_points)
        segments: List[List[int]] = []
        start = 0
        for boundary in boundaries:
            segments.append(list(order[start:boundary]))
            start = boundary
        segments.append(list(order[start:]))
        segments = [segment for segment in segments if segment]
        return Partitioning(
            schema, [Partition(segment) for segment in segments], validate=False
        )

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)
