"""O2P — One-dimensional Online Partitioning (Jindal & Dittrich, BIRTE 2011).

O2P turns Navathe's algorithm into an online one: the affinity matrix and its
bond-energy clustering are maintained incrementally as queries arrive, and the
partitioning analysis is amortised over the workload — in each step O2P
greedily creates at most *one* new split (it never revisits earlier splits)
and uses dynamic programming to remember the z-gains of the split points it
did not choose, so the per-query work stays tiny.  This makes O2P by far the
fastest algorithm in the paper's Figure 1 while producing layouts of roughly
Navathe quality (both are clearly worse than the HillClimb class, and worse
than a plain column layout on the full TPC-H workload).

Faithful to the original, the split decision uses Navathe's affinity objective
``z = CTQ * CBQ - COQ**2`` computed from the affinity matrix's block sums (see
:func:`repro.algorithms.navathe.affinity_split_gain`); the I/O cost model is
only used by the surrounding framework to *evaluate* the resulting layout.

Two entry points share one implementation:

* :class:`O2PStepper` is the genuinely online form — construct it once for a
  schema and feed it queries one at a time via :meth:`O2PStepper.step`.  The
  streaming subsystem (:mod:`repro.online`) uses it as the always-on
  incremental baseline, and costs the per-step layouts through the memoized
  :class:`~repro.cost.evaluator.CostEvaluator` fast path instead of building
  and costing a fresh ``Partitioning`` per arrival.
* :class:`O2PAlgorithm` is the paper's unified-setting replay: the offline
  workload is fed to a stepper query by query in workload order and the
  layout reached after the last query is returned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.algorithms.navathe import affinity_split_gain
from repro.algorithms.support.bond_energy import bond_energy_order
from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partition, Partitioning, mask_of
from repro.cost.base import CostModel
from repro.workload.query import ResolvedQuery
from repro.workload.schema import TableSchema
from repro.workload.workload import Workload


class O2PStepper:
    """Incremental O2P state: one greedy split decision per arriving query.

    The stepper owns the affinity matrix, the bond-energy attribute order,
    the committed split points and the dynamic-programming gain memo; each
    :meth:`step` performs exactly the per-query work of the original
    algorithm.  The resulting layout is available at any time via
    :meth:`layout` (as group bitmasks via :meth:`layout_masks`, which is what
    the online harness feeds to the cost kernel).
    """

    def __init__(
        self,
        schema: TableSchema,
        max_splits_per_step: int = 1,
        reorder_until_first_split: bool = True,
    ) -> None:
        if max_splits_per_step < 1:
            raise ValueError("max_splits_per_step must be >= 1")
        self.schema = schema
        self.max_splits_per_step = max_splits_per_step
        self.reorder_until_first_split = reorder_until_first_split
        n = schema.attribute_count
        self.affinity = np.zeros((n, n), dtype=float)
        self.order: List[int] = list(range(n))
        self.split_points: Set[int] = set()
        # Dynamic programming memo: z-gain of each candidate split position
        # under the current affinity matrix.  New queries invalidate only the
        # positions whose surrounding segment they touch; applying a split
        # invalidates the positions of the segment that was split.
        self._gain_memo: Dict[int, float] = {}
        self.steps = 0
        self.splits = 0

    def step(self, query: ResolvedQuery) -> bool:
        """Feed one arriving query; return True if a new split was committed."""
        self.steps += 1
        _update_affinity(self.affinity, query)

        # Incremental clustering: keep re-clustering while the table is
        # still physically one piece; once data has been split, an online
        # system no longer reshuffles the stored attribute order.
        if not self.split_points and self.reorder_until_first_split:
            new_order = bond_energy_order(self.affinity)
            if new_order != self.order:
                self.order = new_order
                self._gain_memo.clear()

        self._gain_memo = _refresh_gains(
            self.order,
            self.split_points,
            self.affinity,
            self._gain_memo,
            touched=query.index_mask,
        )

        splits_before = self.splits
        for _ in range(self.max_splits_per_step):
            position = _best_split(self._gain_memo, self.split_points)
            if position is None:
                break
            # Gains of positions inside the segment being split were
            # computed against that (now obsolete) segment; drop them so
            # they are recomputed next step.  The membership test must use
            # the boundaries *before* the new split is added.
            old_boundaries = set(self.split_points)
            self.split_points.add(position)
            self.splits += 1
            self._gain_memo = {
                pos: gain
                for pos, gain in self._gain_memo.items()
                if not _same_segment(pos, position, old_boundaries)
            }
        return self.splits > splits_before

    def layout(self) -> Partitioning:
        """The partitioning the stepper has committed to so far."""
        return _materialise_layout(self.schema, self.order, self.split_points)

    def layout_masks(self) -> List[int]:
        """The current column groups as attribute bitmasks (for the cost kernel)."""
        return [mask_of(segment) for segment in _segments(self.order, self.split_points)]

    def metadata(self) -> Dict[str, object]:
        """Diagnostics in the same shape ``O2PAlgorithm`` reports per run."""
        return {
            "steps": self.steps,
            "splits": self.splits,
            "final_order": list(self.order),
            "split_points": sorted(self.split_points),
        }


@register_algorithm("o2p")
class O2PAlgorithm(PartitioningAlgorithm):
    """Online top-down partitioner: one greedy split per incoming query."""

    name = "o2p"
    search_strategy = "top-down"
    starting_point = "whole-workload"
    candidate_pruning = "none"

    def __init__(
        self,
        max_splits_per_step: int = 1,
        reorder_until_first_split: bool = True,
    ) -> None:
        if max_splits_per_step < 1:
            raise ValueError("max_splits_per_step must be >= 1")
        self.max_splits_per_step = max_splits_per_step
        self.reorder_until_first_split = reorder_until_first_split
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Replay the workload online and return the final layout."""
        stepper = self.stepper(workload.schema)
        for query in workload:
            stepper.step(query)
        self._metadata = stepper.metadata()
        return stepper.layout()

    def stepper(self, schema: TableSchema) -> O2PStepper:
        """An incremental stepper configured like this algorithm instance."""
        return O2PStepper(
            schema,
            max_splits_per_step=self.max_splits_per_step,
            reorder_until_first_split=self.reorder_until_first_split,
        )

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)


# -- shared incremental machinery -----------------------------------------------


def _update_affinity(affinity: np.ndarray, query: ResolvedQuery) -> None:
    """Add one query's co-access counts to the affinity matrix in place."""
    indices = list(query.attribute_indices)
    for i in indices:
        for j in indices:
            affinity[i, j] += query.weight


def _refresh_gains(
    order: Sequence[int],
    split_points: Set[int],
    affinity: np.ndarray,
    memo: Dict[int, float],
    touched: int,
) -> Dict[int, float]:
    """Recompute z-gains for candidate positions affected by the new query.

    ``touched`` is the new query's attribute bitmask.  Positions whose
    surrounding segment contains none of the attributes the new query
    touches keep their memoised gain (the new query cannot change the
    affinity block sums of that segment).
    """
    refreshed: Dict[int, float] = {}
    for position in range(1, len(order)):
        if position in split_points:
            continue
        segment, start = _segment_of(position, split_points, order)
        if position in memo and not mask_of(segment) & touched:
            refreshed[position] = memo[position]
            continue
        local_split = position - start
        refreshed[position] = affinity_split_gain(
            affinity, segment[:local_split], segment[local_split:]
        )
    return refreshed


def _best_split(gain_memo: Dict[int, float], split_points: Set[int]) -> Optional[int]:
    """The candidate position with the largest strictly positive z-gain."""
    best_position = None
    best_gain = 0.0
    for position, gain in gain_memo.items():
        if position in split_points:
            continue
        if gain > best_gain:
            best_gain = gain
            best_position = position
    return best_position


def _segment_of(
    position: int, split_points: Set[int], order: Sequence[int]
) -> Tuple[List[int], int]:
    """The contiguous segment of ``order`` containing gap ``position``.

    Returns the segment's attributes and its start offset in ``order``.
    """
    boundaries = sorted(split_points)
    start = 0
    end = len(order)
    for boundary in boundaries:
        if boundary <= position:
            start = boundary
        else:
            end = boundary
            break
    return list(order[start:end]), start


def _same_segment(position: int, other: int, split_points: Set[int]) -> bool:
    """True if two gap positions fall inside the same current segment."""
    boundaries = sorted(split_points)

    def segment_index(pos: int) -> int:
        index = 0
        for boundary in boundaries:
            if boundary <= pos:
                index += 1
        return index

    return segment_index(position) == segment_index(other)


def _segments(order: Sequence[int], split_points: Set[int]) -> List[List[int]]:
    """The non-empty contiguous segments defined by an order plus split points."""
    boundaries = sorted(split_points)
    segments: List[List[int]] = []
    start = 0
    for boundary in boundaries:
        segments.append(list(order[start:boundary]))
        start = boundary
    segments.append(list(order[start:]))
    return [segment for segment in segments if segment]


def _materialise_layout(
    schema: TableSchema, order: Sequence[int], split_points: Set[int]
) -> Partitioning:
    """Materialise the partitioning defined by an order plus split points."""
    return Partitioning(
        schema,
        [Partition(segment) for segment in _segments(order, split_points)],
        validate=False,
    )
