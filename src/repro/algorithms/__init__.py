"""The evaluated vertical partitioning algorithms.

Importing this package registers every algorithm with the registry in
:mod:`repro.core.algorithm`, so ``get_algorithm("hillclimb")`` works after a
plain ``import repro``.

Algorithms (Section 3 of the paper):

=============  ==============================================================
``brute-force``  Exhaustive enumeration of all set partitions (optimal).
``navathe``      Affinity matrix + Bond Energy clustering + recursive splits.
``hillclimb``    Bottom-up pairwise merging from a column layout.
``autopart``     Atomic fragments extended by pairwise combination.
``hyrise``       Primary partitions, k-way affinity-graph partitioning,
                 candidate merging per subgraph, cross-subgraph merges.
``o2p``          Online top-down: one greedy split per step with memoised
                 split costs.
``trojan``       Interestingness-pruned column-group enumeration + knapsack
                 style merging per query group.
``row``          Baseline: a single partition (no vertical partitioning).
``column``       Baseline: one partition per attribute (full partitioning).
=============  ==============================================================
"""

from repro.algorithms.baselines import (
    ColumnLayoutAlgorithm,
    PerfectMaterializedViews,
    RowLayoutAlgorithm,
)
from repro.algorithms.brute_force import BruteForceAlgorithm
from repro.algorithms.navathe import NavatheAlgorithm
from repro.algorithms.hillclimb import HillClimbAlgorithm
from repro.algorithms.autopart import AutoPartAlgorithm
from repro.algorithms.hyrise import HyriseAlgorithm
from repro.algorithms.o2p import O2PAlgorithm
from repro.algorithms.trojan import TrojanAlgorithm
from repro.algorithms import support

__all__ = [
    "BruteForceAlgorithm",
    "NavatheAlgorithm",
    "HillClimbAlgorithm",
    "AutoPartAlgorithm",
    "HyriseAlgorithm",
    "O2PAlgorithm",
    "TrojanAlgorithm",
    "RowLayoutAlgorithm",
    "ColumnLayoutAlgorithm",
    "PerfectMaterializedViews",
    "support",
]
