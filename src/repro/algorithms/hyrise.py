"""HYRISE layout algorithm (Grund et al., PVLDB 2010).

HYRISE computes hybrid row/column layouts for main-memory engines.  It is a
multi-level, bottom-up algorithm:

1. **Primary partitions** — maximal attribute groups always accessed together
   (identical to AutoPart's atomic fragments).
2. **Affinity graph & k-way partitioning** — primary partitions become graph
   nodes; the edge weight between two nodes is the summed weight of queries
   accessing both.  The graph is split into subgraphs of at most ``K`` nodes
   with a k-way partitioner so that the following merge step stays tractable
   even for very wide tables.
3. **Candidate merging per subgraph** — within each subgraph, repeatedly merge
   the pair of partitions with the best improvement in estimated workload
   cost (same greedy merge as HillClimb, restricted to the subgraph).
4. **Cross-subgraph combination** — finally, try merging the resulting groups
   across subgraphs while the cost keeps improving.

With ``K`` large enough to hold all primary partitions in one subgraph, HYRISE
degenerates to AutoPart; the k-way split is what makes it scale to the
150-attribute tables the HYRISE paper targets, at a small quality loss (the
paper measures 2.21% worse than brute force on TPC-H).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.algorithms.support.graph_partition import kway_partition
from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partition, Partitioning, merge_group_pair
from repro.cost.base import CostModel
from repro.cost.evaluator import CostEvaluator
from repro.workload.workload import Workload


@register_algorithm("hyrise")
class HyriseAlgorithm(PartitioningAlgorithm):
    """Primary partitions + k-way graph partitioning + candidate merging."""

    name = "hyrise"
    search_strategy = "bottom-up"
    starting_point = "attribute-subset"
    candidate_pruning = "none"

    def __init__(self, max_primary_partitions_per_subgraph: int = 4) -> None:
        if max_primary_partitions_per_subgraph < 1:
            raise ValueError("max_primary_partitions_per_subgraph must be >= 1")
        self.max_primary_partitions_per_subgraph = max_primary_partitions_per_subgraph
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Run the four HYRISE phases and return the combined layout."""
        schema = workload.schema
        primary = workload.primary_partitions()
        evaluator = CostEvaluator(workload, cost_model)

        # Phase 2: affinity graph over primary partitions, split into subgraphs.
        edge_weights = self._affinity_edges(workload, primary)
        subgraphs = kway_partition(
            nodes=list(range(len(primary))),
            edge_weights=edge_weights,
            max_nodes_per_part=self.max_primary_partitions_per_subgraph,
        )

        # Phase 3: candidate merging inside each subgraph.
        groups: List[FrozenSet[int]] = []
        for subgraph in subgraphs:
            subgraph_groups = [primary[node] for node in sorted(subgraph)]
            groups.extend(self._greedy_merge(subgraph_groups, workload, evaluator))

        # Re-run the merge restricted to each subgraph but costed against the
        # full layout: collect all groups first, then phase 4 merges across
        # subgraphs.
        merged_across = self._greedy_merge(groups, workload, evaluator)

        self._metadata = {
            "primary_partitions": [sorted(p) for p in primary],
            "subgraphs": [sorted(s) for s in subgraphs],
            "groups_after_subgraph_merge": [sorted(g) for g in groups],
            "final_groups": [sorted(g) for g in merged_across],
            "candidate_evaluations": evaluator.evaluations,
        }
        return Partitioning(schema, [Partition(group) for group in merged_across])

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _affinity_edges(
        workload: Workload, primary: List[FrozenSet[int]]
    ) -> Dict[Tuple[int, int], float]:
        """Edge weights between primary partitions: summed co-access weight."""
        edges: Dict[Tuple[int, int], float] = {}
        for a, b in combinations(range(len(primary)), 2):
            weight = 0.0
            for query in workload:
                if query.references_any(primary[a]) and query.references_any(primary[b]):
                    weight += query.weight
            if weight > 0.0:
                edges[(a, b)] = weight
        return edges

    def _greedy_merge(
        self,
        groups: List[FrozenSet[int]],
        workload: Workload,
        evaluator: CostEvaluator,
    ) -> List[FrozenSet[int]]:
        """HillClimb-style pairwise merging of ``groups``.

        The candidate layouts are always *complete*: attributes outside the
        groups being merged (those belonging to other subgraphs during phase
        3) are padded in as singleton partitions for costing, so cost
        comparisons are consistent even when merging inside a subgraph.  Only
        the first ``len(current)`` positions of the padded layout are merge
        candidates; the padding never changes within one call because merging
        does not alter coverage.
        """
        schema = workload.schema
        current = list(groups)
        covered: Set[int] = set()
        for group in current:
            covered.update(group)
        padding = [
            frozenset([index])
            for index in range(schema.attribute_count)
            if index not in covered
        ]
        current_cost = evaluator.evaluate(current + padding)
        while len(current) > 1:
            best_pair = None
            best_cost = current_cost
            padded = current + padding
            for a, b in combinations(range(len(current)), 2):
                candidate_cost = evaluator.evaluate_merge(padded, a, b)
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_pair = (a, b)
            if best_pair is None:
                break
            current = merge_group_pair(current, best_pair[0], best_pair[1])
            current_cost = best_cost
        return current

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)
