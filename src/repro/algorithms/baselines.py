"""Baseline layouts: row, column, and perfect materialised views.

The paper compares every vertical partitioning algorithm against the two
degenerate layouts — Row (a single partition, i.e. no vertical partitioning)
and Column (one partition per attribute, i.e. full vertical partitioning) —
and, for the "how good" metric, against *perfect materialised views* (PMV):
one projection per query containing exactly the attributes that query needs.
PMV is not a legal partitioning (projections overlap), so it is exposed as a
cost reference rather than as a :class:`Partitioning`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import (
    Partition,
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.base import CostModel
from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload


@register_algorithm("row")
class RowLayoutAlgorithm(PartitioningAlgorithm):
    """Baseline: keep all attributes in a single partition (no partitioning)."""

    name = "row"
    search_strategy = "baseline"

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Return the row layout regardless of workload and cost model."""
        return row_partitioning(workload.schema)


@register_algorithm("column")
class ColumnLayoutAlgorithm(PartitioningAlgorithm):
    """Baseline: one partition per attribute (full vertical partitioning)."""

    name = "column"
    search_strategy = "baseline"

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Return the column layout regardless of workload and cost model."""
        return column_partitioning(workload.schema)


class PerfectMaterializedViews:
    """Cost reference: one projection per query with exactly its attributes.

    Used by the "distance from PMV" metric (Figure 6) and by the buffer-size
    sweet-spot experiment (Figure 9).  Because projections of different
    queries overlap, this is *not* a partitioning; it only knows how to price
    a workload: each query reads a single dedicated projection whose row size
    equals the sum of the widths of the query's attributes.
    """

    name = "pmv"

    def workload_cost(self, workload: Workload, cost_model: CostModel) -> float:
        """Sum over queries of the cost of scanning that query's private projection."""
        total = 0.0
        for query in workload:
            total += query.weight * self.query_cost(query, workload, cost_model)
        return total

    def query_cost(
        self, query: ResolvedQuery, workload: Workload, cost_model: CostModel
    ) -> float:
        """Cost of one query against its perfect projection."""
        schema = workload.schema
        projection = Partition(query.attribute_indices)
        # Build a helper partitioning containing the projection plus the rest of
        # the attributes (so the Partitioning is valid), then price only the
        # projection: the query reads nothing else.
        rest = [
            index
            for index in range(schema.attribute_count)
            if index not in projection.attributes
        ]
        partitions: List[Partition] = [projection]
        if rest:
            partitions.append(Partition(rest))
        helper = Partitioning(schema, partitions)
        return cost_model.partition_read_cost(projection, [projection], helper)

    def per_query_costs(
        self, workload: Workload, cost_model: CostModel
    ) -> Dict[str, float]:
        """Unweighted per-query PMV costs keyed by query name."""
        return {
            query.name: self.query_cost(query, workload, cost_model)
            for query in workload
        }
