"""Navathe's vertical partitioning algorithm (Navathe et al., ACM TODS 1984).

The earliest approximation approach evaluated in the paper, and the archetype
of the *top-down* class:

1. Build the attribute affinity matrix: cell (i, j) holds the summed weight of
   queries co-accessing attributes i and j.
2. Cluster the matrix with the Bond Energy Algorithm so that attributes with
   high affinity become adjacent in a linear order.
3. Recursively split the clustered order into contiguous fragments using the
   original algorithm's affinity objective.  For a split of a fragment into an
   upper part U and a lower part L the gain is computed from the clustered
   affinity matrix's block sums,

   ``z = CTQ * CBQ - COQ**2``

   with ``CTQ = Σ_{i,j ∈ U} aff(i, j)``, ``CBQ = Σ_{i,j ∈ L} aff(i, j)`` and
   ``COQ = Σ_{i ∈ U, j ∈ L} aff(i, j)``.  The fragment is split at the
   z-maximising point if that maximum is positive, and both halves are
   processed recursively; a fragment with no positive-``z`` split stays
   intact.

Because the split decision looks only at co-access affinities — never at
attribute byte widths or at the I/O cost model — and because every fragment
must remain contiguous in the clustered order, Navathe's layouts keep
rarely-co-accessed attributes together in fairly wide groups.  On TPC-H this
makes them read 20-25% unnecessary data and end up *worse than a plain column
layout* under the unified disk cost model, exactly the behaviour reported in
the paper (Figures 3 and 4).  Passing ``split_objective="cost"`` replaces the
affinity criterion with greedy order-preserving splits driven by the workload
cost model (the ablation benchmark uses this to quantify how much of Navathe's
gap comes from the affinity objective).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.support.bond_energy import bond_energy_order
from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partition, Partitioning
from repro.cost.base import CostModel
from repro.cost.evaluator import CostEvaluator
from repro.workload.query import ResolvedQuery
from repro.workload.workload import Workload

#: Valid values for the ``split_objective`` constructor argument.
SPLIT_OBJECTIVES = ("affinity", "cost")


def affinity_split_gain(
    affinity: np.ndarray,
    upper: Sequence[int],
    lower: Sequence[int],
) -> float:
    """Navathe's z-measure for a binary split, from affinity-matrix block sums.

    ``upper`` and ``lower`` are the attribute index sets of the two candidate
    fragments; the gain is ``CTQ * CBQ - COQ**2`` where CTQ/CBQ are the total
    affinities inside each fragment and COQ the total affinity across them.
    """
    upper_idx = list(upper)
    lower_idx = list(lower)
    top = float(affinity[np.ix_(upper_idx, upper_idx)].sum())
    bottom = float(affinity[np.ix_(lower_idx, lower_idx)].sum())
    cross = float(affinity[np.ix_(upper_idx, lower_idx)].sum())
    return top * bottom - cross * cross


def query_split_gain(
    queries: Sequence[ResolvedQuery],
    upper: Sequence[int],
    lower: Sequence[int],
) -> float:
    """Query-counting variant of the z-measure (kept for analysis/tests).

    CTQ (CBQ) is the summed weight of queries accessing only U (only L) within
    the fragment, COQ the summed weight of queries accessing both sides.
    """
    upper_set = frozenset(upper)
    lower_set = frozenset(lower)
    only_upper = 0.0
    only_lower = 0.0
    both = 0.0
    for query in queries:
        touches_upper = not query.index_set.isdisjoint(upper_set)
        touches_lower = not query.index_set.isdisjoint(lower_set)
        if touches_upper and touches_lower:
            both += query.weight
        elif touches_upper:
            only_upper += query.weight
        elif touches_lower:
            only_lower += query.weight
    return only_upper * only_lower - both * both


@register_algorithm("navathe")
class NavatheAlgorithm(PartitioningAlgorithm):
    """Top-down recursive binary splitting over a bond-energy clustered order."""

    name = "navathe"
    search_strategy = "top-down"
    starting_point = "whole-workload"
    candidate_pruning = "none"

    def __init__(self, split_objective: str = "affinity") -> None:
        if split_objective not in SPLIT_OBJECTIVES:
            raise ValueError(
                f"split_objective must be one of {SPLIT_OBJECTIVES}, "
                f"got {split_objective!r}"
            )
        self.split_objective = split_objective
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Cluster attributes with BEA, then recursively split the order."""
        schema = workload.schema
        affinity = workload.affinity_matrix()
        order = bond_energy_order(affinity)

        if self.split_objective == "affinity":
            segments = self._recursive_affinity_split(tuple(order), affinity)
            splits = len(segments) - 1
            candidate_evaluations = 0
        else:
            evaluator = CostEvaluator(workload, cost_model)
            segments, splits = self._greedy_cost_split(tuple(order), evaluator)
            candidate_evaluations = evaluator.evaluations

        self._metadata = {
            "bea_order": list(order),
            "splits": splits,
            "split_objective": self.split_objective,
            "segments": [list(segment) for segment in segments],
            "candidate_evaluations": candidate_evaluations,
        }
        return Partitioning(schema, [Partition(segment) for segment in segments])

    # -- affinity (original) objective ----------------------------------------

    def _recursive_affinity_split(
        self, segment: Tuple[int, ...], affinity: np.ndarray
    ) -> List[Tuple[int, ...]]:
        """Recursively apply Navathe's binary split while the best z is positive."""
        if len(segment) < 2:
            return [segment]
        best_z = 0.0
        best_point: Optional[int] = None
        for split_point in range(1, len(segment)):
            z = affinity_split_gain(
                affinity, segment[:split_point], segment[split_point:]
            )
            if z > best_z:
                best_z = z
                best_point = split_point
        if best_point is None:
            return [segment]
        upper = segment[:best_point]
        lower = segment[best_point:]
        return self._recursive_affinity_split(upper, affinity) + self._recursive_affinity_split(
            lower, affinity
        )

    # -- cost-model objective (ablation variant) -------------------------------

    def _greedy_cost_split(
        self,
        order: Tuple[int, ...],
        evaluator: CostEvaluator,
    ) -> Tuple[List[Tuple[int, ...]], int]:
        """Greedy order-preserving splits driven by the workload cost model.

        Candidate layouts are costed through the memoized
        :class:`~repro.cost.evaluator.CostEvaluator`; splitting one segment
        leaves every other segment's co-read contribution cached, so only the
        queries touching the split segment cost anything to re-derive.
        """
        segments: List[Tuple[int, ...]] = [order]
        current_cost = evaluator.evaluate(segments)
        splits = 0
        while True:
            best_segments: Optional[List[Tuple[int, ...]]] = None
            best_cost = current_cost
            for segment_index, segment in enumerate(segments):
                if len(segment) < 2:
                    continue
                for split_point in range(1, len(segment)):
                    candidate = (
                        segments[:segment_index]
                        + [segment[:split_point], segment[split_point:]]
                        + segments[segment_index + 1:]
                    )
                    candidate_cost = evaluator.evaluate(candidate)
                    if candidate_cost < best_cost:
                        best_cost = candidate_cost
                        best_segments = candidate
            if best_segments is None:
                return segments, splits
            segments = best_segments
            current_cost = best_cost
            splits += 1

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)
