"""Trojan layouts (Jindal, Quiané-Ruiz & Dittrich, SOCC 2011).

Trojan layouts target big-data blocks (HDFS) and are the only
threshold-pruning algorithm in the study:

1. **Column group enumeration** — enumerate candidate column groups of the
   table's attributes.
2. **Interestingness pruning** — compute each group's interestingness (a
   normalised mutual-information measure over the query-access distribution,
   see :mod:`repro.algorithms.support.interestingness`) and prune groups below
   a threshold.
3. **Knapsack merge** — pick a disjoint subset of the surviving groups that
   maximises total benefit (interestingness weighted by group size), then
   cover any remaining attributes with the primary partitions they belong to,
   producing a complete and disjoint layout.

The original algorithm additionally groups queries and produces one layout per
HDFS replica; the paper's unified setting has no replication, so — like the
paper's adaptation — a single layout is produced for the whole workload.

Trojan is by far the slowest heuristic in the study (the candidate enumeration
dominates), yet its layouts are within 0.01% of brute force on TPC-H.  Both
properties emerge naturally here: enumeration is exponential in the attribute
count (bounded by ``max_group_size``), and the interesting groups on TPC-H are
exactly the co-accessed groups brute force picks.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.algorithms.support.interestingness import normalized_mutual_information
from repro.algorithms.support.knapsack import KnapsackItem, solve_knapsack
from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partition, Partitioning
from repro.cost.base import CostModel
from repro.workload.workload import Workload


@register_algorithm("trojan")
class TrojanAlgorithm(PartitioningAlgorithm):
    """Interestingness-pruned column grouping with a knapsack merge."""

    name = "trojan"
    search_strategy = "bottom-up"
    starting_point = "query-subset"
    candidate_pruning = "threshold"

    def __init__(
        self,
        interestingness_threshold: float = 0.4,
        max_group_size: int = 16,
        max_candidates: int = 64,
        exhaustive_enumeration_limit: int = 16,
    ) -> None:
        if not 0.0 <= interestingness_threshold <= 1.0:
            raise ValueError("interestingness_threshold must be in [0, 1]")
        if max_group_size < 1:
            raise ValueError("max_group_size must be >= 1")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if exhaustive_enumeration_limit < 1:
            raise ValueError("exhaustive_enumeration_limit must be >= 1")
        self.interestingness_threshold = interestingness_threshold
        self.max_group_size = max_group_size
        self.max_candidates = max_candidates
        self.exhaustive_enumeration_limit = exhaustive_enumeration_limit
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Enumerate, prune, and knapsack-merge column groups."""
        schema = workload.schema
        n = schema.attribute_count

        # Pairwise normalised mutual information, computed once; the
        # interestingness of a group is the mean over its pairs.
        nmi = np.ones((n, n), dtype=float)
        for a, b in combinations(range(n), 2):
            value = normalized_mutual_information(workload, a, b)
            nmi[a, b] = value
            nmi[b, a] = value

        # Enumerate candidate groups seeded by the primary partitions and the
        # per-query footprints: Trojan's candidates are column groups that at
        # least one query (or co-access pattern) motivates, extended by unions
        # of overlapping footprints up to max_group_size.
        candidates = self._enumerate_candidates(workload, n)
        enumerated = len(candidates)

        # Interestingness pruning.
        scored: List[Tuple[FrozenSet[int], float]] = []
        for group in candidates:
            interestingness = self._group_interestingness(group, nmi)
            if interestingness >= self.interestingness_threshold:
                scored.append((group, interestingness))
        scored.sort(key=lambda item: (-item[1], -len(item[0]), sorted(item[0])))
        scored = scored[: self.max_candidates]

        # Knapsack merge: benefit favours larger, more interesting groups so
        # the cover prefers wide cohesive groups over singletons.
        items = [
            KnapsackItem(attributes=group, benefit=interestingness * (len(group) - 1) + 1e-9)
            for group, interestingness in scored
        ]
        chosen = solve_knapsack(items)

        groups: List[FrozenSet[int]] = [item.attributes for item in chosen]
        covered = set().union(*groups) if groups else set()
        # Cover leftovers with their primary partitions (split to exclude
        # already-covered attributes) so the layout is complete and disjoint.
        for fragment in workload.primary_partitions():
            remainder = fragment - covered
            if remainder:
                groups.append(frozenset(remainder))
                covered.update(remainder)

        self._metadata = {
            "candidates_enumerated": enumerated,
            "candidates_after_pruning": len(scored),
            "groups_selected_by_knapsack": len(chosen),
            "interestingness_threshold": self.interestingness_threshold,
        }
        return Partitioning(schema, [Partition(group) for group in groups])

    # -- helpers ---------------------------------------------------------------

    def _enumerate_candidates(self, workload: Workload, n: int) -> List[FrozenSet[int]]:
        """Candidate column groups.

        Trojan enumerates *all* column groups before pruning them — the reason
        it is by far the slowest heuristic in the paper (Figure 1).  We do the
        same for tables up to ``exhaustive_enumeration_limit`` attributes
        (which covers every TPC-H and SSB table).  Beyond that the enumeration
        is seeded with the structures the queries themselves induce (query
        footprints, their pairwise intersections/unions and the primary
        partitions), which keeps the algorithm usable on very wide tables.
        """
        candidates = set()
        if n <= self.exhaustive_enumeration_limit:
            for size in range(2, min(n, self.max_group_size) + 1):
                for group in combinations(range(n), size):
                    candidates.add(frozenset(group))
            return sorted(candidates, key=lambda g: (len(g), sorted(g)))

        footprints = [frozenset(query.attribute_indices) for query in workload]
        for footprint in footprints:
            if 2 <= len(footprint) <= self.max_group_size:
                candidates.add(footprint)
        for a, b in combinations(footprints, 2):
            for derived in (a & b, a | b):
                if 2 <= len(derived) <= self.max_group_size:
                    candidates.add(derived)
        for fragment in workload.primary_partitions():
            if 2 <= len(fragment) <= self.max_group_size:
                candidates.add(fragment)
        return sorted(candidates, key=lambda g: (len(g), sorted(g)))

    @staticmethod
    def _group_interestingness(group: FrozenSet[int], nmi: np.ndarray) -> float:
        """Mean pairwise normalised mutual information of a group."""
        members = sorted(group)
        if len(members) == 1:
            return 1.0
        scores = [
            nmi[a, b] for position, a in enumerate(members) for b in members[position + 1:]
        ]
        return float(np.mean(scores))

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)
