"""HillClimb (Hankins & Patel, "Data Morphing", VLDB 2003).

A bottom-up algorithm: start from the column layout (each attribute in its own
partition) and, in every iteration, merge the *pair* of partitions whose merge
yields the largest improvement in estimated workload cost.  Each iteration
reduces the partition count by one; the algorithm stops as soon as no merge
improves the cost.

The original algorithm precomputes a dictionary with the cost of every
possible column group.  The paper found that the dictionary grows to gigabytes
for wide tables and that dropping it makes the algorithm dramatically faster,
so — like the paper — the *improved*, dictionary-free variant is the default.
The original dictionary-backed behaviour can be enabled with
``use_cost_dictionary=True``; the ablation benchmark compares the two.

Candidate layouts are costed through the memoized
:class:`~repro.cost.evaluator.CostEvaluator` kernel, whose delta path
re-costs only the queries affected by each candidate merge; pass
``naive_costing=True`` to recompute every candidate from scratch (the
cost-kernel microbenchmark uses this as the before/after comparison).

The paper's headline finding (Lesson 3) is that HillClimb finds the same
layouts as brute force on TPC-H while spending four orders of magnitude less
optimisation time.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.algorithm import PartitioningAlgorithm, register_algorithm
from repro.core.partitioning import Partition, Partitioning, merge_group_pair
from repro.cost.base import CostModel
from repro.cost.evaluator import CostEvaluator
from repro.workload.workload import Workload


@register_algorithm("hillclimb")
class HillClimbAlgorithm(PartitioningAlgorithm):
    """Bottom-up pairwise merging from a column layout."""

    name = "hillclimb"
    search_strategy = "bottom-up"
    starting_point = "whole-workload"
    candidate_pruning = "none"

    def __init__(
        self, use_cost_dictionary: bool = False, naive_costing: bool = False
    ) -> None:
        self.use_cost_dictionary = use_cost_dictionary
        self.naive_costing = naive_costing
        self._metadata: Dict[str, object] = {}

    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Greedily merge partition pairs while the workload cost improves."""
        schema = workload.schema
        groups: List[FrozenSet[int]] = [
            frozenset([index]) for index in range(schema.attribute_count)
        ]
        evaluator = CostEvaluator(workload, cost_model, naive=self.naive_costing)
        current_cost = evaluator.evaluate(groups)
        iterations = 0
        merges = 0
        # Original variant: remember the workload cost of every candidate group
        # set ever evaluated, keyed by the full layout signature.  This is the
        # dictionary whose memory footprint the paper criticises; it never
        # changes the chosen layout, only the bookkeeping cost.
        dictionary: Dict[FrozenSet[FrozenSet[int]], float] = {}

        while len(groups) > 1:
            iterations += 1
            best_pair: Optional[Tuple[int, int]] = None
            best_cost = current_cost
            for a, b in combinations(range(len(groups)), 2):
                if self.use_cost_dictionary:
                    key = frozenset(self._merge(groups, a, b))
                    if key not in dictionary:
                        dictionary[key] = evaluator.evaluate_merge(groups, a, b)
                    candidate_cost = dictionary[key]
                else:
                    candidate_cost = evaluator.evaluate_merge(groups, a, b)
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_pair = (a, b)
            if best_pair is None:
                break
            groups = self._merge(groups, best_pair[0], best_pair[1])
            current_cost = best_cost
            merges += 1

        self._metadata = {
            "iterations": iterations,
            "merges": merges,
            "final_cost": current_cost,
            "used_cost_dictionary": self.use_cost_dictionary,
            "dictionary_entries": len(dictionary),
            "candidate_evaluations": evaluator.evaluations,
        }
        return Partitioning(schema, [Partition(group) for group in groups])

    @staticmethod
    def _merge(
        groups: Sequence[FrozenSet[int]], a: int, b: int
    ) -> List[FrozenSet[int]]:
        """A new group list with positions ``a`` and ``b`` replaced by their union.

        Delegates to :func:`~repro.core.partitioning.merge_group_pair`, which
        filters by index — the previous identity-based filtering silently kept
        both copies if equal-but-distinct frozensets were ever passed, yielding
        an overlapping layout.
        """
        return merge_group_pair(groups, a, b)

    def last_run_metadata(self) -> Dict[str, object]:
        return dict(self._metadata)
