"""Core vertical partitioning model.

* :mod:`repro.core.partitioning` — :class:`Partition` and
  :class:`Partitioning`, the validated output type of every algorithm.
* :mod:`repro.core.algorithm` — the :class:`PartitioningAlgorithm` base class,
  :class:`PartitioningResult`, and the algorithm registry.
* :mod:`repro.core.advisor` — :class:`LayoutAdvisor`, the high-level public
  API that runs an algorithm against a workload and cost model.
* :mod:`repro.core.classification` — the paper's Tables 1 and 2 (taxonomy and
  native settings of each algorithm) as queryable data.
"""

from repro.core.partitioning import (
    Partition,
    Partitioning,
    PartitioningError,
    column_partitioning,
    row_partitioning,
)
from repro.core.algorithm import (
    AlgorithmNotFoundError,
    PartitioningAlgorithm,
    PartitioningResult,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.core.advisor import AdvisorReport, LayoutAdvisor
from repro.core import classification

__all__ = [
    "Partition",
    "Partitioning",
    "PartitioningError",
    "column_partitioning",
    "row_partitioning",
    "PartitioningAlgorithm",
    "PartitioningResult",
    "AlgorithmNotFoundError",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
    "LayoutAdvisor",
    "AdvisorReport",
    "classification",
]
