"""The paper's Tables 1 and 2 as queryable data.

Table 1 classifies the evaluated algorithms along three dimensions (search
strategy, starting point, candidate pruning).  Table 2 records the *native*
setting each algorithm was originally proposed for (granularity, hardware,
workload, replication, system) and the unified setting the paper strips them
down to.  Both are exposed here as plain data structures plus formatting
helpers so the classification benchmark can print them and the tests can
cross-check the classification attributes declared on the algorithm classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Dimension values used in Table 1.
SEARCH_STRATEGIES = ("brute-force", "top-down", "bottom-up")
STARTING_POINTS = ("whole-workload", "attribute-subset", "query-subset")
PRUNING_KINDS = ("none", "threshold")


@dataclass(frozen=True)
class AlgorithmClassification:
    """One row of Table 1."""

    algorithm: str
    search_strategy: str
    starting_point: str
    candidate_pruning: str
    reference: str


@dataclass(frozen=True)
class AlgorithmSetting:
    """One column of Table 2: the native setting an algorithm was proposed in."""

    algorithm: str
    granularity: str
    hardware: str
    workload: str
    replication: str
    system: str


#: Table 1 — classification of the evaluated vertical partitioning algorithms.
TABLE_1: Tuple[AlgorithmClassification, ...] = (
    AlgorithmClassification(
        algorithm="autopart",
        search_strategy="bottom-up",
        starting_point="whole-workload",
        candidate_pruning="none",
        reference="Papadomanolakis & Ailamaki, SSDBM 2004",
    ),
    AlgorithmClassification(
        algorithm="hillclimb",
        search_strategy="bottom-up",
        starting_point="whole-workload",
        candidate_pruning="none",
        reference="Hankins & Patel, VLDB 2003",
    ),
    AlgorithmClassification(
        algorithm="hyrise",
        search_strategy="bottom-up",
        starting_point="attribute-subset",
        candidate_pruning="none",
        reference="Grund et al., PVLDB 2010",
    ),
    AlgorithmClassification(
        algorithm="navathe",
        search_strategy="top-down",
        starting_point="whole-workload",
        candidate_pruning="none",
        reference="Navathe et al., ACM TODS 1984",
    ),
    AlgorithmClassification(
        algorithm="o2p",
        search_strategy="top-down",
        starting_point="whole-workload",
        candidate_pruning="none",
        reference="Jindal & Dittrich, BIRTE 2011",
    ),
    AlgorithmClassification(
        algorithm="trojan",
        search_strategy="bottom-up",
        starting_point="query-subset",
        candidate_pruning="threshold",
        reference="Jindal, Quiane-Ruiz & Dittrich, SOCC 2011",
    ),
    AlgorithmClassification(
        algorithm="brute-force",
        search_strategy="brute-force",
        starting_point="whole-workload",
        candidate_pruning="none",
        reference="exhaustive enumeration",
    ),
)

#: Table 2 — native settings of the algorithms plus the paper's unified setting.
TABLE_2: Tuple[AlgorithmSetting, ...] = (
    AlgorithmSetting("autopart", "file", "hard-disk", "offline", "partial", "custom"),
    AlgorithmSetting("hillclimb", "data-page", "hard-disk", "offline", "none", "cost-model"),
    AlgorithmSetting("hyrise", "data-page", "main-memory", "offline", "none", "custom"),
    AlgorithmSetting("navathe", "file", "hard-disk", "offline", "none", "cost-model"),
    AlgorithmSetting("o2p", "file", "hard-disk", "online", "none", "open-source"),
    AlgorithmSetting("trojan", "database-block", "hard-disk", "offline", "full", "open-source"),
    AlgorithmSetting("unified", "file", "hard-disk", "offline", "none", "cost-model"),
)


def classification_for(algorithm: str) -> AlgorithmClassification:
    """Table 1 row for ``algorithm``."""
    for row in TABLE_1:
        if row.algorithm == algorithm:
            return row
    raise KeyError(f"no classification for algorithm {algorithm!r}")


def setting_for(algorithm: str) -> AlgorithmSetting:
    """Table 2 column for ``algorithm`` (or ``"unified"``)."""
    for row in TABLE_2:
        if row.algorithm == algorithm:
            return row
    raise KeyError(f"no setting recorded for algorithm {algorithm!r}")


def classification_table() -> List[Dict[str, str]]:
    """Table 1 as a list of dicts (one per algorithm)."""
    return [
        {
            "algorithm": row.algorithm,
            "search_strategy": row.search_strategy,
            "starting_point": row.starting_point,
            "candidate_pruning": row.candidate_pruning,
            "reference": row.reference,
        }
        for row in TABLE_1
    ]


def settings_table() -> List[Dict[str, str]]:
    """Table 2 as a list of dicts (one per algorithm plus the unified setting)."""
    return [
        {
            "algorithm": row.algorithm,
            "granularity": row.granularity,
            "hardware": row.hardware,
            "workload": row.workload,
            "replication": row.replication,
            "system": row.system,
        }
        for row in TABLE_2
    ]


def format_classification_table() -> str:
    """Pretty-print Table 1."""
    lines = [
        f"{'algorithm':<12s} {'search strategy':<14s} {'starting point':<18s} "
        f"{'pruning':<10s} reference"
    ]
    for row in TABLE_1:
        lines.append(
            f"{row.algorithm:<12s} {row.search_strategy:<14s} "
            f"{row.starting_point:<18s} {row.candidate_pruning:<10s} {row.reference}"
        )
    return "\n".join(lines)


def format_settings_table() -> str:
    """Pretty-print Table 2."""
    lines = [
        f"{'algorithm':<12s} {'granularity':<16s} {'hardware':<12s} "
        f"{'workload':<9s} {'replication':<12s} system"
    ]
    for row in TABLE_2:
        lines.append(
            f"{row.algorithm:<12s} {row.granularity:<16s} {row.hardware:<12s} "
            f"{row.workload:<9s} {row.replication:<12s} {row.system}"
        )
    return "\n".join(lines)
