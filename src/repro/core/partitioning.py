"""Partitions and partitionings.

A *partition* (column group) is a set of attribute indices of one table.  A
*partitioning* is a set of partitions that is **complete** (covers every
attribute) and **disjoint** (no attribute appears twice) — the paper's unified
setting excludes replication, so overlapping layouts are rejected here and
only the perfect-materialised-views baseline (which is a cost reference, not a
layout) is allowed to overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.workload.query import ResolvedQuery

# Re-exported here because partitions are the primary bitmask consumers; the
# definitions live in the dependency-free schema module.
from repro.workload.schema import TableSchema, indices_of_mask, mask_of


class PartitioningError(ValueError):
    """Raised when a partitioning is invalid (not complete or not disjoint)."""


@dataclass(frozen=True)
class Partition:
    """One column group: an immutable, non-empty set of attribute indices."""

    attributes: FrozenSet[int]
    #: Bitmask form of ``attributes`` (bit ``i`` set iff attribute ``i`` is in
    #: the group); derived, so excluded from equality and hashing.
    mask: int = field(default=0, compare=False, repr=False)

    def __init__(self, attributes: Iterable[int]) -> None:
        attribute_set = frozenset(int(index) for index in attributes)
        if not attribute_set:
            raise PartitioningError("a partition must contain at least one attribute")
        if any(index < 0 for index in attribute_set):
            raise PartitioningError("attribute indices must be non-negative")
        object.__setattr__(self, "attributes", attribute_set)
        object.__setattr__(self, "mask", mask_of(attribute_set))

    @classmethod
    def from_mask(cls, mask: int) -> "Partition":
        """Build a partition from a bitmask of attribute indices."""
        if mask < 0:
            raise PartitioningError("a partition mask must be non-negative")
        return cls(indices_of_mask(mask))

    def row_size(self, schema: TableSchema) -> int:
        """Width in bytes of one row of this column group."""
        return schema.subset_row_size(self.attributes)

    def intersects(self, indices: Iterable[int]) -> bool:
        """True if this partition contains any of ``indices``."""
        return not self.attributes.isdisjoint(indices)

    def is_referenced_by(self, query: ResolvedQuery) -> bool:
        """True if ``query`` references any attribute of this partition."""
        return bool(self.mask & query.index_mask)

    def merged_with(self, other: "Partition") -> "Partition":
        """A new partition containing both groups' attributes."""
        return Partition(self.attributes | other.attributes)

    def sorted_attributes(self) -> Tuple[int, ...]:
        """Attribute indices in increasing order."""
        return tuple(sorted(self.attributes))

    def attribute_names(self, schema: TableSchema) -> Tuple[str, ...]:
        """Attribute names of this group, in schema order."""
        return tuple(schema.attribute_names[i] for i in self.sorted_attributes())

    def __contains__(self, index: int) -> bool:
        return index in self.attributes

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.sorted_attributes())

    def __lt__(self, other: "Partition") -> bool:
        return self.sorted_attributes() < other.sorted_attributes()


@dataclass(frozen=True)
class Partitioning:
    """A complete and disjoint set of partitions of one table's attributes."""

    schema: TableSchema
    partitions: Tuple[Partition, ...]

    def __init__(
        self,
        schema: TableSchema,
        partitions: Sequence,
        validate: bool = True,
    ) -> None:
        normalised: List[Partition] = []
        for partition in partitions:
            if isinstance(partition, Partition):
                normalised.append(partition)
            else:
                normalised.append(Partition(partition))
        normalised.sort(key=lambda p: p.sorted_attributes())
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "partitions", tuple(normalised))
        if validate:
            self._validate()

    @classmethod
    def from_masks(
        cls,
        schema: TableSchema,
        masks: Iterable[int],
        validate: bool = True,
    ) -> "Partitioning":
        """Build a partitioning from integer bitmasks of attribute indices."""
        return cls(schema, [Partition.from_mask(mask) for mask in masks], validate=validate)

    def _validate(self) -> None:
        seen: Set[int] = set()
        for partition in self.partitions:
            overlap = seen & partition.attributes
            if overlap:
                raise PartitioningError(
                    f"attributes {sorted(overlap)} appear in more than one partition"
                )
            seen.update(partition.attributes)
        expected = set(range(self.schema.attribute_count))
        missing = expected - seen
        if missing:
            raise PartitioningError(
                f"partitioning of {self.schema.name!r} misses attributes "
                f"{sorted(missing)}"
            )
        extra = seen - expected
        if extra:
            raise PartitioningError(
                f"partitioning of {self.schema.name!r} references unknown attribute "
                f"indices {sorted(extra)}"
            )

    # -- introspection ------------------------------------------------------

    @property
    def partition_count(self) -> int:
        """Number of column groups."""
        return len(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self.partitions)

    def partition_of(self, attribute_index: int) -> Partition:
        """The partition containing ``attribute_index`` (O(1) after first call).

        The attribute→partition index is built lazily on the first lookup and
        cached on the (frozen) instance, so construction stays cheap for the
        throwaway candidate layouts the algorithms enumerate.
        """
        index = self.__dict__.get("_attribute_index")
        if index is None:
            index = {
                attribute: partition
                for partition in self.partitions
                for attribute in partition.attributes
            }
            object.__setattr__(self, "_attribute_index", index)
        try:
            return index[attribute_index]
        except KeyError:
            raise PartitioningError(
                f"attribute index {attribute_index} not covered by this partitioning"
            ) from None

    def referenced_partitions(self, query: ResolvedQuery) -> List[Partition]:
        """Partitions a query must read (those containing any referenced attribute)."""
        return [p for p in self.partitions if p.is_referenced_by(query)]

    def is_row_layout(self) -> bool:
        """True if all attributes live in a single partition."""
        return self.partition_count == 1

    def is_column_layout(self) -> bool:
        """True if every partition holds exactly one attribute."""
        return all(len(partition) == 1 for partition in self.partitions)

    def as_sets(self) -> List[FrozenSet[int]]:
        """The partitions as plain frozensets (canonical order)."""
        return [partition.attributes for partition in self.partitions]

    def as_masks(self) -> List[int]:
        """The partitions as integer bitmasks (canonical order)."""
        return [partition.mask for partition in self.partitions]

    def as_names(self) -> List[Tuple[str, ...]]:
        """The partitions as tuples of attribute names (canonical order)."""
        return [partition.attribute_names(self.schema) for partition in self.partitions]

    def signature(self) -> FrozenSet[FrozenSet[int]]:
        """Hashable canonical form, independent of partition order."""
        return frozenset(partition.attributes for partition in self.partitions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partitioning):
            return NotImplemented
        return self.schema.name == other.schema.name and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash((self.schema.name, self.signature()))

    def describe(self) -> str:
        """Human-readable layout, one line per column group."""
        lines = [f"Partitioning of {self.schema.name} ({self.partition_count} groups)"]
        for index, partition in enumerate(self.partitions):
            names = ", ".join(partition.attribute_names(self.schema))
            width = partition.row_size(self.schema)
            lines.append(f"  P{index + 1} ({width:>4d} B/row): {names}")
        return "\n".join(lines)


def merge_group_pair(groups: Sequence, a: int, b: int) -> List:
    """A new group list with positions ``a`` and ``b`` replaced by their union.

    Works on any group representation supporting ``|`` (frozensets, bitmasks).
    Filtering is by index, never by identity or equality: identity-based
    filtering silently keeps both copies when equal-but-distinct groups are
    passed, and equality-based filtering drops too many when duplicates are
    present.
    """
    merged = [group for index, group in enumerate(groups) if index != a and index != b]
    merged.append(groups[a] | groups[b])
    return merged


def row_partitioning(schema: TableSchema) -> Partitioning:
    """The row layout: one partition containing every attribute."""
    return Partitioning(schema, [Partition(range(schema.attribute_count))])


def column_partitioning(schema: TableSchema) -> Partitioning:
    """The column layout: one partition per attribute."""
    return Partitioning(
        schema, [Partition([index]) for index in range(schema.attribute_count)]
    )


def partitioning_from_names(
    schema: TableSchema, groups: Sequence[Sequence[str]]
) -> Partitioning:
    """Build a partitioning from groups of attribute *names*."""
    partitions = [Partition(schema.indices_of(group)) for group in groups]
    return Partitioning(schema, partitions)
