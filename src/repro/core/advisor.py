"""High-level public API: the layout advisor.

:class:`LayoutAdvisor` is the entry point a downstream user calls: give it a
workload (or a whole benchmark's per-table workloads), pick a cost model and
one or more algorithms, and it returns recommended layouts together with the
comparison metrics the paper defines (optimisation time, estimated cost,
improvement over row/column, unnecessary data read, tuple reconstruction
joins, pay-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.algorithm import PartitioningResult, get_algorithm
from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.base import CostModel
from repro.cost.creation import estimate_creation_time
from repro.cost.disk import DEFAULT_DISK
from repro.cost.hdd import HDDCostModel
from repro.workload.workload import Workload

#: Algorithms the advisor compares when the caller does not name any —
#: the paper's six algorithms (brute force excluded by default because its
#: cost explodes beyond ~12 attributes).
DEFAULT_ALGORITHMS = ("autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan")


@dataclass
class AdvisorRecommendation:
    """One algorithm's recommendation for one workload, with derived metrics."""

    result: PartitioningResult
    improvement_over_row: float
    improvement_over_column: float
    unnecessary_data_fraction: float
    average_reconstruction_joins: float
    creation_time: float

    @property
    def partitioning(self) -> Partitioning:
        """The recommended layout."""
        return self.result.partitioning

    @property
    def algorithm(self) -> str:
        """Name of the algorithm that produced the layout."""
        return self.result.algorithm

    @property
    def estimated_cost(self) -> float:
        """Estimated workload cost of the layout."""
        return self.result.estimated_cost


@dataclass
class AdvisorReport:
    """All recommendations for one workload, sorted by estimated cost."""

    workload: Workload
    cost_model_description: str
    row_cost: float
    column_cost: float
    recommendations: List[AdvisorRecommendation] = field(default_factory=list)

    @property
    def best(self) -> AdvisorRecommendation:
        """The cheapest recommendation."""
        if not self.recommendations:
            raise ValueError("advisor report contains no recommendations")
        return min(self.recommendations, key=lambda rec: rec.estimated_cost)

    def by_algorithm(self, name: str) -> AdvisorRecommendation:
        """The recommendation produced by algorithm ``name``."""
        for recommendation in self.recommendations:
            if recommendation.algorithm == name:
                return recommendation
        raise KeyError(f"no recommendation from algorithm {name!r}")

    def to_rows(self) -> List[Dict[str, object]]:
        """Tabular form (list of dicts), handy for printing or DataFrames."""
        rows = []
        for recommendation in sorted(
            self.recommendations, key=lambda rec: rec.estimated_cost
        ):
            rows.append(
                {
                    "algorithm": recommendation.algorithm,
                    "estimated_cost_s": recommendation.estimated_cost,
                    "optimization_time_s": recommendation.result.optimization_time,
                    "partitions": recommendation.partitioning.partition_count,
                    "improvement_over_row_pct": 100.0 * recommendation.improvement_over_row,
                    "improvement_over_column_pct": 100.0
                    * recommendation.improvement_over_column,
                    "unnecessary_data_pct": 100.0
                    * recommendation.unnecessary_data_fraction,
                    "avg_reconstruction_joins": recommendation.average_reconstruction_joins,
                    "creation_time_s": recommendation.creation_time,
                }
            )
        return rows

    def describe(self) -> str:
        """Formatted comparison table."""
        header = (
            f"{'algorithm':<12s} {'cost (s)':>12s} {'opt (ms)':>10s} {'parts':>6s} "
            f"{'vs row':>8s} {'vs col':>8s} {'waste':>7s} {'joins':>6s}"
        )
        lines = [
            f"Advisor report for {self.workload.name} ({self.cost_model_description})",
            f"  row layout cost    : {self.row_cost:.4f} s",
            f"  column layout cost : {self.column_cost:.4f} s",
            "  " + header,
        ]
        for row in self.to_rows():
            lines.append(
                "  "
                + f"{row['algorithm']:<12s} {row['estimated_cost_s']:>12.4f} "
                + f"{row['optimization_time_s'] * 1e3:>10.2f} {row['partitions']:>6d} "
                + f"{row['improvement_over_row_pct']:>7.2f}% "
                + f"{row['improvement_over_column_pct']:>7.2f}% "
                + f"{row['unnecessary_data_pct']:>6.2f}% "
                + f"{row['avg_reconstruction_joins']:>6.2f}"
            )
        return "\n".join(lines)


class LayoutAdvisor:
    """Runs partitioning algorithms over workloads and derives comparison metrics."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
        algorithm_options: Optional[Mapping[str, Mapping[str, object]]] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else HDDCostModel(DEFAULT_DISK)
        self.algorithm_names = tuple(algorithms)
        self.algorithm_options = dict(algorithm_options or {})

    # -- single workload -------------------------------------------------------

    def recommend(self, workload: Workload) -> AdvisorReport:
        """Run every configured algorithm on ``workload`` and compare the layouts."""
        # Imported here to avoid a circular import at package load time.
        from repro.metrics.quality import (
            average_reconstruction_joins,
            unnecessary_data_fraction,
        )

        row_layout = row_partitioning(workload.schema)
        column_layout = column_partitioning(workload.schema)
        row_cost = self.cost_model.workload_cost(workload, row_layout)
        column_cost = self.cost_model.workload_cost(workload, column_layout)

        report = AdvisorReport(
            workload=workload,
            cost_model_description=self.cost_model.describe(),
            row_cost=row_cost,
            column_cost=column_cost,
        )
        for name in self.algorithm_names:
            options = dict(self.algorithm_options.get(name, {}))
            algorithm = get_algorithm(name, **options)
            result = algorithm.run(workload, self.cost_model)
            cost = result.estimated_cost
            recommendation = AdvisorRecommendation(
                result=result,
                improvement_over_row=_relative_improvement(row_cost, cost),
                improvement_over_column=_relative_improvement(column_cost, cost),
                unnecessary_data_fraction=unnecessary_data_fraction(
                    workload, result.partitioning
                ),
                average_reconstruction_joins=average_reconstruction_joins(
                    workload, result.partitioning
                ),
                creation_time=estimate_creation_time(result.partitioning),
            )
            report.recommendations.append(recommendation)
        return report

    def recommend_layout(self, workload: Workload) -> Partitioning:
        """Just the best layout for ``workload`` (cheapest estimated cost)."""
        return self.recommend(workload).best.partitioning

    # -- online entry point ----------------------------------------------------

    def recommend_online(
        self,
        stream,
        algorithm: str = "hillclimb",
        window: int = 32,
        **adaptive_options,
    ):
        """Run the adaptive online controller over a query stream.

        The dynamic-workload counterpart of :meth:`recommend`: instead of
        optimising a workload known up front, an
        :class:`~repro.online.controller.AdaptiveAdvisor` watches the stream
        through windowed statistics, re-runs ``algorithm`` when drift is
        detected, and re-partitions only when the pay-off clears its budget.
        Returns the :class:`~repro.online.controller.OnlineRunResult` with
        the cumulative scan/creation/optimisation accounting and the final
        layout.  Extra keyword arguments go to ``AdaptiveAdvisor`` (e.g.
        ``payoff_limit``, a custom ``detector`` or ``stats``).
        """
        # Imported here to avoid a circular import at package load time.
        from repro.online.controller import AdaptiveAdvisor, run_policy

        policy = AdaptiveAdvisor(
            cost_model=self.cost_model,
            algorithm=algorithm,
            algorithm_options=self.algorithm_options.get(algorithm),
            window=window,
            **adaptive_options,
        )
        return run_policy(stream, policy, self.cost_model)

    # -- measured validation ---------------------------------------------------

    def validate_costs(
        self,
        workload: Workload,
        rows: Optional[int] = None,
        data_seed: int = 0,
        include_baselines: bool = True,
        algorithms: Optional[Sequence[str]] = None,
        backend: str = "measured",
        page_size: Optional[int] = None,
    ):
        """Validate this advisor's estimated costs against real execution.

        Runs every configured algorithm on ``workload`` (exactly as
        :meth:`recommend` does), then executes each recommended layout — plus
        the Row and Column baselines unless ``include_baselines`` is False —
        on the chosen execution backend at ``rows`` measured rows of
        seed-``data_seed`` synthetic data, and compares the execution times
        with the cost model's predictions at the same scale.

        ``backend="measured"`` (the default) uses the vectorized scan
        executor (:mod:`repro.exec`) and returns the
        :class:`~repro.exec.validation.CostValidationReport`; it requires a
        disk-based cost model (the main-memory model has no buffered-scan
        counterpart).  ``backend="sqlite"`` materialises each layout as real
        SQLite tables (:mod:`repro.engine_x`, optionally at ``page_size``)
        and returns the
        :class:`~repro.engine_x.validation.EngineValidationReport`; any cost
        model works, and the comparison is a ranking.  Either way, a
        ``rank_correlation`` near 1.0 means every comparative conclusion the
        estimates support survives execution.
        """
        # Imported here to avoid a circular import at package load time.
        from repro.exec.validation import require_measurable, validate_layouts

        if backend not in ("measured", "sqlite"):
            raise ValueError(
                f"unknown validation backend {backend!r}; "
                f"use 'measured' or 'sqlite'"
            )
        if backend == "measured":
            require_measurable(self.cost_model)
            if page_size is not None:
                raise ValueError("page_size applies to backend='sqlite' only")
        names = tuple(algorithms) if algorithms is not None else self.algorithm_names
        layouts: Dict[str, Partitioning] = {}
        for name in names:
            options = dict(self.algorithm_options.get(name, {}))
            algorithm = get_algorithm(name, **options)
            layouts[name] = algorithm.run(workload, self.cost_model).partitioning
        if include_baselines:
            layouts.setdefault("row", row_partitioning(workload.schema))
            layouts.setdefault("column", column_partitioning(workload.schema))
        if backend == "sqlite":
            from repro.engine_x.validation import validate_layouts_sqlite

            return validate_layouts_sqlite(
                workload,
                layouts,
                cost_model=self.cost_model,
                rows=rows,
                data_seed=data_seed,
                page_size=page_size,
            )
        return validate_layouts(
            workload,
            layouts,
            cost_model=self.cost_model,
            rows=rows,
            data_seed=data_seed,
        )

    # -- multiple workloads ----------------------------------------------------

    def recommend_all(
        self, workloads: Mapping[str, Workload]
    ) -> Dict[str, AdvisorReport]:
        """Run the advisor for each workload of a benchmark (one per table)."""
        return {name: self.recommend(workload) for name, workload in workloads.items()}

    # -- comparison grids ------------------------------------------------------

    def compare(
        self,
        workloads: Optional[Sequence[str]] = None,
        cost_models: Sequence[str] = ("hdd", "mainmemory"),
        grid=None,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        refresh: bool = False,
        cell_timeout: Optional[float] = None,
        retries: int = 0,
        fail_fast: bool = False,
        trace: Optional[str] = None,
        quiet: bool = True,
        progress: Optional[Callable[[str], None]] = None,
    ):
        """Run a comparison grid (the paper's systematic study) and return its report.

        The grid counterpart of :meth:`recommend`: instead of one workload
        under this advisor's cost model, a full (algorithm x workload x cost
        model) cross product executed through :func:`repro.grid.run_grid` —
        optionally parallel (``workers``) and incremental (``cache_dir``).

        Either pass ``workloads`` (workload ids, see
        :func:`repro.grid.resolve_workload`) and ``cost_models`` to build a
        grid from this advisor's configured algorithms and options, or pass
        ``grid`` — a :class:`~repro.grid.spec.GridSpec` or a builtin grid
        name (``"tiny"``, ``"small"``, ``"full"``) — to run it as-is.
        Returns the :class:`~repro.grid.runner.GridReport`; its
        :meth:`~repro.grid.runner.GridReport.describe` renders the headline
        tables.

        Failures are surfaced, not fatal: by default a cell that keeps
        raising (after ``retries`` extra attempts), exceeds ``cell_timeout``
        or loses its worker process is quarantined as a
        :class:`~repro.grid.runner.CellFailure` on its result — inspect
        ``report.failures`` / ``report.ok`` — while every other cell
        completes and is cached.  ``fail_fast=True`` instead aborts on the
        first exhausted cell with
        :class:`~repro.grid.spec.GridExecutionError`.  See
        ``docs/ROBUSTNESS.md``.

        Observability flows through unchanged (``docs/OBSERVABILITY.md``):
        ``trace`` writes the run's JSONL trace file, ``quiet=False`` prints
        one line per completed cell (or pass an explicit ``progress``
        callback), and the returned report carries
        :attr:`~repro.grid.runner.GridReport.telemetry` either way.
        """
        # Imported here to avoid a circular import at package load time.
        from repro.grid import GridSpec, builtin_grid, run_grid

        if grid is not None:
            spec = builtin_grid(grid) if isinstance(grid, str) else grid
        else:
            if not workloads:
                raise ValueError("compare() needs workload ids or a grid")
            spec = GridSpec(
                name="advisor",
                algorithms=self.algorithm_names,
                workloads=tuple(workloads),
                cost_models=tuple(cost_models),
                algorithm_options=self.algorithm_options,
            )
        if progress is None and not quiet:
            progress = lambda line: print(f"  {line}")  # noqa: E731
        return run_grid(
            spec,
            cache_dir=cache_dir,
            workers=workers,
            refresh=refresh,
            cell_timeout=cell_timeout,
            retries=retries,
            fail_fast=fail_fast,
            trace=trace,
            progress=progress,
        )


def _relative_improvement(baseline: float, cost: float) -> float:
    """(baseline - cost) / baseline, guarded against a zero baseline."""
    if baseline <= 0:
        return 0.0
    return (baseline - cost) / baseline
