"""Algorithm base class, result type and registry.

Every vertical partitioning algorithm in :mod:`repro.algorithms` subclasses
:class:`PartitioningAlgorithm` and implements :meth:`compute`, which maps a
:class:`~repro.workload.workload.Workload` and a
:class:`~repro.cost.base.CostModel` to a
:class:`~repro.core.partitioning.Partitioning`.  The base class wraps the call
with wall-clock timing and cost-model call counting and returns a
:class:`PartitioningResult`.

A global registry maps algorithm names (``"hillclimb"``, ``"autopart"``, ...)
to classes so that experiment drivers and the command-line examples can select
algorithms by name.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Type

from repro.core.partitioning import Partitioning
from repro.cost.base import CostModel
from repro.obs.trace import timed
from repro.workload.workload import Workload


class AlgorithmNotFoundError(KeyError):
    """Raised when an unknown algorithm name is requested from the registry."""


@dataclass
class PartitioningResult:
    """Outcome of running one algorithm on one workload.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced the layout.
    workload_name:
        Name of the workload the layout was computed for.
    partitioning:
        The computed layout (complete and disjoint).
    optimization_time:
        Wall-clock seconds spent inside :meth:`PartitioningAlgorithm.compute`.
    estimated_cost:
        Estimated workload cost of the layout under the cost model the
        algorithm optimised for.
    cost_model:
        Description of that cost model.
    cost_evaluations:
        Number of workload-cost evaluations the algorithm performed — a
        machine-independent proxy for optimisation effort.
    metadata:
        Free-form per-algorithm diagnostics (iterations, candidates pruned...).
    """

    algorithm: str
    workload_name: str
    partitioning: Partitioning
    optimization_time: float
    estimated_cost: float
    cost_model: str
    cost_evaluations: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.algorithm} on {self.workload_name}",
            f"  optimization time : {self.optimization_time * 1e3:.2f} ms",
            f"  estimated cost    : {self.estimated_cost:.4f} s ({self.cost_model})",
            f"  cost evaluations  : {self.cost_evaluations}",
            f"  partitions        : {self.partitioning.partition_count}",
        ]
        return "\n".join(lines)


class _CountingCostModel(CostModel):
    """Wraps a cost model and counts workload/query cost evaluations."""

    def __init__(self, inner: CostModel) -> None:
        self.inner = inner
        self.name = inner.name
        # The CostEvaluator kernel probes this flag and calls the fast hooks
        # directly, so the wrapper must advertise and forward them.
        self.supports_fast_costing = getattr(inner, "supports_fast_costing", False)
        self.query_evaluations = 0
        self.workload_evaluations = 0

    def query_cost(self, query, partitioning):  # noqa: D102 - delegation
        self.query_evaluations += 1
        return self.inner.query_cost(query, partitioning)

    def workload_cost(self, workload, partitioning):  # noqa: D102 - delegation
        self.workload_evaluations += 1
        return self.inner.workload_cost(workload, partitioning)

    def partition_read_cost(self, partition, co_read, partitioning):  # noqa: D102
        return self.inner.partition_read_cost(partition, co_read, partitioning)

    def group_read_profile(self, schema, row_size):  # noqa: D102 - delegation
        return self.inner.group_read_profile(schema, row_size)

    def co_read_set_cost(self, schema, profiles):  # noqa: D102 - delegation
        return self.inner.co_read_set_cost(schema, profiles)

    def describe(self) -> str:  # noqa: D102 - delegation
        return self.inner.describe()


class PartitioningAlgorithm(abc.ABC):
    """Base class of every vertical partitioning algorithm.

    Subclasses implement :meth:`compute`; callers normally use :meth:`run`,
    which adds timing, validation and bookkeeping.
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    #: Paper classification (Table 1), for documentation and the
    #: classification report: one of "brute-force", "top-down", "bottom-up".
    search_strategy: str = ""
    #: One of "whole-workload", "attribute-subset", "query-subset".
    starting_point: str = "whole-workload"
    #: One of "none", "threshold".
    candidate_pruning: str = "none"

    @abc.abstractmethod
    def compute(self, workload: Workload, cost_model: CostModel) -> Partitioning:
        """Compute a complete, disjoint partitioning for ``workload``."""

    def run(self, workload: Workload, cost_model: CostModel) -> PartitioningResult:
        """Time :meth:`compute`, evaluate the final layout and package the result."""
        counting = _CountingCostModel(cost_model)
        with timed(
            "algorithm.compute", algorithm=self.name, workload=workload.name
        ) as timer:
            partitioning = self.compute(workload, counting)
        elapsed = timer.wall
        estimated_cost = cost_model.workload_cost(workload, partitioning)
        metadata = dict(self.last_run_metadata())
        # Algorithms that cost candidates through the CostEvaluator kernel no
        # longer call workload_cost per candidate; they report the kernel's
        # candidate count in their metadata instead, keeping the effort proxy
        # comparable across the naive and kernel paths.
        candidate_evaluations = int(metadata.get("candidate_evaluations", 0))
        return PartitioningResult(
            algorithm=self.name,
            workload_name=workload.name,
            partitioning=partitioning,
            optimization_time=elapsed,
            estimated_cost=estimated_cost,
            cost_model=cost_model.describe(),
            cost_evaluations=counting.workload_evaluations
            + counting.query_evaluations
            + candidate_evaluations,
            metadata=metadata,
        )

    def last_run_metadata(self) -> Dict[str, object]:
        """Per-run diagnostics; subclasses may override to expose internals."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: The global registry of algorithm factories.
_REGISTRY: Dict[str, Callable[[], PartitioningAlgorithm]] = {}


def register_algorithm(
    name: str, factory: Optional[Callable[[], PartitioningAlgorithm]] = None
):
    """Register an algorithm factory under ``name``.

    Usable as a decorator on the class itself (the class is its own factory)
    or called explicitly with a factory callable.
    """

    def _register(target):
        _REGISTRY[name] = target
        return target

    if factory is not None:
        _REGISTRY[name] = factory
        return factory
    return _register


def available_algorithms() -> List[str]:
    """Sorted names of all registered algorithms."""
    _ensure_builtin_algorithms()
    return sorted(_REGISTRY)


def get_algorithm(name: str, **kwargs) -> PartitioningAlgorithm:
    """Instantiate the algorithm registered as ``name``.

    Keyword arguments are forwarded to the algorithm's constructor, so e.g.
    ``get_algorithm("trojan", interestingness_threshold=0.3)`` works.
    """
    _ensure_builtin_algorithms()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise AlgorithmNotFoundError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(**kwargs) if kwargs else factory()


def _ensure_builtin_algorithms() -> None:
    """Import the algorithms package so its registrations run."""
    import repro.algorithms  # noqa: F401  (import for side effect)
