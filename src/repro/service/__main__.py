"""Command line entry point: ``python -m repro.service``.

Boots the advisor service and serves until interrupted; SIGINT/SIGTERM
trigger a graceful shutdown that drains queued and in-flight jobs before the
socket closes (a second signal exits immediately).

Examples::

    python -m repro.service --port 8137 --cache-dir .grid-cache --workers 2
    python -m repro.service --port 0 --trace-dir traces   # ephemeral port

See ``docs/SERVICE.md`` for the endpoint reference and curl walkthrough.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from repro.service.app import DEFAULT_PORT, create_service

#: Default result-cache root (matches ``python -m repro.grid``, so the
#: service resumes from caches populated by CLI runs and vice versa).
DEFAULT_CACHE_DIR = ".grid-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the layout advisor over HTTP (stdlib only).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port; 0 picks an ephemeral port (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="result-cache root shared with python -m repro.grid "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (jobs still dedup in memory)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="job worker threads — concurrent jobs, not HTTP connections "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="write one JSONL trace per compare job into this directory "
        "(readable by python -m repro.obs summary)",
    )
    parser.add_argument(
        "--log-requests",
        action="store_true",
        help="echo one access-log line per HTTP request to stderr",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        build_parser().error("--workers must be >= 1")
    service = create_service(
        host=args.host,
        port=args.port,
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        trace_dir=args.trace_dir,
        log_requests=args.log_requests,
    )
    if not args.quiet:
        cache = service.config.cache_dir or "(disabled)"
        print(f"advisor service listening on {service.url}")
        print(f"  result cache : {cache}")
        print(f"  job workers  : {service.config.workers}")
        if service.config.trace_dir:
            print(f"  traces       : {service.config.trace_dir}/<job>.jsonl")
        print("  endpoints    : POST /v1/recommend /v1/compare /v1/validate; "
              "GET /health /v1/jobs[/<id>]")

    interrupted = threading.Event()

    def _handle(signum, frame) -> None:
        if interrupted.is_set():  # second signal: give up on draining
            sys.exit(1)
        interrupted.set()

    signal.signal(signal.SIGINT, _handle)
    signal.signal(signal.SIGTERM, _handle)

    service.serve_in_thread()
    try:
        interrupted.wait()
    finally:
        if not args.quiet:
            print("shutting down: draining in-flight jobs ...")
        service.stop(drain=True)
        if not args.quiet:
            print("bye")
    return 0


if __name__ == "__main__":
    sys.exit(main())
