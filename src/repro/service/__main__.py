"""Command line entry point: ``python -m repro.service``.

Boots the advisor service and serves until interrupted; SIGINT/SIGTERM
trigger a graceful shutdown that drains queued and in-flight jobs before the
socket closes (a second signal exits immediately).

Examples::

    python -m repro.service --port 8137 --cache-dir .grid-cache --workers 2
    python -m repro.service --port 0 --trace-dir traces   # ephemeral port

See ``docs/SERVICE.md`` for the endpoint reference and curl walkthrough.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from repro.service.app import DEFAULT_PORT, create_service

#: Default result-cache root (matches ``python -m repro.grid``, so the
#: service resumes from caches populated by CLI runs and vice versa).
DEFAULT_CACHE_DIR = ".grid-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the layout advisor over HTTP (stdlib only).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port; 0 picks an ephemeral port (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="result-cache root shared with python -m repro.grid "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (jobs still dedup in memory)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="job worker threads — concurrent jobs, not HTTP connections "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="write one JSONL trace per compare job into this directory "
        "(readable by python -m repro.obs summary)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="bound the job queue at N queued jobs; excess submissions get "
        "429 + Retry-After (default: unbounded)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="force-fail any job running longer than this wall time "
        "(default: no timeout)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the durable job journal (jobs are lost on restart, "
        "as before PR 10)",
    )
    parser.add_argument(
        "--journal-path",
        default=None,
        metavar="PATH",
        help="job journal file (default: <cache-dir>/service-journal.jsonl)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="quarantine a job after N consecutive failures until it is "
        'resubmitted with {"force": true} (default: %(default)s)',
    )
    parser.add_argument(
        "--log-requests",
        action="store_true",
        help="echo one access-log line per HTTP request to stderr",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.max_queue_depth is not None and args.max_queue_depth < 1:
        parser.error("--max-queue-depth must be >= 1")
    if args.job_timeout is not None and args.job_timeout <= 0:
        parser.error("--job-timeout must be > 0")
    if args.breaker_threshold < 1:
        parser.error("--breaker-threshold must be >= 1")
    service = create_service(
        host=args.host,
        port=args.port,
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        trace_dir=args.trace_dir,
        log_requests=args.log_requests,
        max_queue_depth=args.max_queue_depth,
        job_timeout=args.job_timeout,
        journal=not args.no_journal,
        journal_path=args.journal_path,
        breaker_threshold=args.breaker_threshold,
    )
    if not args.quiet:
        cache = service.config.cache_dir or "(disabled)"
        journal = service.journal.path if service.journal else "(disabled)"
        print(f"advisor service listening on {service.url}")
        print(f"  result cache : {cache}")
        print(f"  job journal  : {journal}")
        if service.registry.recovered:
            print(f"  recovered    : {service.registry.recovered} "
                  f"interrupted job(s) re-enqueued")
        print(f"  job workers  : {service.config.workers}")
        if service.config.max_queue_depth is not None:
            print(f"  queue depth  : {service.config.max_queue_depth}")
        if service.config.job_timeout is not None:
            print(f"  job timeout  : {service.config.job_timeout:g}s")
        if service.config.trace_dir:
            print(f"  traces       : {service.config.trace_dir}/<job>.jsonl")
        print("  endpoints    : POST /v1/recommend /v1/compare /v1/validate; "
              "GET /health[/live|/ready] /v1/jobs[/<id>]; DELETE /v1/jobs/<id>")

    interrupted = threading.Event()

    def _handle(signum, frame) -> None:
        if interrupted.is_set():  # second signal: give up on draining
            sys.exit(1)
        interrupted.set()

    signal.signal(signal.SIGINT, _handle)
    signal.signal(signal.SIGTERM, _handle)

    service.serve_in_thread()
    try:
        interrupted.wait()
    finally:
        if not args.quiet:
            print("shutting down: draining in-flight jobs ...")
        service.stop(drain=True)
        if not args.quiet:
            print("bye")
    return 0


if __name__ == "__main__":
    sys.exit(main())
