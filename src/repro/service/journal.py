"""The job journal: an append-only write-ahead log of job state transitions.

PR 9's :class:`~repro.service.jobs.JobRegistry` kept every job in memory, so
a crash lost all job state — clients polling a job id after a restart got a
404, and work that was queued or running simply vanished.  The journal makes
the registry durable: every transition is appended to one JSONL file before
it becomes client-visible, and on startup the registry *replays* the file —
terminal jobs come back with their results, and jobs that were ``queued`` or
``running`` when the process died are re-enqueued, so ``kill -9`` mid-job
followed by a restart converges to the same answers with no client-visible
loss (the grid's persistent :class:`~repro.grid.cache.ResultCache` makes the
re-run cheap: completed cells are cache hits).

Design points, mirroring the result cache's philosophy
(``docs/ROBUSTNESS.md``):

* **Atomic appends.**  Each record is one canonical-JSON line written with a
  single ``write`` + ``flush`` under a lock.  A crash can tear at most the
  final line.
* **Torn-tail tolerance.**  Replay parses line by line; an unparseable line
  is counted and skipped (``service.journal.torn``), never trusted and never
  fatal.  The next compaction rewrites the file clean.
* **Duplicate / out-of-order tolerance.**  Replay is a deterministic fold
  over the record sequence (rules below), so replaying a journal containing
  duplicated or re-ordered records still converges to a consistent registry
  state — the property the round-trip test suite exercises.
* **Degradation over failure.**  An ``OSError`` while appending (disk full,
  permissions, an injected ``journal.append`` fault) increments
  ``service.journal.append_failures``, warns once, and the service keeps
  running; durability degrades, availability does not.
* **Periodic compaction.**  After :attr:`compact_every` appends the registry
  snapshots every live job as one ``snapshot`` record into a temp file and
  atomically replaces the journal (``os.replace``), bounding file growth at
  roughly one record per known job.

Replay fold rules (applied in file order):

========================  =====================================================
``submitted``/``snapshot``  create the job if unknown; a duplicate
                            ``submitted`` bumps ``submissions`` and — when the
                            job is in a retryable terminal state (``failed`` /
                            ``cancelled``) — resets it to ``queued``
``requeued``                reset the job to ``queued`` (failed-job resubmission)
``running``                 mark a ``queued`` job ``running`` (ignored
                            otherwise — terminal states are sticky)
``done``/``failed``/        force the terminal state (latest terminal record
``cancelled``               wins); ``done`` carries the result inline
``cancel-requested``        flag the job; a job still non-terminal when replay
                            ends resolves to ``cancelled`` (the client already
                            asked for it — re-running would resurrect work the
                            client abandoned)
========================  =====================================================

Records for unknown job ids (an event whose ``submitted`` line was torn) are
dropped and counted — a registry can only re-enqueue work it can rebuild the
request for.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TextIO

from repro.grid.cache import canonical_json
from repro.obs import metrics as obs_metrics
from repro.service import faults as service_faults

#: Bump when the record schema changes incompatibly; old journals then replay
#: only the records they can still interpret.
FORMAT_VERSION = 1

#: Journal file name placed under the service's cache/journal directory.
DEFAULT_FILENAME = "service-journal.jsonl"

#: Events a journal record may carry (see the module docstring for the fold).
EVENTS = (
    "submitted",
    "requeued",
    "running",
    "done",
    "failed",
    "cancelled",
    "cancel-requested",
    "snapshot",
)

#: Terminal job states as recorded by the journal.
_TERMINAL = ("done", "failed", "cancelled")

# Journal health counters (docs/OBSERVABILITY.md).
_APPENDS = obs_metrics.counter("service.journal.appends")
_APPEND_FAILURES = obs_metrics.counter("service.journal.append_failures")
_COMPACTIONS = obs_metrics.counter("service.journal.compactions")
_REPLAYED = obs_metrics.counter("service.journal.replayed")
_TORN = obs_metrics.counter("service.journal.torn")
_DROPPED = obs_metrics.counter("service.journal.dropped")


@dataclass
class ReplayedJob:
    """One job's state as reconstructed by :meth:`JobJournal.replay`."""

    id: str
    kind: str
    request: Dict[str, object]
    state: str = "queued"
    submissions: int = 1
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, str]] = None
    cancel_requested: bool = False


@dataclass
class JournalReplay:
    """Everything :meth:`JobJournal.replay` reconstructed, plus accounting."""

    #: Jobs in first-submission order (dict preserves insertion order).
    jobs: Dict[str, ReplayedJob] = field(default_factory=dict)
    #: Records successfully applied.
    records: int = 0
    #: Unparseable lines skipped (torn tail, corruption).
    torn: int = 0
    #: Parseable records dropped (unknown job id, unknown event, bad shape).
    dropped: int = 0

    @property
    def interrupted(self) -> List[ReplayedJob]:
        """Jobs that were ``queued``/``running`` at the crash — re-enqueue."""
        return [
            job for job in self.jobs.values() if job.state in ("queued", "running")
        ]


class JobJournal:
    """Append-only JSONL write-ahead log of job transitions at one path.

    Thread-safe: appends serialise on an internal lock (the registry already
    appends under its own lock, but the journal does not rely on that).  The
    file handle stays open between appends and is reopened after a failed
    write, so one bad write (injected or real) does not poison the handle.
    """

    def __init__(self, path: str, compact_every: int = 512) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.path = str(path)
        self.compact_every = compact_every
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        self._appends_since_compaction = 0
        self._warned = False
        #: Instance accounting (process-global mirrors in the obs registry).
        self.appends = 0
        self.append_failures = 0
        self.compactions = 0

    # -- appending -------------------------------------------------------------

    def append(self, event: str, job_id: str, **fields: object) -> bool:
        """Append one transition record; returns whether the write landed.

        Never raises for I/O problems: a failed append is counted, warned
        about once, and the service continues (durability degrades,
        availability does not).  ``fields`` must be JSON-serialisable.
        """
        if event not in EVENTS:
            raise ValueError(f"unknown journal event {event!r}; valid: {list(EVENTS)}")
        record = {"format": FORMAT_VERSION, "event": event, "job": job_id,
                  "at": time.time(), **fields}
        line = canonical_json(record)
        with self._lock:
            try:
                service_faults.maybe_trigger("journal.append")
                handle = self._open()
                handle.write(line + "\n")
                handle.flush()
            except OSError as error:
                self._note_failure(error)
                return False
            self.appends += 1
            _APPENDS.value += 1
            self._appends_since_compaction += 1
            return True

    @property
    def should_compact(self) -> bool:
        """Whether enough appends accumulated to warrant a compaction."""
        with self._lock:
            return self._appends_since_compaction >= self.compact_every

    def compact(self, snapshots: Iterable[Dict[str, object]]) -> bool:
        """Atomically rewrite the journal as one ``snapshot`` record per job.

        ``snapshots`` are the *authoritative* current job states (the
        registry builds them under its lock); the journal itself never
        decides what survives compaction.  Returns whether the rewrite
        landed; failures degrade exactly like failed appends.
        """
        records = [
            canonical_json({"format": FORMAT_VERSION, "event": "snapshot",
                            **snapshot})
            for snapshot in snapshots
        ]
        with self._lock:
            try:
                self._close()
                directory = os.path.dirname(self.path) or "."
                os.makedirs(directory, exist_ok=True)
                fd, temp_path = tempfile.mkstemp(
                    prefix=".journal-", suffix=".tmp", dir=directory
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as temp:
                        for record in records:
                            temp.write(record + "\n")
                    os.replace(temp_path, self.path)
                except OSError:
                    try:
                        os.unlink(temp_path)
                    except OSError:
                        pass
                    raise
            except OSError as error:
                self._note_failure(error)
                return False
            self._appends_since_compaction = 0
            self.compactions += 1
            _COMPACTIONS.value += 1
            return True

    def close(self) -> None:
        """Close the underlying file handle (appends reopen it on demand)."""
        with self._lock:
            self._close()

    # -- replay ----------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Fold the journal file into per-job states (see module docstring).

        A missing journal file is an empty replay, not an error — first boot
        and journal-less operation look identical.
        """
        replay = JournalReplay()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return replay
        except OSError as error:
            self._note_failure(error)
            return replay
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line is expected after a crash; garbage in the
                # middle is treated identically — skipped, counted, rewritten
                # away by the next compaction.
                replay.torn += 1
                _TORN.value += 1
                continue
            if self._apply(replay, record):
                replay.records += 1
                _REPLAYED.value += 1
            else:
                replay.dropped += 1
                _DROPPED.value += 1
        # A cancel request that never landed resolves to cancelled: the
        # client abandoned the job; re-running it would resurrect abandoned
        # work with no poller.
        for job in replay.jobs.values():
            if job.cancel_requested and job.state not in _TERMINAL:
                job.state = "cancelled"
                if job.finished_at is None:
                    job.finished_at = job.submitted_at
        return replay

    # -- internals -------------------------------------------------------------

    def _open(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def _note_failure(self, error: OSError) -> None:
        self.append_failures += 1
        _APPEND_FAILURES.value += 1
        self._close()  # reopen fresh on the next append
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"job journal degraded: {type(error).__name__}: {error} "
                f"(path {self.path}; subsequent journal I/O failures are "
                f"counted but not re-warned)",
                RuntimeWarning,
                stacklevel=3,
            )

    @staticmethod
    def _apply(replay: JournalReplay, record: object) -> bool:
        """Apply one parsed record to the fold; returns whether it counted."""
        if not isinstance(record, dict):
            return False
        event = record.get("event")
        job_id = record.get("job")
        if event not in EVENTS or not isinstance(job_id, str) or not job_id:
            return False
        job = replay.jobs.get(job_id)
        if event in ("submitted", "snapshot"):
            kind = record.get("kind")
            request = record.get("request")
            if not isinstance(kind, str) or not isinstance(request, dict):
                return False
            if job is None:
                job = ReplayedJob(
                    id=job_id,
                    kind=kind,
                    request=request,
                    submitted_at=record.get("at"),
                )
                replay.jobs[job_id] = job
                if event == "snapshot":
                    job.state = str(record.get("state", "queued"))
                    if job.state not in ("queued", "running", *_TERMINAL):
                        job.state = "queued"
                    job.submissions = int(record.get("submissions", 1))
                    job.submitted_at = record.get("submitted_at", job.submitted_at)
                    job.started_at = record.get("started_at")
                    job.finished_at = record.get("finished_at")
                    result = record.get("result")
                    job.result = result if isinstance(result, dict) else None
                    error = record.get("error")
                    job.error = error if isinstance(error, dict) else None
                    job.cancel_requested = bool(
                        record.get("cancel_requested", False)
                    )
                return True
            # Duplicate submission: mirrors the registry's resubmission
            # semantics — bump the count; reset retryable terminal states.
            job.submissions += 1
            if job.state in ("failed", "cancelled"):
                _reset_to_queued(job)
            return True
        if job is None:
            # An event for a job whose submission record was lost: there is
            # no request to re-run, so the record cannot be honoured.
            return False
        if event == "requeued":
            job.submissions += 1
            _reset_to_queued(job)
            return True
        if event == "running":
            if job.state == "queued":
                job.state = "running"
                job.started_at = record.get("at")
            return True
        if event == "cancel-requested":
            job.cancel_requested = True
            return True
        if event in _TERMINAL:
            job.state = event
            job.finished_at = record.get("at")
            if event == "done":
                result = record.get("result")
                job.result = result if isinstance(result, dict) else None
                job.error = None
            elif event == "failed":
                error = record.get("error")
                job.error = (
                    error
                    if isinstance(error, dict)
                    else {"type": "UnknownError", "message": "journal record "
                          "carried no error detail"}
                )
                job.result = None
            else:  # cancelled
                job.result = None
                job.error = None
            return True
        return False  # pragma: no cover - every EVENTS member handled above


def _reset_to_queued(job: ReplayedJob) -> None:
    job.state = "queued"
    job.started_at = None
    job.finished_at = None
    job.result = None
    job.error = None
    job.cancel_requested = False


def snapshot_record(job: "object") -> Dict[str, object]:
    """One compaction ``snapshot`` record for a registry :class:`Job`.

    Defined here (not on ``Job``) so the journal owns its on-disk schema;
    the registry passes live ``Job`` objects under its lock.
    """
    return {
        "job": job.id,
        "kind": job.kind,
        "request": job.request,
        "state": job.state,
        "submissions": job.submissions,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "result": job.result,
        "error": job.error,
        "cancel_requested": job.cancel_requested,
    }
