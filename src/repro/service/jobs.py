"""Async jobs over the grid scheduling core: normalisation, dedup, scheduling.

A *job* is one submitted request (``recommend`` / ``compare`` / ``validate``)
flowing through ``queued -> running -> done | failed | cancelled``.  The
pieces:

* :func:`normalize_request` — validate a raw JSON body early (in the HTTP
  thread, so a bad spec is a 400, never a failed job) and reduce it to its
  canonical form: defaults applied, axes resolved, deterministic ordering.
* :func:`job_id_for` — the dedup key: the SHA-256 content hash of the
  canonical request (via the result cache's :func:`~repro.grid.cache
  .canonical_json`).  Two clients submitting the same spec — even one via
  ``{"grid": "tiny"}`` and one via the equivalent explicit axes — share one
  job and therefore one computation.  ``workers`` (pure parallelism, cannot
  change the result) stays out of the hash; everything else is in it.
* :class:`JobRegistry` — the scheduler: a bounded set of daemon worker
  threads draining a FIFO queue.  Submissions of an already-known job return
  it instead of enqueuing twice (*failed* and *cancelled* jobs are the
  exception: they are reset and retried — unless a repeatedly-failing job
  tripped the circuit breaker, in which case resubmission needs ``{"force":
  true}``).  Shutdown is graceful: sentinel-behind-the-queue, so queued and
  in-flight jobs drain before the workers exit.

  The registry is durable and self-protecting (this PR's tentpole;
  ``docs/SERVICE.md`` has the full model):

  - every state transition is appended to a :class:`~repro.service.journal
    .JobJournal` before it becomes client-visible, and a restarting registry
    replays the journal — terminal jobs come back with results, interrupted
    jobs are re-enqueued;
  - a bounded queue (``max_queue_depth``) sheds overload with 429 +
    ``Retry-After`` derived from the observed job-seconds histogram;
  - a watchdog thread force-fails jobs that exceed ``job_timeout``, and
    :meth:`JobRegistry.cancel` cancels queued jobs immediately and running
    jobs cooperatively — both by setting the job's ``cancel_event``, which
    ``run_grid`` polls in its supervisor loop;
  - finalisation is guarded by a per-job *generation* counter, so a stale
    worker (its job requeued, timed out, or cancelled meanwhile) can never
    stomp the newer state, and runs in a ``finally``-equivalent path even
    for ``BaseException`` — a dying worker thread records its job as failed
    before unwinding, and lost threads are respawned on the next submission.
* :func:`execute_job` — the per-kind executors.  Nothing is reimplemented:
  ``compare`` calls :func:`repro.grid.runner.run_grid` (the PR-5 supervisor,
  used here as a callable scheduling core, persistent
  :class:`~repro.grid.cache.ResultCache` included), ``recommend`` and
  ``validate`` call the :class:`~repro.core.advisor.LayoutAdvisor`.

Every state transition bumps a ``service.jobs.*`` counter and emits a
``service.job`` trace event (no-op unless a sink is active), so the service's
throughput and dedup effectiveness are observable exactly like the grid's
cache (``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import queue as queue_module
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.grid.cache import canonical_json
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service import faults as service_faults
from repro.service.journal import JobJournal, snapshot_record

#: Job kinds, one per exposed advisor entry point.
JOB_KINDS = ("recommend", "compare", "validate")

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

# Service-level throughput and dedup counters (docs/OBSERVABILITY.md).
_JOBS_SUBMITTED = obs_metrics.counter("service.jobs.submitted")
_JOBS_DEDUPED = obs_metrics.counter("service.jobs.deduped")
_JOBS_STARTED = obs_metrics.counter("service.jobs.started")
_JOBS_COMPLETED = obs_metrics.counter("service.jobs.completed")
_JOBS_FAILED = obs_metrics.counter("service.jobs.failed")
_JOBS_RETRIED = obs_metrics.counter("service.jobs.retried")
_JOBS_CANCELLED = obs_metrics.counter("service.jobs.cancelled")
_JOBS_TIMEOUTS = obs_metrics.counter("service.jobs.timeouts")
_JOBS_DISCARDED = obs_metrics.counter("service.jobs.discarded")
_JOBS_QUARANTINED = obs_metrics.counter("service.jobs.quarantined")
_JOBS_RECOVERED = obs_metrics.counter("service.jobs.recovered")
_SHED = obs_metrics.counter("service.shed")
_JOB_SECONDS = obs_metrics.histogram("service.job.seconds")

#: Fallback ``Retry-After`` (seconds) before any job has finished.
_DEFAULT_RETRY_AFTER = 5

#: Consecutive failures after which a job is quarantined (circuit breaker).
DEFAULT_BREAKER_THRESHOLD = 3

#: Serialises traced job runs: the tracing sink is process-global, so two
#: concurrently traced ``run_grid`` calls would interleave their span stacks.
_TRACE_LOCK = threading.Lock()


class ServiceError(Exception):
    """A request error that maps onto an HTTP status and a JSON envelope."""

    def __init__(
        self,
        status: int,
        message: str,
        error_type: str = "BadRequest",
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        #: Seconds until the client should retry (429 responses; also sent as
        #: the ``Retry-After`` header).
        self.retry_after = retry_after

    def to_envelope(self) -> Dict[str, object]:
        """The JSON error envelope body every error response carries."""
        envelope: Dict[str, object] = {
            "error": {
                "status": self.status,
                "type": self.error_type,
                "message": str(self),
            }
        }
        if self.retry_after is not None:
            envelope["error"]["retry_after"] = self.retry_after
        return envelope


class JobCancelled(Exception):
    """Raised by executors when a job's ``cancel_event`` fires mid-run."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id} cancelled")
        self.job_id = job_id


def _jsonable(value: object) -> object:
    """Recursively coerce a result structure to plain JSON types.

    Library results carry numpy scalars (rank correlations, costs) and tuples
    (layout groups); the wire format wants floats, ints and lists.
    """
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    return str(value)


# -- request normalisation -----------------------------------------------------


def _require_mapping(body: object) -> Dict[str, object]:
    if not isinstance(body, dict):
        raise ServiceError(400, "request body must be a JSON object")
    return body


def _string_list(body: Dict[str, object], key: str) -> Optional[List[str]]:
    raw = body.get(key)
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(isinstance(item, str) for item in raw):
        raise ServiceError(400, f"{key!r} must be a list of strings")
    return list(raw)


def _bad_request(error: Exception) -> ServiceError:
    return ServiceError(400, str(error))


def _validate_algorithms(names: List[str]) -> None:
    from repro.core.algorithm import get_algorithm

    for name in names:
        try:
            get_algorithm(name)
        except (KeyError, ValueError) as error:
            raise _bad_request(error) from None


def _compare_spec(normalized: Dict[str, object]):
    """Rebuild the :class:`~repro.grid.spec.GridSpec` of a compare request."""
    from repro.grid.spec import GridSpec

    spec = normalized["spec"]
    return GridSpec(
        name=spec["name"],
        algorithms=spec["algorithms"],
        workloads=spec["workloads"],
        cost_models=spec["cost_models"],
        algorithm_options={
            name: dict(options) for name, options in spec["algorithm_options"]
        },
        backend=spec["backend"],
        measurement=dict(spec["measurement"]) or None,
    )


def _normalize_compare(body: Dict[str, object]) -> Dict[str, object]:
    from repro.grid.spec import GridError, GridSpec, builtin_grid

    grid_name = body.get("grid")
    algorithms = _string_list(body, "algorithms")
    workloads = _string_list(body, "workloads")
    cost_models = _string_list(body, "cost_models")
    measurement = body.get("measurement")
    if measurement is not None and not isinstance(measurement, dict):
        raise ServiceError(400, "'measurement' must be a JSON object")
    algorithm_options = body.get("algorithm_options") or {}
    if not isinstance(algorithm_options, dict):
        raise ServiceError(400, "'algorithm_options' must be a JSON object")
    try:
        if grid_name is not None:
            if not isinstance(grid_name, str):
                raise ServiceError(400, "'grid' must be a builtin grid name")
            base = builtin_grid(grid_name)
            spec = GridSpec(
                name=base.name,
                algorithms=algorithms or base.algorithms,
                workloads=workloads or base.workloads,
                cost_models=cost_models or base.cost_models,
                algorithm_options=dict(algorithm_options)
                or {name: dict(options) for name, options in base.algorithm_options},
                backend=body.get("backend", base.backend),
                measurement=measurement,
            )
        else:
            if not (algorithms and workloads and cost_models):
                raise ServiceError(
                    400,
                    "a compare request needs either 'grid' or all three of "
                    "'algorithms', 'workloads', 'cost_models'",
                )
            spec = GridSpec(
                name="service",
                algorithms=algorithms,
                workloads=workloads,
                cost_models=cost_models,
                algorithm_options=algorithm_options,
                backend=body.get("backend", "estimated"),
                measurement=measurement,
            )
    except GridError as error:
        raise _bad_request(error) from None
    # Resolve every axis value now: an unknown algorithm, workload or cost
    # model id must be a 400 at submission, not a failed job minutes later.
    from repro.grid.spec import resolve_cost_model, resolve_workload

    _validate_algorithms(list(spec.algorithms))
    try:
        for workload_id in spec.workloads:
            resolve_workload(workload_id)
        for cost_model_id in spec.cost_models:
            resolve_cost_model(cost_model_id)
    except GridError as error:
        raise _bad_request(error) from None
    run = {
        "workers": _int_field(body, "workers", default=1, minimum=1),
        "refresh": bool(body.get("refresh", False)),
        "retries": _int_field(body, "retries", default=0, minimum=0),
        "cell_timeout": _float_field(body, "cell_timeout"),
        "fail_fast": bool(body.get("fail_fast", False)),
    }
    return {
        "spec": {
            # The canonical (hash-stable) spec form: axes as lists, options
            # and measurement in the spec's own sorted-tuple canonical form.
            "name": spec.name,
            "algorithms": list(spec.algorithms),
            "workloads": list(spec.workloads),
            "cost_models": list(spec.cost_models),
            "algorithm_options": [
                [name, [[key, value] for key, value in options]]
                for name, options in spec.algorithm_options
            ],
            "backend": spec.backend,
            "measurement": [[key, value] for key, value in spec.measurement],
        },
        "run": run,
    }


def _int_field(
    body: Dict[str, object],
    key: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> Optional[int]:
    raw = body.get(key, default)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ServiceError(400, f"{key!r} must be an integer")
    if minimum is not None and raw < minimum:
        raise ServiceError(400, f"{key!r} must be >= {minimum}")
    return raw


def _float_field(body: Dict[str, object], key: str) -> Optional[float]:
    raw = body.get(key)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ServiceError(400, f"{key!r} must be a number")
    if raw <= 0:
        raise ServiceError(400, f"{key!r} must be > 0")
    return float(raw)


def _normalize_workload_and_model(
    body: Dict[str, object],
) -> Tuple[str, str]:
    from repro.grid.spec import GridError, resolve_cost_model, resolve_workload

    workload_id = body.get("workload")
    if not isinstance(workload_id, str) or not workload_id:
        raise ServiceError(400, "'workload' (a workload id string) is required")
    cost_model_id = body.get("cost_model", "hdd")
    if not isinstance(cost_model_id, str):
        raise ServiceError(400, "'cost_model' must be a cost model id string")
    try:
        resolve_workload(workload_id)
        resolve_cost_model(cost_model_id)
    except GridError as error:
        raise _bad_request(error) from None
    return workload_id, cost_model_id


def _normalize_recommend(body: Dict[str, object]) -> Dict[str, object]:
    from repro.core.advisor import DEFAULT_ALGORITHMS

    workload_id, cost_model_id = _normalize_workload_and_model(body)
    algorithms = _string_list(body, "algorithms") or list(DEFAULT_ALGORITHMS)
    _validate_algorithms(algorithms)
    options = body.get("algorithm_options") or {}
    if not isinstance(options, dict):
        raise ServiceError(400, "'algorithm_options' must be a JSON object")
    return {
        "workload": workload_id,
        "cost_model": cost_model_id,
        "algorithms": algorithms,
        "algorithm_options": options,
    }


def _normalize_validate(body: Dict[str, object]) -> Dict[str, object]:
    workload_id, cost_model_id = _normalize_workload_and_model(body)
    backend = body.get("backend", "measured")
    if backend not in ("measured", "sqlite"):
        raise ServiceError(
            400, f"unknown validation backend {backend!r}; use 'measured' or 'sqlite'"
        )
    page_size = _int_field(body, "page_size", minimum=512)
    if page_size is not None and backend != "sqlite":
        raise ServiceError(400, "'page_size' applies to backend 'sqlite' only")
    algorithms = _string_list(body, "algorithms")
    if algorithms is not None:
        _validate_algorithms(algorithms)
    if backend == "measured":
        # The measured backend needs a disk-based model; fail at submission.
        from repro.exec.validation import require_measurable
        from repro.grid.spec import resolve_cost_model

        try:
            require_measurable(resolve_cost_model(cost_model_id))
        except (TypeError, ValueError) as error:
            raise _bad_request(error) from None
    return {
        "workload": workload_id,
        "cost_model": cost_model_id,
        "backend": backend,
        "rows": _int_field(body, "rows", minimum=1),
        "data_seed": _int_field(body, "data_seed", default=0, minimum=0),
        "page_size": page_size,
        "algorithms": algorithms,
        "include_baselines": bool(body.get("include_baselines", True)),
    }


_NORMALIZERS: Dict[str, Callable[[Dict[str, object]], Dict[str, object]]] = {
    "recommend": _normalize_recommend,
    "compare": _normalize_compare,
    "validate": _normalize_validate,
}


def normalize_request(kind: str, body: object) -> Dict[str, object]:
    """Validate a raw request body and return its canonical form.

    Raises :class:`ServiceError` (status 400) for anything malformed —
    unknown ids included, so submission is the only place a typo can fail.
    """
    if kind not in JOB_KINDS:
        raise ServiceError(404, f"unknown job kind {kind!r}", "NotFound")
    return _NORMALIZERS[kind](_require_mapping(body))


def job_id_for(kind: str, normalized: Dict[str, object]) -> str:
    """The job's dedup key: a content hash of the canonical request.

    ``workers`` (compare only) is excluded — it is pure parallelism and
    cannot change the result, so a 1-worker and a 4-worker submission of the
    same spec share one job.
    """
    hashed = dict(normalized)
    run = hashed.get("run")
    if isinstance(run, dict):
        run = {key: value for key, value in run.items() if key != "workers"}
        hashed["run"] = run
    spec = hashed.get("spec")
    if isinstance(spec, dict):
        # The spec *name* is display-only ("tiny" vs an explicit submission
        # of the same axes must dedup onto one job).
        hashed["spec"] = {key: value for key, value in spec.items() if key != "name"}
    digest = hashlib.sha256(
        canonical_json({"kind": kind, "request": hashed}).encode("utf-8")
    ).hexdigest()
    return f"{kind}-{digest[:16]}"


# -- jobs and the registry -----------------------------------------------------


@dataclass
class Job:
    """One submitted request and everything known about its execution."""

    id: str
    kind: str
    request: Dict[str, object]
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: How many times this job has been submitted (dedup hits included).
    submissions: int = 1
    result: Optional[Dict[str, object]] = None
    #: ``{"type": ..., "message": ...}`` for failed jobs.
    error: Optional[Dict[str, str]] = None
    #: Transition guard: bumped whenever the registry takes the job away from
    #: whatever thread last owned it (requeue, timeout, queued-cancel).  A
    #: worker finalising with a stale generation is discarded.
    generation: int = 0
    #: Set when a client cancelled a running job; the executor aborts at the
    #: next cooperative checkpoint and the outcome is recorded as cancelled.
    cancel_requested: bool = False
    #: Consecutive failed runs (circuit-breaker input; reset on success).
    consecutive_failures: int = 0
    #: Cooperative cancellation signal threaded into ``run_grid``.  Replaced
    #: with a fresh event on every requeue.
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("done", "failed", "cancelled")

    @property
    def wall_seconds(self) -> Optional[float]:
        """Execution wall time (``None`` until the job finishes running)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self, include_result: bool = True) -> Dict[str, object]:
        """The job's JSON form; ``include_result=False`` for listings."""
        record: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "request": self.request,
            "submissions": self.submissions,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
        }
        if include_result:
            record["result"] = self.result
        return record


class JobRegistry:
    """In-memory job store plus the worker threads that execute jobs.

    ``runner`` maps a :class:`Job` to its result dict (see
    :func:`execute_job`); it runs on a registry worker thread.  The registry
    is the single synchronisation point: every state transition happens under
    its lock and wakes :meth:`wait_for` pollers.

    ``journal`` (a :class:`~repro.service.journal.JobJournal`) makes the
    registry durable: it is replayed *before* the worker threads start —
    terminal jobs are restored with their results, interrupted jobs are
    re-enqueued — and every subsequent transition is appended under the
    registry lock, so the on-disk order matches the in-memory order.
    ``max_queue_depth`` bounds the number of queued jobs (excess submissions
    get a 429 with a ``Retry-After`` estimate), ``job_timeout`` arms a
    watchdog thread that force-fails overrunning jobs, and
    ``breaker_threshold`` consecutive failures quarantine a job until a
    client resubmits it with ``{"force": true}``.
    """

    def __init__(
        self,
        runner: Callable[[Job], Dict[str, object]],
        workers: int = 2,
        max_queue_depth: Optional[int] = None,
        job_timeout: Optional[float] = None,
        journal: Optional[JobJournal] = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
    ) -> None:
        if workers < 1:
            raise ValueError("a job registry needs at least one worker thread")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None: unbounded)")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be > 0 (or None: no timeout)")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self._runner = runner
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue_module.Queue[Optional[str]]" = queue_module.Queue()
        self._shutting_down = False
        self.worker_count = workers
        self.max_queue_depth = max_queue_depth
        self.job_timeout = job_timeout
        self.breaker_threshold = breaker_threshold
        self._journal = journal
        #: Jobs re-enqueued from the journal at startup (health reporting).
        self.recovered = 0
        if journal is not None:
            self._recover(journal)
        self._threads = [
            threading.Thread(
                target=self._work, name=f"service-job-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        self._watch_stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        if job_timeout is not None:
            self._watchdog = threading.Thread(
                target=self._watch, name="service-job-watchdog", daemon=True
            )
            self._watchdog.start()

    # -- journal recovery --------------------------------------------------------

    def _recover(self, journal: JobJournal) -> None:
        """Replay the journal into the registry (runs before workers start)."""
        replay = journal.replay()
        for replayed in replay.jobs.values():
            job = Job(
                id=replayed.id,
                kind=replayed.kind,
                request=replayed.request,
                state=replayed.state,
                submitted_at=replayed.submitted_at or time.time(),
                started_at=replayed.started_at,
                finished_at=replayed.finished_at,
                submissions=replayed.submissions,
                result=replayed.result,
                error=replayed.error,
            )
            if job.state in ("queued", "running"):
                # The process died with this job in flight; run it again.
                # (Compare jobs rehydrate completed cells from the persistent
                # ResultCache, so the re-run is incremental.)
                job.state = "queued"
                job.started_at = None
                self._queue.put(job.id)
                self.recovered += 1
                _JOBS_RECOVERED.value += 1
                obs_trace.event("service.job", job=job.id, state="recovered")
            self._jobs[job.id] = job
            self._order.append(job.id)
        # Start the new journal epoch from an authoritative snapshot: replay
        # artefacts (torn tail, pre-crash duplicates) do not survive, and the
        # re-enqueued jobs are durably recorded as queued.
        journal.compact(snapshot_record(job) for job in self._jobs.values())
        if replay.jobs or replay.torn or replay.dropped:
            obs_trace.event(
                "service.journal.replayed",
                jobs=len(replay.jobs),
                recovered=self.recovered,
                records=replay.records,
                torn=replay.torn,
                dropped=replay.dropped,
            )

    def _journal_append(self, event: str, job_id: str, **fields: object) -> None:
        if self._journal is not None:
            self._journal.append(event, job_id, **fields)

    def _maybe_compact_locked(self) -> None:
        """Compact the journal if due (caller holds the registry lock)."""
        if self._journal is not None and self._journal.should_compact:
            self._journal.compact(
                snapshot_record(job) for job in self._jobs.values()
            )

    # -- submission ------------------------------------------------------------

    def submit(self, kind: str, body: object) -> Tuple[Job, bool]:
        """Normalise, dedup and enqueue one request.

        Returns ``(job, deduped)``: ``deduped`` is True when an identical
        submission was already known (the caller polls the shared job).  A
        previously *failed* or *cancelled* job is reset and retried instead
        of being served stale — unless the circuit breaker tripped
        (``breaker_threshold`` consecutive failures), in which case the
        resubmission is rejected with 409 until the client sends
        ``{"force": true}``.  Raises :class:`ServiceError` for invalid bodies
        (400), a full queue (429, with ``retry_after``), quarantined jobs
        (409) and after shutdown began (503).
        """
        force = False
        if isinstance(body, dict) and "force" in body:
            # ``force`` is submission metadata, not part of the request: strip
            # it before normalisation so it never enters the job-id hash.
            body = {key: value for key, value in body.items() if key != "force"}
            force = True
        normalized = normalize_request(kind, body)
        job_id = job_id_for(kind, normalized)
        with self._changed:
            if self._shutting_down:
                raise ServiceError(
                    503, "service is shutting down", "ServiceUnavailable"
                )
            self._ensure_workers_locked()
            existing = self._jobs.get(job_id)
            if existing is not None:
                if (
                    existing.state == "failed"
                    and existing.consecutive_failures >= self.breaker_threshold
                    and not force
                ):
                    _JOBS_QUARANTINED.value += 1
                    obs_trace.event(
                        "service.job", job=job_id, state="quarantined",
                        consecutive_failures=existing.consecutive_failures,
                    )
                    raise ServiceError(
                        409,
                        f"job {job_id} failed {existing.consecutive_failures} "
                        f"consecutive times and is quarantined; resubmit with "
                        f'{{"force": true}} to retry it',
                        "Quarantined",
                    )
                existing.submissions += 1
                if existing.state in ("failed", "cancelled"):
                    # A failed or cancelled job is retryable: reset, requeue.
                    self._require_capacity_locked()
                    retried = existing.state == "failed"
                    existing.state = "queued"
                    existing.error = None
                    existing.result = None
                    existing.started_at = None
                    existing.finished_at = None
                    existing.cancel_requested = False
                    existing.cancel_event = threading.Event()
                    existing.generation += 1
                    if force:
                        existing.consecutive_failures = 0
                    if retried:
                        _JOBS_RETRIED.value += 1
                    obs_trace.event("service.job", job=job_id, state="requeued")
                    self._journal_append("requeued", job_id)
                    self._maybe_compact_locked()
                    self._queue.put(job_id)
                    self._changed.notify_all()
                    return existing, False
                _JOBS_DEDUPED.value += 1
                obs_trace.event("service.job", job=job_id, state="deduped")
                return existing, True
            self._require_capacity_locked()
            job = Job(id=job_id, kind=kind, request=normalized)
            self._jobs[job_id] = job
            self._order.append(job_id)
            _JOBS_SUBMITTED.value += 1
            obs_trace.event("service.job", job=job_id, state="queued")
            self._journal_append(
                "submitted", job_id, kind=kind, request=normalized
            )
            self._maybe_compact_locked()
            self._queue.put(job_id)
            self._changed.notify_all()
            return job, False

    def _require_capacity_locked(self) -> None:
        """Reject (429) when the queue is at ``max_queue_depth``."""
        if self.max_queue_depth is None:
            return
        queued = sum(1 for job in self._jobs.values() if job.state == "queued")
        if queued < self.max_queue_depth:
            return
        retry_after = self._retry_after_estimate_locked(queued)
        _SHED.value += 1
        obs_trace.event(
            "service.shed", queued=queued, depth=self.max_queue_depth,
            retry_after=retry_after,
        )
        raise ServiceError(
            429,
            f"job queue is full ({queued} queued, depth {self.max_queue_depth}); "
            f"retry in ~{retry_after}s",
            "TooManyRequests",
            retry_after=retry_after,
        )

    def _retry_after_estimate_locked(self, queued: int) -> int:
        """Seconds until capacity likely frees: mean job time x queue depth.

        Derived from the ``service.job.seconds`` histogram (this process's
        finished jobs); before any job finishes a small fixed default is
        used.  Always >= 1 so clients cannot busy-loop on ``Retry-After: 0``.
        """
        if _JOB_SECONDS.count:
            mean = _JOB_SECONDS.mean
        else:
            mean = float(_DEFAULT_RETRY_AFTER)
        estimate = mean * max(1, queued) / max(1, self.worker_count)
        return max(1, int(estimate + 0.999))

    def queue_depth(self) -> int:
        """Number of currently queued jobs (readiness reporting)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.state == "queued"
            )

    @property
    def saturated(self) -> bool:
        """Whether the queue is at capacity (readiness reporting)."""
        if self.max_queue_depth is None:
            return False
        return self.queue_depth() >= self.max_queue_depth

    def _ensure_workers_locked(self) -> None:
        """Respawn worker threads that died (injected or real thread death).

        A worker dying through ``_work``'s BaseException path replaces itself
        (:meth:`_replace_worker`), so this is a backstop for deaths the
        handler never saw; ``is_alive`` can lag a dying thread, hence both.
        """
        if self._shutting_down:
            return
        for index, thread in enumerate(self._threads):
            if not thread.is_alive():
                self._spawn_worker_locked(index)

    def _replace_worker(self, dying: threading.Thread) -> None:
        """Called by a worker unwinding on a BaseException: respawn its slot."""
        with self._lock:
            if self._shutting_down:
                return
            for index, thread in enumerate(self._threads):
                if thread is dying:
                    self._spawn_worker_locked(index)
                    return

    def _spawn_worker_locked(self, index: int) -> None:
        replacement = threading.Thread(
            target=self._work,
            name=f"service-job-worker-{index}r",
            daemon=True,
        )
        self._threads[index] = replacement
        replacement.start()
        obs_trace.event("service.worker.respawned", worker=index)

    # -- lookup ----------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """The job registered under ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, offset: int = 0, limit: int = 50) -> Tuple[List[Job], int]:
        """A page of jobs in submission order plus the total count.

        Invalid paging is the client's bug, not something to silently clamp:
        a negative ``offset`` or a non-positive ``limit`` raises a 400
        :class:`ServiceError`.
        """
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            raise ServiceError(400, "'offset' must be an integer >= 0")
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ServiceError(400, "'limit' must be an integer >= 1")
        with self._lock:
            ids = self._order[offset : offset + limit]
            return [self._jobs[job_id] for job_id in ids], len(self._order)

    def counts(self) -> Dict[str, int]:
        """Number of jobs per lifecycle state (all states always present)."""
        summary = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                summary[job.state] += 1
        return summary

    def wait_for(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until ``job_id`` reaches a terminal state (tests, CLIs)."""
        deadline = time.monotonic() + timeout
        with self._changed:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(f"unknown job {job_id!r}")
                if job.finished:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state} after {timeout:g}s"
                    )
                self._changed.wait(remaining)

    # -- cancellation ----------------------------------------------------------

    def cancel(self, job_id: str) -> Tuple[Job, bool]:
        """Cancel a job: queued jobs immediately, running jobs cooperatively.

        Returns ``(job, accepted)``: ``accepted`` is False when the job was
        already terminal (nothing to cancel — the response still carries the
        job so the client sees its final state).  A running job keeps state
        ``running`` with ``cancel_requested`` set until its executor reaches
        a cancellation checkpoint; the outcome is then recorded as
        ``cancelled`` regardless of what the run produced, and the result is
        discarded.  Raises :class:`ServiceError` 404 for unknown ids.
        """
        with self._changed:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(404, f"unknown job {job_id!r}", "NotFound")
            if job.finished:
                return job, False
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.time()
                job.cancel_requested = True
                job.generation += 1  # a worker that later dequeues it: stale
                job.cancel_event.set()
                _JOBS_CANCELLED.value += 1
                obs_trace.event("service.job", job=job_id, state="cancelled")
                self._journal_append("cancelled", job_id)
                self._maybe_compact_locked()
                self._changed.notify_all()
                return job, True
            # Running: flag it and let the executor abort cooperatively.  The
            # generation is NOT bumped — the worker's own finalisation must
            # still land (as cancelled).
            if not job.cancel_requested:
                job.cancel_requested = True
                job.cancel_event.set()
                obs_trace.event(
                    "service.job", job=job_id, state="cancel-requested"
                )
                self._journal_append("cancel-requested", job_id)
                self._changed.notify_all()
            return job, True

    # -- execution -------------------------------------------------------------

    def _work(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._changed:
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue
                job.state = "running"
                job.started_at = time.time()
                generation = job.generation
                _JOBS_STARTED.value += 1
                obs_trace.event("service.job", job=job_id, state="running")
                self._journal_append("running", job_id)
                self._changed.notify_all()
            # Everything below runs in a BaseException-tight envelope: however
            # the runner dies — including non-Exception escapes like an
            # injected WorkerThreadDeath or a KeyboardInterrupt delivered to
            # this thread — the job is finalised before the thread unwinds.
            try:
                service_faults.maybe_trigger("job.start")
                if job.cancel_event.is_set():
                    raise JobCancelled(job_id)
                result = self._runner(job)
            except JobCancelled:
                self._finalize(job, generation, "cancelled", None, None)
            except Exception as error:  # the job, not the worker, fails
                self._finalize(job, generation, "failed", None, error)
            except BaseException as error:
                # The worker thread itself is dying; record the job as failed
                # and start a replacement worker on the way out.
                self._finalize(job, generation, "failed", None, error)
                self._replace_worker(threading.current_thread())
                raise
            else:
                self._finalize(job, generation, "done", result, None)

    def _finalize(
        self,
        job: Job,
        generation: int,
        outcome: str,
        result: Optional[Dict[str, object]],
        error: Optional[BaseException],
    ) -> None:
        """Record one run's outcome, unless the registry moved on without us.

        The generation guard closes the requeue race: if the job was reset
        (resubmitted), force-failed by the watchdog, or cancelled-while-queued
        after this worker picked it up, its generation no longer matches and
        this (stale) outcome is discarded instead of stomping the newer state.
        """
        with self._changed:
            if job.generation != generation or job.state != "running":
                _JOBS_DISCARDED.value += 1
                obs_trace.event(
                    "service.job", job=job.id, state="discarded",
                    outcome=outcome, generation=generation,
                )
                return
            if job.cancel_requested:
                # The client abandoned this job mid-run; whatever the run
                # produced is discarded, never served and never cached here.
                outcome = "cancelled"
                result = None
                error = None
            job.finished_at = time.time()
            if job.started_at is not None:
                _JOB_SECONDS.observe(job.finished_at - job.started_at)
            if outcome == "done":
                job.state = "done"
                job.result = result
                job.error = None
                job.consecutive_failures = 0
                _JOBS_COMPLETED.value += 1
                self._journal_append("done", job.id, result=result)
            elif outcome == "cancelled":
                job.state = "cancelled"
                job.result = None
                job.error = None
                _JOBS_CANCELLED.value += 1
                self._journal_append("cancelled", job.id)
            else:
                job.state = "failed"
                job.result = None
                job.error = {
                    "type": type(error).__name__ if error else "UnknownError",
                    "message": str(error) if error else "job failed",
                }
                job.consecutive_failures += 1
                _JOBS_FAILED.value += 1
                self._journal_append("failed", job.id, error=job.error)
            obs_trace.event(
                "service.job", job=job.id, state=job.state,
                error=job.error["type"] if job.error else None,
            )
            self._maybe_compact_locked()
            self._changed.notify_all()

    # -- watchdog --------------------------------------------------------------

    def _watch(self) -> None:
        """Force-fail running jobs that exceed ``job_timeout`` wall seconds."""
        assert self.job_timeout is not None
        interval = min(0.25, max(0.01, self.job_timeout / 5.0))
        while not self._watch_stop.wait(interval):
            now = time.time()
            with self._changed:
                for job in self._jobs.values():
                    if job.state != "running" or job.started_at is None:
                        continue
                    if now - job.started_at < self.job_timeout:
                        continue
                    # Take the job away from its worker: the generation bump
                    # makes the worker's eventual finalisation stale, and the
                    # cancel event asks run_grid to stop burning CPU.
                    job.generation += 1
                    job.cancel_event.set()
                    job.state = "failed"
                    job.finished_at = now
                    job.error = {
                        "type": "JobTimeout",
                        "message": (
                            f"job exceeded the service job timeout "
                            f"({self.job_timeout:g}s wall)"
                        ),
                    }
                    job.consecutive_failures += 1
                    _JOBS_TIMEOUTS.value += 1
                    _JOBS_FAILED.value += 1
                    _JOB_SECONDS.observe(now - job.started_at)
                    obs_trace.event(
                        "service.job", job=job.id, state="failed",
                        error="JobTimeout",
                    )
                    self._journal_append("failed", job.id, error=job.error)
                self._maybe_compact_locked()
                self._changed.notify_all()

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting submissions and drain the queue.

        The sentinels join the queue *behind* every already-queued job, so a
        graceful shutdown finishes queued and in-flight work before the
        worker threads exit.  ``wait=False`` just flips the accepting flag
        and enqueues the sentinels.
        """
        with self._changed:
            if self._shutting_down:
                wait_needed = wait
            else:
                self._shutting_down = True
                for _ in self._threads:
                    self._queue.put(None)
                wait_needed = wait
            self._changed.notify_all()
        self._watch_stop.set()
        if wait_needed:
            for thread in self._threads:
                thread.join(timeout)
            if self._watchdog is not None:
                self._watchdog.join(timeout)
        if self._journal is not None:
            self._journal.close()


# -- per-kind executors --------------------------------------------------------


def _execute_recommend(request: Dict[str, object]) -> Dict[str, object]:
    from repro.core.advisor import LayoutAdvisor
    from repro.grid.spec import resolve_cost_model, resolve_workload

    workload = resolve_workload(request["workload"])
    advisor = LayoutAdvisor(
        cost_model=resolve_cost_model(request["cost_model"]),
        algorithms=request["algorithms"],
        algorithm_options=request["algorithm_options"],
    )
    report = advisor.recommend(workload)
    layouts = {
        recommendation.algorithm: [
            list(group) for group in recommendation.partitioning.as_names()
        ]
        for recommendation in report.recommendations
    }
    rows = report.to_rows()
    for row in rows:
        row["layout"] = layouts[row["algorithm"]]
    best = report.best
    return _jsonable(
        {
            "workload": request["workload"],
            "cost_model": report.cost_model_description,
            "row_cost": report.row_cost,
            "column_cost": report.column_cost,
            "best": {
                "algorithm": best.algorithm,
                "estimated_cost": best.estimated_cost,
                "layout": layouts[best.algorithm],
            },
            "recommendations": rows,
        }
    )


def _execute_compare(
    job: Job,
    cache_dir: Optional[str],
    trace_dir: Optional[str],
) -> Dict[str, object]:
    from repro.grid.aggregate import headline_tables
    from repro.grid.runner import run_grid
    from repro.grid.spec import GridCancelled

    spec = _compare_spec(job.request)
    run = job.request["run"]
    trace_path = None
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = os.path.join(trace_dir, f"{job.id}.jsonl")
    lock = _TRACE_LOCK if trace_path is not None else None
    if lock is not None:
        lock.acquire()
    try:
        report = run_grid(
            spec,
            cache_dir=cache_dir,
            workers=run["workers"],
            refresh=run["refresh"],
            retries=run["retries"],
            cell_timeout=run["cell_timeout"],
            fail_fast=run["fail_fast"],
            trace=trace_path,
            cancel_event=job.cancel_event,
        )
    except GridCancelled as error:
        raise JobCancelled(job.id) from error
    finally:
        if lock is not None:
            lock.release()
    cells = []
    for result in report.results:
        row: Dict[str, object] = {
            "label": result.cell.label,
            "key": result.key,
            "backend": result.cell.backend,
            "cached": result.cached,
            "attempts": result.attempts,
            "ok": result.ok,
        }
        if result.ok:
            row["estimated_cost"] = result.estimated_cost
            row["layout"] = [list(group) for group in result.layout]
        if result.failure is not None:
            row["failure"] = {
                "error_type": result.failure.error_type,
                "message": result.failure.message,
                "attempts": result.failure.attempts,
            }
        cells.append(row)
    return _jsonable(
        {
            "spec": dict(job.request["spec"]),
            "accounting": report.accounting(),
            "cache": {
                "hits": report.cache_hits,
                "computed": report.computed,
                "failed": report.failed,
                "hit_rate": report.hit_rate,
                "store_failures": report.cache_store_failures,
                "load_failures": report.cache_load_failures,
            },
            "cells": cells,
            "tables": headline_tables(report.results),
            "telemetry": report.telemetry.to_dict()
            if report.telemetry is not None
            else None,
            "trace_path": trace_path,
        }
    )


def _execute_validate(request: Dict[str, object]) -> Dict[str, object]:
    from repro.core.advisor import LayoutAdvisor
    from repro.grid.spec import resolve_cost_model, resolve_workload

    workload = resolve_workload(request["workload"])
    advisor = LayoutAdvisor(cost_model=resolve_cost_model(request["cost_model"]))
    report = advisor.validate_costs(
        workload,
        rows=request["rows"],
        data_seed=request["data_seed"],
        include_baselines=request["include_baselines"],
        algorithms=request["algorithms"],
        backend=request["backend"],
        page_size=request["page_size"],
    )
    result: Dict[str, object] = {
        "workload": request["workload"],
        "backend": request["backend"],
        "rank_correlation": report.rank_correlation,
        "rows": report.to_rows(),
        "tables": report.describe(),
    }
    if request["backend"] == "measured":
        result["mean_absolute_relative_error"] = report.mean_absolute_relative_error
        result["max_absolute_relative_error"] = report.max_absolute_relative_error
    return _jsonable(result)


def execute_job(
    job: Job,
    cache_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Execute one job on the calling thread and return its result dict.

    The dispatch target a :class:`JobRegistry` runner closes over; also
    usable directly (no HTTP, no registry) for tests and scripting.
    """
    with obs_trace.span("service.job", job=job.id, kind=job.kind):
        if job.cancel_event.is_set():
            # Cancelled between dequeue and execution (or the caller set the
            # event before running the job directly): stop before any work.
            raise JobCancelled(job.id)
        if job.kind == "recommend":
            return _execute_recommend(job.request)
        if job.kind == "compare":
            return _execute_compare(job, cache_dir, trace_dir)
        if job.kind == "validate":
            return _execute_validate(job.request)
        raise ServiceError(404, f"unknown job kind {job.kind!r}", "NotFound")
