"""Async jobs over the grid scheduling core: normalisation, dedup, scheduling.

A *job* is one submitted request (``recommend`` / ``compare`` / ``validate``)
flowing through ``queued -> running -> done | failed``.  The pieces:

* :func:`normalize_request` — validate a raw JSON body early (in the HTTP
  thread, so a bad spec is a 400, never a failed job) and reduce it to its
  canonical form: defaults applied, axes resolved, deterministic ordering.
* :func:`job_id_for` — the dedup key: the SHA-256 content hash of the
  canonical request (via the result cache's :func:`~repro.grid.cache
  .canonical_json`).  Two clients submitting the same spec — even one via
  ``{"grid": "tiny"}`` and one via the equivalent explicit axes — share one
  job and therefore one computation.  ``workers`` (pure parallelism, cannot
  change the result) stays out of the hash; everything else is in it.
* :class:`JobRegistry` — the scheduler: a bounded set of daemon worker
  threads draining a FIFO queue.  Submissions of an already-known job return
  it instead of enqueuing twice (a *failed* job is the exception: it is reset
  and retried).  Shutdown is graceful: sentinel-behind-the-queue, so queued
  and in-flight jobs drain before the workers exit.
* :func:`execute_job` — the per-kind executors.  Nothing is reimplemented:
  ``compare`` calls :func:`repro.grid.runner.run_grid` (the PR-5 supervisor,
  used here as a callable scheduling core, persistent
  :class:`~repro.grid.cache.ResultCache` included), ``recommend`` and
  ``validate`` call the :class:`~repro.core.advisor.LayoutAdvisor`.

Every state transition bumps a ``service.jobs.*`` counter and emits a
``service.job`` trace event (no-op unless a sink is active), so the service's
throughput and dedup effectiveness are observable exactly like the grid's
cache (``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import queue as queue_module
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.grid.cache import canonical_json
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Job kinds, one per exposed advisor entry point.
JOB_KINDS = ("recommend", "compare", "validate")

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

# Service-level throughput and dedup counters (docs/OBSERVABILITY.md).
_JOBS_SUBMITTED = obs_metrics.counter("service.jobs.submitted")
_JOBS_DEDUPED = obs_metrics.counter("service.jobs.deduped")
_JOBS_STARTED = obs_metrics.counter("service.jobs.started")
_JOBS_COMPLETED = obs_metrics.counter("service.jobs.completed")
_JOBS_FAILED = obs_metrics.counter("service.jobs.failed")
_JOBS_RETRIED = obs_metrics.counter("service.jobs.retried")
_JOB_SECONDS = obs_metrics.histogram("service.job.seconds")

#: Serialises traced job runs: the tracing sink is process-global, so two
#: concurrently traced ``run_grid`` calls would interleave their span stacks.
_TRACE_LOCK = threading.Lock()


class ServiceError(Exception):
    """A request error that maps onto an HTTP status and a JSON envelope."""

    def __init__(self, status: int, message: str, error_type: str = "BadRequest") -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type

    def to_envelope(self) -> Dict[str, object]:
        """The JSON error envelope body every error response carries."""
        return {
            "error": {
                "status": self.status,
                "type": self.error_type,
                "message": str(self),
            }
        }


def _jsonable(value: object) -> object:
    """Recursively coerce a result structure to plain JSON types.

    Library results carry numpy scalars (rank correlations, costs) and tuples
    (layout groups); the wire format wants floats, ints and lists.
    """
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    return str(value)


# -- request normalisation -----------------------------------------------------


def _require_mapping(body: object) -> Dict[str, object]:
    if not isinstance(body, dict):
        raise ServiceError(400, "request body must be a JSON object")
    return body


def _string_list(body: Dict[str, object], key: str) -> Optional[List[str]]:
    raw = body.get(key)
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(isinstance(item, str) for item in raw):
        raise ServiceError(400, f"{key!r} must be a list of strings")
    return list(raw)


def _bad_request(error: Exception) -> ServiceError:
    return ServiceError(400, str(error))


def _validate_algorithms(names: List[str]) -> None:
    from repro.core.algorithm import get_algorithm

    for name in names:
        try:
            get_algorithm(name)
        except (KeyError, ValueError) as error:
            raise _bad_request(error) from None


def _compare_spec(normalized: Dict[str, object]):
    """Rebuild the :class:`~repro.grid.spec.GridSpec` of a compare request."""
    from repro.grid.spec import GridSpec

    spec = normalized["spec"]
    return GridSpec(
        name=spec["name"],
        algorithms=spec["algorithms"],
        workloads=spec["workloads"],
        cost_models=spec["cost_models"],
        algorithm_options={
            name: dict(options) for name, options in spec["algorithm_options"]
        },
        backend=spec["backend"],
        measurement=dict(spec["measurement"]) or None,
    )


def _normalize_compare(body: Dict[str, object]) -> Dict[str, object]:
    from repro.grid.spec import GridError, GridSpec, builtin_grid

    grid_name = body.get("grid")
    algorithms = _string_list(body, "algorithms")
    workloads = _string_list(body, "workloads")
    cost_models = _string_list(body, "cost_models")
    measurement = body.get("measurement")
    if measurement is not None and not isinstance(measurement, dict):
        raise ServiceError(400, "'measurement' must be a JSON object")
    algorithm_options = body.get("algorithm_options") or {}
    if not isinstance(algorithm_options, dict):
        raise ServiceError(400, "'algorithm_options' must be a JSON object")
    try:
        if grid_name is not None:
            if not isinstance(grid_name, str):
                raise ServiceError(400, "'grid' must be a builtin grid name")
            base = builtin_grid(grid_name)
            spec = GridSpec(
                name=base.name,
                algorithms=algorithms or base.algorithms,
                workloads=workloads or base.workloads,
                cost_models=cost_models or base.cost_models,
                algorithm_options=dict(algorithm_options)
                or {name: dict(options) for name, options in base.algorithm_options},
                backend=body.get("backend", base.backend),
                measurement=measurement,
            )
        else:
            if not (algorithms and workloads and cost_models):
                raise ServiceError(
                    400,
                    "a compare request needs either 'grid' or all three of "
                    "'algorithms', 'workloads', 'cost_models'",
                )
            spec = GridSpec(
                name="service",
                algorithms=algorithms,
                workloads=workloads,
                cost_models=cost_models,
                algorithm_options=algorithm_options,
                backend=body.get("backend", "estimated"),
                measurement=measurement,
            )
    except GridError as error:
        raise _bad_request(error) from None
    # Resolve every axis value now: an unknown algorithm, workload or cost
    # model id must be a 400 at submission, not a failed job minutes later.
    from repro.grid.spec import resolve_cost_model, resolve_workload

    _validate_algorithms(list(spec.algorithms))
    try:
        for workload_id in spec.workloads:
            resolve_workload(workload_id)
        for cost_model_id in spec.cost_models:
            resolve_cost_model(cost_model_id)
    except GridError as error:
        raise _bad_request(error) from None
    run = {
        "workers": _int_field(body, "workers", default=1, minimum=1),
        "refresh": bool(body.get("refresh", False)),
        "retries": _int_field(body, "retries", default=0, minimum=0),
        "cell_timeout": _float_field(body, "cell_timeout"),
        "fail_fast": bool(body.get("fail_fast", False)),
    }
    return {
        "spec": {
            # The canonical (hash-stable) spec form: axes as lists, options
            # and measurement in the spec's own sorted-tuple canonical form.
            "name": spec.name,
            "algorithms": list(spec.algorithms),
            "workloads": list(spec.workloads),
            "cost_models": list(spec.cost_models),
            "algorithm_options": [
                [name, [[key, value] for key, value in options]]
                for name, options in spec.algorithm_options
            ],
            "backend": spec.backend,
            "measurement": [[key, value] for key, value in spec.measurement],
        },
        "run": run,
    }


def _int_field(
    body: Dict[str, object],
    key: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> Optional[int]:
    raw = body.get(key, default)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ServiceError(400, f"{key!r} must be an integer")
    if minimum is not None and raw < minimum:
        raise ServiceError(400, f"{key!r} must be >= {minimum}")
    return raw


def _float_field(body: Dict[str, object], key: str) -> Optional[float]:
    raw = body.get(key)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ServiceError(400, f"{key!r} must be a number")
    if raw <= 0:
        raise ServiceError(400, f"{key!r} must be > 0")
    return float(raw)


def _normalize_workload_and_model(
    body: Dict[str, object],
) -> Tuple[str, str]:
    from repro.grid.spec import GridError, resolve_cost_model, resolve_workload

    workload_id = body.get("workload")
    if not isinstance(workload_id, str) or not workload_id:
        raise ServiceError(400, "'workload' (a workload id string) is required")
    cost_model_id = body.get("cost_model", "hdd")
    if not isinstance(cost_model_id, str):
        raise ServiceError(400, "'cost_model' must be a cost model id string")
    try:
        resolve_workload(workload_id)
        resolve_cost_model(cost_model_id)
    except GridError as error:
        raise _bad_request(error) from None
    return workload_id, cost_model_id


def _normalize_recommend(body: Dict[str, object]) -> Dict[str, object]:
    from repro.core.advisor import DEFAULT_ALGORITHMS

    workload_id, cost_model_id = _normalize_workload_and_model(body)
    algorithms = _string_list(body, "algorithms") or list(DEFAULT_ALGORITHMS)
    _validate_algorithms(algorithms)
    options = body.get("algorithm_options") or {}
    if not isinstance(options, dict):
        raise ServiceError(400, "'algorithm_options' must be a JSON object")
    return {
        "workload": workload_id,
        "cost_model": cost_model_id,
        "algorithms": algorithms,
        "algorithm_options": options,
    }


def _normalize_validate(body: Dict[str, object]) -> Dict[str, object]:
    workload_id, cost_model_id = _normalize_workload_and_model(body)
    backend = body.get("backend", "measured")
    if backend not in ("measured", "sqlite"):
        raise ServiceError(
            400, f"unknown validation backend {backend!r}; use 'measured' or 'sqlite'"
        )
    page_size = _int_field(body, "page_size", minimum=512)
    if page_size is not None and backend != "sqlite":
        raise ServiceError(400, "'page_size' applies to backend 'sqlite' only")
    algorithms = _string_list(body, "algorithms")
    if algorithms is not None:
        _validate_algorithms(algorithms)
    if backend == "measured":
        # The measured backend needs a disk-based model; fail at submission.
        from repro.exec.validation import require_measurable
        from repro.grid.spec import resolve_cost_model

        try:
            require_measurable(resolve_cost_model(cost_model_id))
        except (TypeError, ValueError) as error:
            raise _bad_request(error) from None
    return {
        "workload": workload_id,
        "cost_model": cost_model_id,
        "backend": backend,
        "rows": _int_field(body, "rows", minimum=1),
        "data_seed": _int_field(body, "data_seed", default=0, minimum=0),
        "page_size": page_size,
        "algorithms": algorithms,
        "include_baselines": bool(body.get("include_baselines", True)),
    }


_NORMALIZERS: Dict[str, Callable[[Dict[str, object]], Dict[str, object]]] = {
    "recommend": _normalize_recommend,
    "compare": _normalize_compare,
    "validate": _normalize_validate,
}


def normalize_request(kind: str, body: object) -> Dict[str, object]:
    """Validate a raw request body and return its canonical form.

    Raises :class:`ServiceError` (status 400) for anything malformed —
    unknown ids included, so submission is the only place a typo can fail.
    """
    if kind not in JOB_KINDS:
        raise ServiceError(404, f"unknown job kind {kind!r}", "NotFound")
    return _NORMALIZERS[kind](_require_mapping(body))


def job_id_for(kind: str, normalized: Dict[str, object]) -> str:
    """The job's dedup key: a content hash of the canonical request.

    ``workers`` (compare only) is excluded — it is pure parallelism and
    cannot change the result, so a 1-worker and a 4-worker submission of the
    same spec share one job.
    """
    hashed = dict(normalized)
    run = hashed.get("run")
    if isinstance(run, dict):
        run = {key: value for key, value in run.items() if key != "workers"}
        hashed["run"] = run
    spec = hashed.get("spec")
    if isinstance(spec, dict):
        # The spec *name* is display-only ("tiny" vs an explicit submission
        # of the same axes must dedup onto one job).
        hashed["spec"] = {key: value for key, value in spec.items() if key != "name"}
    digest = hashlib.sha256(
        canonical_json({"kind": kind, "request": hashed}).encode("utf-8")
    ).hexdigest()
    return f"{kind}-{digest[:16]}"


# -- jobs and the registry -----------------------------------------------------


@dataclass
class Job:
    """One submitted request and everything known about its execution."""

    id: str
    kind: str
    request: Dict[str, object]
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: How many times this job has been submitted (dedup hits included).
    submissions: int = 1
    result: Optional[Dict[str, object]] = None
    #: ``{"type": ..., "message": ...}`` for failed jobs.
    error: Optional[Dict[str, str]] = None

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("done", "failed")

    @property
    def wall_seconds(self) -> Optional[float]:
        """Execution wall time (``None`` until the job finishes running)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self, include_result: bool = True) -> Dict[str, object]:
        """The job's JSON form; ``include_result=False`` for listings."""
        record: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "request": self.request,
            "submissions": self.submissions,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
        }
        if include_result:
            record["result"] = self.result
        return record


class JobRegistry:
    """In-memory job store plus the worker threads that execute jobs.

    ``runner`` maps a :class:`Job` to its result dict (see
    :func:`execute_job`); it runs on a registry worker thread.  The registry
    is the single synchronisation point: every state transition happens under
    its lock and wakes :meth:`wait_for` pollers.
    """

    def __init__(
        self,
        runner: Callable[[Job], Dict[str, object]],
        workers: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError("a job registry needs at least one worker thread")
        self._runner = runner
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue_module.Queue[Optional[str]]" = queue_module.Queue()
        self._shutting_down = False
        self.worker_count = workers
        self._threads = [
            threading.Thread(
                target=self._work, name=f"service-job-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ------------------------------------------------------------

    def submit(self, kind: str, body: object) -> Tuple[Job, bool]:
        """Normalise, dedup and enqueue one request.

        Returns ``(job, deduped)``: ``deduped`` is True when an identical
        submission was already known (the caller polls the shared job).  A
        previously *failed* job is reset and retried instead of being served
        stale.  Raises :class:`ServiceError` for invalid bodies (400) and
        after shutdown began (503).
        """
        normalized = normalize_request(kind, body)
        job_id = job_id_for(kind, normalized)
        with self._changed:
            if self._shutting_down:
                raise ServiceError(
                    503, "service is shutting down", "ServiceUnavailable"
                )
            existing = self._jobs.get(job_id)
            if existing is not None:
                existing.submissions += 1
                if existing.state == "failed":
                    # A failed job is retryable: reset and requeue.
                    existing.state = "queued"
                    existing.error = None
                    existing.result = None
                    existing.started_at = None
                    existing.finished_at = None
                    _JOBS_RETRIED.value += 1
                    obs_trace.event("service.job", job=job_id, state="requeued")
                    self._queue.put(job_id)
                    self._changed.notify_all()
                    return existing, False
                _JOBS_DEDUPED.value += 1
                obs_trace.event("service.job", job=job_id, state="deduped")
                return existing, True
            job = Job(id=job_id, kind=kind, request=normalized)
            self._jobs[job_id] = job
            self._order.append(job_id)
            _JOBS_SUBMITTED.value += 1
            obs_trace.event("service.job", job=job_id, state="queued")
            self._queue.put(job_id)
            self._changed.notify_all()
            return job, False

    # -- lookup ----------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """The job registered under ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, offset: int = 0, limit: int = 50) -> Tuple[List[Job], int]:
        """A page of jobs in submission order plus the total count."""
        offset = max(0, offset)
        limit = max(1, limit)
        with self._lock:
            ids = self._order[offset : offset + limit]
            return [self._jobs[job_id] for job_id in ids], len(self._order)

    def counts(self) -> Dict[str, int]:
        """Number of jobs per lifecycle state (all states always present)."""
        summary = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                summary[job.state] += 1
        return summary

    def wait_for(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until ``job_id`` reaches a terminal state (tests, CLIs)."""
        deadline = time.monotonic() + timeout
        with self._changed:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(f"unknown job {job_id!r}")
                if job.finished:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state} after {timeout:g}s"
                    )
                self._changed.wait(remaining)

    # -- execution -------------------------------------------------------------

    def _work(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._changed:
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue
                job.state = "running"
                job.started_at = time.time()
                _JOBS_STARTED.value += 1
                self._changed.notify_all()
            obs_trace.event("service.job", job=job_id, state="running")
            try:
                result = self._runner(job)
            except Exception as error:  # the job, not the worker, fails
                with self._changed:
                    job.state = "failed"
                    job.error = {
                        "type": type(error).__name__,
                        "message": str(error),
                    }
                    job.finished_at = time.time()
                    _JOBS_FAILED.value += 1
                    _JOB_SECONDS.observe(job.finished_at - job.started_at)
                    self._changed.notify_all()
                obs_trace.event(
                    "service.job", job=job_id, state="failed",
                    error=type(error).__name__,
                )
            else:
                with self._changed:
                    job.state = "done"
                    job.result = result
                    job.finished_at = time.time()
                    _JOBS_COMPLETED.value += 1
                    _JOB_SECONDS.observe(job.finished_at - job.started_at)
                    self._changed.notify_all()
                obs_trace.event("service.job", job=job_id, state="done")

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting submissions and drain the queue.

        The sentinels join the queue *behind* every already-queued job, so a
        graceful shutdown finishes queued and in-flight work before the
        worker threads exit.  ``wait=False`` just flips the accepting flag
        and enqueues the sentinels.
        """
        with self._changed:
            if self._shutting_down:
                wait_needed = wait
            else:
                self._shutting_down = True
                for _ in self._threads:
                    self._queue.put(None)
                wait_needed = wait
            self._changed.notify_all()
        if wait_needed:
            for thread in self._threads:
                thread.join(timeout)


# -- per-kind executors --------------------------------------------------------


def _execute_recommend(request: Dict[str, object]) -> Dict[str, object]:
    from repro.core.advisor import LayoutAdvisor
    from repro.grid.spec import resolve_cost_model, resolve_workload

    workload = resolve_workload(request["workload"])
    advisor = LayoutAdvisor(
        cost_model=resolve_cost_model(request["cost_model"]),
        algorithms=request["algorithms"],
        algorithm_options=request["algorithm_options"],
    )
    report = advisor.recommend(workload)
    layouts = {
        recommendation.algorithm: [
            list(group) for group in recommendation.partitioning.as_names()
        ]
        for recommendation in report.recommendations
    }
    rows = report.to_rows()
    for row in rows:
        row["layout"] = layouts[row["algorithm"]]
    best = report.best
    return _jsonable(
        {
            "workload": request["workload"],
            "cost_model": report.cost_model_description,
            "row_cost": report.row_cost,
            "column_cost": report.column_cost,
            "best": {
                "algorithm": best.algorithm,
                "estimated_cost": best.estimated_cost,
                "layout": layouts[best.algorithm],
            },
            "recommendations": rows,
        }
    )


def _execute_compare(
    job: Job,
    cache_dir: Optional[str],
    trace_dir: Optional[str],
) -> Dict[str, object]:
    from repro.grid.aggregate import headline_tables
    from repro.grid.runner import run_grid

    spec = _compare_spec(job.request)
    run = job.request["run"]
    trace_path = None
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = os.path.join(trace_dir, f"{job.id}.jsonl")
    lock = _TRACE_LOCK if trace_path is not None else None
    if lock is not None:
        lock.acquire()
    try:
        report = run_grid(
            spec,
            cache_dir=cache_dir,
            workers=run["workers"],
            refresh=run["refresh"],
            retries=run["retries"],
            cell_timeout=run["cell_timeout"],
            fail_fast=run["fail_fast"],
            trace=trace_path,
        )
    finally:
        if lock is not None:
            lock.release()
    cells = []
    for result in report.results:
        row: Dict[str, object] = {
            "label": result.cell.label,
            "key": result.key,
            "backend": result.cell.backend,
            "cached": result.cached,
            "attempts": result.attempts,
            "ok": result.ok,
        }
        if result.ok:
            row["estimated_cost"] = result.estimated_cost
            row["layout"] = [list(group) for group in result.layout]
        if result.failure is not None:
            row["failure"] = {
                "error_type": result.failure.error_type,
                "message": result.failure.message,
                "attempts": result.failure.attempts,
            }
        cells.append(row)
    return _jsonable(
        {
            "spec": dict(job.request["spec"]),
            "accounting": report.accounting(),
            "cache": {
                "hits": report.cache_hits,
                "computed": report.computed,
                "failed": report.failed,
                "hit_rate": report.hit_rate,
                "store_failures": report.cache_store_failures,
                "load_failures": report.cache_load_failures,
            },
            "cells": cells,
            "tables": headline_tables(report.results),
            "telemetry": report.telemetry.to_dict()
            if report.telemetry is not None
            else None,
            "trace_path": trace_path,
        }
    )


def _execute_validate(request: Dict[str, object]) -> Dict[str, object]:
    from repro.core.advisor import LayoutAdvisor
    from repro.grid.spec import resolve_cost_model, resolve_workload

    workload = resolve_workload(request["workload"])
    advisor = LayoutAdvisor(cost_model=resolve_cost_model(request["cost_model"]))
    report = advisor.validate_costs(
        workload,
        rows=request["rows"],
        data_seed=request["data_seed"],
        include_baselines=request["include_baselines"],
        algorithms=request["algorithms"],
        backend=request["backend"],
        page_size=request["page_size"],
    )
    result: Dict[str, object] = {
        "workload": request["workload"],
        "backend": request["backend"],
        "rank_correlation": report.rank_correlation,
        "rows": report.to_rows(),
        "tables": report.describe(),
    }
    if request["backend"] == "measured":
        result["mean_absolute_relative_error"] = report.mean_absolute_relative_error
        result["max_absolute_relative_error"] = report.max_absolute_relative_error
    return _jsonable(result)


def execute_job(
    job: Job,
    cache_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Execute one job on the calling thread and return its result dict.

    The dispatch target a :class:`JobRegistry` runner closes over; also
    usable directly (no HTTP, no registry) for tests and scripting.
    """
    with obs_trace.span("service.job", job=job.id, kind=job.kind):
        if job.kind == "recommend":
            return _execute_recommend(job.request)
        if job.kind == "compare":
            return _execute_compare(job, cache_dir, trace_dir)
        if job.kind == "validate":
            return _execute_validate(job.request)
        raise ServiceError(404, f"unknown job kind {job.kind!r}", "NotFound")
