"""The advisor as a service: an HTTP API over the grid scheduling core.

The library's entry points — :meth:`~repro.core.advisor.LayoutAdvisor
.recommend`, :meth:`~repro.core.advisor.LayoutAdvisor.compare`,
:meth:`~repro.core.advisor.LayoutAdvisor.validate_costs` — become remotely
consumable without adding a single dependency: the server is
``http.server.ThreadingHTTPServer``, requests and responses are JSON, and
long-running grid runs become *async jobs* polled by id.  See
``docs/SERVICE.md`` for the endpoint reference; quick orientation:

* :mod:`repro.service.jobs` — request normalisation, the content-hash job
  dedup key, the :class:`JobRegistry` (worker threads over a queue) and the
  per-kind executors that call into the existing library code
  (:func:`repro.grid.runner.run_grid` is the scheduling core; nothing is
  reimplemented).
* :mod:`repro.service.journal` — the :class:`JobJournal`, an append-only
  JSONL write-ahead log of job transitions; replayed at startup so a crashed
  or killed service restarts with its jobs (terminal ones with results,
  interrupted ones re-enqueued).
* :mod:`repro.service.faults` — deterministic service-level fault injection
  (``REPRO_SERVICE_FAULTS``): journal I/O failures, worker-thread death,
  slow jobs — the harness behind the chaos suite.
* :mod:`repro.service.app` — the HTTP layer: routes, JSON error envelopes,
  pagination, liveness/readiness health, backpressure (429 + Retry-After),
  job cancellation, graceful shutdown.
* ``python -m repro.service`` — the CLI (:mod:`repro.service.__main__`).

Two layers of result reuse stack up:

1. **Job dedup** (registry lifetime): the job id is the SHA-256 content hash
   of the normalised request, so two clients submitting the same spec share
   one job — one computation, two pollers.
2. **Result cache** (persistent): compare jobs run through the grid's
   :class:`~repro.grid.cache.ResultCache`, so a resubmission after a server
   restart recomputes nothing — every cell is a cache hit.

Concurrent jobs share one :func:`~repro.cost.evaluator.enable_cache_sharing`
evaluator pool per schema (switched on at server construction), mirroring
what grid worker processes do.
"""

from repro.service.app import (
    DEFAULT_PORT,
    LayoutAdvisorService,
    ServiceConfig,
    create_service,
)
from repro.service.jobs import (
    DEFAULT_BREAKER_THRESHOLD,
    JOB_KINDS,
    JOB_STATES,
    Job,
    JobCancelled,
    JobRegistry,
    ServiceError,
    execute_job,
    job_id_for,
    normalize_request,
)
from repro.service.journal import JobJournal, JournalReplay
from repro.service.faults import (
    ServiceFault,
    ServiceFaultPlan,
    ServiceFaultPlanError,
    WorkerThreadDeath,
)

__all__ = [
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_PORT",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JobRegistry",
    "JournalReplay",
    "LayoutAdvisorService",
    "ServiceConfig",
    "ServiceError",
    "ServiceFault",
    "ServiceFaultPlan",
    "ServiceFaultPlanError",
    "WorkerThreadDeath",
    "create_service",
    "execute_job",
    "job_id_for",
    "normalize_request",
]
