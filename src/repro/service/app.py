"""The HTTP layer: stdlib-only routes over the job registry.

The server is ``http.server.ThreadingHTTPServer`` — one thread per
connection, no framework, no new dependency.  Handler threads do only cheap
work (parse, validate, submit, look up); every computation runs on the
registry's worker threads, so a slow grid never blocks the accept loop.

Routes (``docs/SERVICE.md`` is the full reference):

======================  ======================================================
``POST /v1/recommend``  submit an advisor recommendation job
``POST /v1/compare``    submit a comparison-grid job (async by design)
``POST /v1/validate``   submit a cost-validation job
``GET /health``         liveness + job-state counts + uptime + durability
``GET /health/live``    bare liveness probe (200 while the process serves)
``GET /health/ready``   readiness probe (503 while draining or saturated)
``GET /v1/jobs``        paginated job listing (``offset`` / ``limit``)
``GET /v1/jobs/<id>``   one job, result included when finished
``DELETE /v1/jobs/<id>``  cancel a job (queued: immediately; running:
                          cooperatively)
======================  ======================================================

Submissions answer ``202 Accepted`` with the job document and a ``poll``
path; a deduped resubmission of a finished job carries the result
immediately.  Every error — malformed JSON, invalid spec, unknown path or
method, oversized body, a full queue — is a JSON envelope ``{"error":
{"status", "type", "message"}}`` with the matching status code; 429
responses additionally carry a ``Retry-After`` header (and ``retry_after``
envelope field) derived from the observed job-duration histogram.

Construction switches :func:`~repro.cost.evaluator.enable_cache_sharing` on
so concurrent jobs share one memoized evaluator pool per schema (exactly
what grid pool workers do); :meth:`LayoutAdvisorService.stop` restores the
previous setting and drains in-flight jobs before closing the socket.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.cost.evaluator import clear_shared_caches, enable_cache_sharing
from repro.obs import metrics as obs_metrics
from repro.service.jobs import (
    DEFAULT_BREAKER_THRESHOLD,
    JOB_KINDS,
    JobRegistry,
    ServiceError,
    execute_job,
)
from repro.service.journal import DEFAULT_FILENAME, JobJournal

#: Default TCP port of ``python -m repro.service``.
DEFAULT_PORT = 8137

#: Largest accepted request body; grid specs are tiny, so anything bigger
#: than this is a mistake (or abuse), answered with 413.
MAX_BODY_BYTES = 1 << 20

# HTTP-level throughput counters (docs/OBSERVABILITY.md).
_HTTP_REQUESTS = obs_metrics.counter("service.http.requests")
_HTTP_ERRORS = obs_metrics.counter("service.http.errors")
_HTTP_SECONDS = obs_metrics.histogram("service.http.seconds")


@dataclass
class ServiceConfig:
    """Everything a running service instance is configured by."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Result-cache root shared by every compare job; ``None`` disables the
    #: persistent cache (jobs still dedup in the registry).
    cache_dir: Optional[str] = ".grid-cache"
    #: Job worker threads (concurrent jobs, not HTTP connections).
    workers: int = 2
    #: Directory receiving one JSONL trace per compare job; ``None``: no
    #: tracing (traced runs are serialised — the trace sink is global).
    trace_dir: Optional[str] = None
    #: Echo one access-log line per request to stderr (off by default; the
    #: test suite and CI smoke drive the server hard).
    log_requests: bool = False
    #: Maximum queued (not yet running) jobs before submissions shed with
    #: 429 + ``Retry-After``; ``None``: unbounded (the PR-9 behaviour).
    max_queue_depth: Optional[int] = None
    #: Per-job wall-clock timeout (seconds); overrunning jobs are force-
    #: failed by the registry watchdog.  ``None``: no timeout.
    job_timeout: Optional[float] = None
    #: Whether to keep the durable job journal (requires ``cache_dir`` or an
    #: explicit ``journal_path`` for somewhere to put it).
    journal: bool = True
    #: Journal file path; defaults to ``<cache_dir>/service-journal.jsonl``.
    journal_path: Optional[str] = None
    #: Consecutive failures before a job is quarantined (circuit breaker).
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD

    def resolved_journal_path(self) -> Optional[str]:
        """Where the journal lives, or ``None`` when journalling is off."""
        if not self.journal:
            return None
        if self.journal_path is not None:
            return self.journal_path
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, DEFAULT_FILENAME)


class LayoutAdvisorService(ThreadingHTTPServer):
    """The advisor service: HTTP front end plus the job scheduling core."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServiceConfig) -> None:
        super().__init__((config.host, config.port), ServiceHandler)
        self.config = config
        self.started_at = time.time()
        if config.trace_dir is not None:
            os.makedirs(config.trace_dir, exist_ok=True)
        # One shared evaluator pool per schema for every concurrent job —
        # the service-lifetime equivalent of what each grid worker process
        # does for its own lifetime.
        self._previous_sharing = enable_cache_sharing(True)
        journal_path = config.resolved_journal_path()
        self.journal = (
            JobJournal(journal_path) if journal_path is not None else None
        )
        self.registry = JobRegistry(
            runner=lambda job: execute_job(
                job, cache_dir=config.cache_dir, trace_dir=config.trace_dir
            ),
            workers=config.workers,
            max_queue_depth=config.max_queue_depth,
            job_timeout=config.job_timeout,
            journal=self.journal,
            breaker_threshold=config.breaker_threshold,
        )
        self._serve_thread: Optional[threading.Thread] = None
        self._draining = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        """The service's base URL (port resolved, useful with ``port=0``)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_thread(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, the CLI)."""
        if self._serve_thread is not None:
            raise RuntimeError("service is already serving")
        thread = threading.Thread(
            target=self.serve_forever, name="service-http", daemon=True
        )
        self._serve_thread = thread
        thread.start()
        return thread

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain jobs, stop serving, restore globals.

        ``drain=True`` (the default) blocks until queued and in-flight jobs
        finish — no accepted work is lost.  ``drain=False`` stops the
        workers at the next queue sentinel without waiting.  ``/health/ready``
        answers 503 from the moment draining begins.
        """
        self._draining = True
        self.registry.shutdown(wait=drain, timeout=timeout)
        if self._serve_thread is not None:
            self.shutdown()
            self._serve_thread.join(timeout=5)
            self._serve_thread = None
        self.server_close()
        enable_cache_sharing(self._previous_sharing)
        if not self._previous_sharing:
            # Sharing was switched on for this service alone — release the
            # memoized evaluator profiles instead of retaining them for the
            # process lifetime.
            clear_shared_caches()

    # -- health ----------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """The ``GET /health`` document (liveness plus configuration)."""
        journal_doc: Optional[Dict[str, object]] = None
        if self.journal is not None:
            journal_doc = {
                "path": self.journal.path,
                "appends": self.journal.appends,
                "append_failures": self.journal.append_failures,
                "compactions": self.journal.compactions,
            }
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.registry.counts(),
            "job_workers": self.registry.worker_count,
            "cache_dir": self.config.cache_dir,
            "trace_dir": self.config.trace_dir,
            "queue": {
                "depth": self.registry.queue_depth(),
                "max_depth": self.registry.max_queue_depth,
            },
            "job_timeout": self.config.job_timeout,
            "recovered_jobs": self.registry.recovered,
            "journal": journal_doc,
        }

    def readiness(self) -> Tuple[bool, Dict[str, object]]:
        """The ``GET /health/ready`` verdict and document.

        Unready (503) while draining (shutdown began) or while the job queue
        is saturated — load balancers stop routing new submissions here, but
        the process stays *live* (``/health/live`` keeps answering 200) so
        pollers can still collect results.
        """
        draining = self._draining
        saturated = self.registry.saturated
        ready = not draining and not saturated
        return ready, {
            "status": "ready" if ready else "unready",
            "draining": draining,
            "saturated": saturated,
            "queue": {
                "depth": self.registry.queue_depth(),
                "max_depth": self.registry.max_queue_depth,
            },
        }


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests onto the service's registry."""

    # Keep-alive + mandatory Content-Length framing (every response is a
    # fully buffered JSON document, so the length is always known).
    protocol_version = "HTTP/1.1"
    server: LayoutAdvisorService

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.config.log_requests:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, error: ServiceError) -> None:
        _HTTP_ERRORS.value += 1
        headers = None
        if error.retry_after is not None:
            headers = {"Retry-After": str(error.retry_after)}
        self._send_json(error.status, error.to_envelope(), headers=headers)

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ServiceError(400, "invalid Content-Length header") from None
        if length <= 0:
            raise ServiceError(400, "request body must be a JSON object")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes", "PayloadTooLarge"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, f"request body is not valid JSON: {error}") from None

    def _query(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    def _int_query(self, query: Dict[str, str], key: str, default: int) -> int:
        raw = query.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ServiceError(400, f"query parameter {key!r} must be an integer") from None

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        started = time.perf_counter()
        _HTTP_REQUESTS.value += 1
        try:
            path, query = self._query()
            if path == "/health":
                self._send_json(200, self.server.health())
            elif path == "/health/live":
                self._send_json(200, {"status": "live"})
            elif path == "/health/ready":
                ready, document = self.server.readiness()
                self._send_json(200 if ready else 503, document)
            elif path == "/v1/jobs":
                offset = self._int_query(query, "offset", 0)
                limit = min(self._int_query(query, "limit", 50), 500)
                jobs, total = self.server.registry.jobs(offset=offset, limit=limit)
                self._send_json(
                    200,
                    {
                        "jobs": [job.to_dict(include_result=False) for job in jobs],
                        "total": total,
                        "offset": offset,
                        "limit": limit,
                    },
                )
            elif path.startswith("/v1/jobs/"):
                job_id = path[len("/v1/jobs/") :]
                job = self.server.registry.get(job_id)
                if job is None:
                    raise ServiceError(404, f"unknown job {job_id!r}", "NotFound")
                self._send_json(200, job.to_dict())
            else:
                raise ServiceError(404, f"no such path {path!r}", "NotFound")
        except ServiceError as error:
            self._send_error_envelope(error)
        finally:
            _HTTP_SECONDS.observe(time.perf_counter() - started)

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        started = time.perf_counter()
        _HTTP_REQUESTS.value += 1
        try:
            path, _ = self._query()
            if not path.startswith("/v1/"):
                raise ServiceError(404, f"no such path {path!r}", "NotFound")
            kind = path[len("/v1/") :]
            if kind not in JOB_KINDS:
                raise ServiceError(
                    404,
                    f"unknown job kind {kind!r}; available: {list(JOB_KINDS)}",
                    "NotFound",
                )
            body = self._read_json_body()
            job, deduped = self.server.registry.submit(kind, body)
            self._send_json(
                202,
                {
                    "job": job.to_dict(),
                    "deduped": deduped,
                    "poll": f"/v1/jobs/{job.id}",
                },
            )
        except ServiceError as error:
            self._send_error_envelope(error)
        finally:
            _HTTP_SECONDS.observe(time.perf_counter() - started)

    def do_DELETE(self) -> None:  # noqa: N802 (http.server naming)
        started = time.perf_counter()
        _HTTP_REQUESTS.value += 1
        try:
            path, _ = self._query()
            if not path.startswith("/v1/jobs/"):
                raise ServiceError(404, f"no such path {path!r}", "NotFound")
            job_id = path[len("/v1/jobs/") :]
            job, accepted = self.server.registry.cancel(job_id)
            self._send_json(
                202 if accepted else 200,
                {
                    "job": job.to_dict(include_result=False),
                    "cancelled": accepted,
                    "poll": f"/v1/jobs/{job.id}",
                },
            )
        except ServiceError as error:
            self._send_error_envelope(error)
        finally:
            _HTTP_SECONDS.observe(time.perf_counter() - started)


def create_service(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    cache_dir: Optional[str] = ".grid-cache",
    workers: int = 2,
    trace_dir: Optional[str] = None,
    log_requests: bool = False,
    max_queue_depth: Optional[int] = None,
    job_timeout: Optional[float] = None,
    journal: bool = True,
    journal_path: Optional[str] = None,
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
) -> LayoutAdvisorService:
    """Build a service bound to ``host:port`` (``port=0``: ephemeral port).

    The server is not serving yet: call :meth:`LayoutAdvisorService
    .serve_in_thread` (tests, embedding) or ``serve_forever`` (the CLI), and
    :meth:`LayoutAdvisorService.stop` to shut down gracefully.
    """
    return LayoutAdvisorService(
        ServiceConfig(
            host=host,
            port=port,
            cache_dir=cache_dir,
            workers=workers,
            trace_dir=trace_dir,
            log_requests=log_requests,
            max_queue_depth=max_queue_depth,
            job_timeout=job_timeout,
            journal=journal,
            journal_path=journal_path,
            breaker_threshold=breaker_threshold,
        )
    )
