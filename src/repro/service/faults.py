"""Deterministic fault injection for the advisor service's robustness layer.

The grid has :mod:`repro.grid.faults` — per-cell raise/transient/hang/die
plans that make every failure path of the runner reproducibly testable.  This
module is the same idea one level up, at the *service* seams: the job
journal's disk writes, the registry's worker threads, and job execution
latency.  The chaos suite (``tests/integration/test_service_chaos.py``) and
the blocking ``service-chaos`` CI job drive the service through journal
I/O failures, worker-thread deaths and slow jobs — then kill and restart the
process — asserting that no accepted job is ever silently lost.

Plans travel through the :data:`ENV_VAR` environment variable as canonical
JSON, mirroring ``REPRO_GRID_FAULTS``: a plan set before ``python -m
repro.service`` boots is active for the process lifetime, and tests can use
the :func:`injected` context manager in-process.

A plan maps *sites* to faults.  Sites are fixed instrumentation points:

``journal.append``
    Fires inside :meth:`repro.service.journal.JobJournal.append`, before the
    write.  ``oserror`` faults exercise journal degradation: the append is
    counted as failed, the service keeps running, and the journal resumes on
    the next successful write.
``job.start``
    Fires on the registry worker thread immediately before a job executes.
    ``slow`` faults make the job take ``seconds`` longer (deterministic
    latency for timeout/backpressure tests); ``die`` faults raise
    :class:`WorkerThreadDeath` — a ``BaseException`` — exercising the
    registry's finalise-in-``finally`` guarantee and worker respawn.

Fault kinds (``kind``):

=============  ==============================================================
``oserror``    raise :class:`OSError` at the site (journal degradation)
``slow``       sleep ``seconds`` at the site (slow jobs, timeout tests)
``die``        raise :class:`WorkerThreadDeath` (worker-thread death)
=============  ==============================================================

Every fault fires on the first ``times`` occurrences of its site (counted
process-locally from zero, so runs are deterministic); ``times: null`` (the
default) fires on every occurrence.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

#: Environment variable carrying the installed plan as canonical JSON.
ENV_VAR = "REPRO_SERVICE_FAULTS"

#: Valid instrumentation sites.
SITES = ("journal.append", "job.start")

#: Valid fault kinds.
KINDS = ("oserror", "slow", "die")


class ServiceFaultPlanError(ValueError):
    """Raised when a service fault plan (mapping or JSON) does not validate."""


class WorkerThreadDeath(BaseException):
    """The ``die`` fault: a non-``Exception`` escaping on a worker thread.

    Deliberately a :class:`BaseException` subclass — the registry's
    finalisation must survive exactly this shape (a ``KeyboardInterrupt``
    delivered to a worker thread is the real-world equivalent), recording the
    job as failed before the thread unwinds.
    """


@dataclass(frozen=True)
class ServiceFault:
    """One injected fault: what goes wrong at a site and how often.

    ``times`` bounds how many occurrences of the site fire the fault
    (``None``: every occurrence).  ``seconds`` is read by ``slow`` faults;
    ``message`` joins the raised error text so tests can assert on it.
    """

    kind: str
    seconds: float = 0.0
    times: Optional[int] = None
    message: str = "injected service fault"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServiceFaultPlanError(
                f"unknown service fault kind {self.kind!r}; valid: {list(KINDS)}"
            )
        if self.kind == "slow" and self.seconds <= 0:
            raise ServiceFaultPlanError("slow faults need seconds > 0")
        if self.times is not None and self.times < 1:
            raise ServiceFaultPlanError("times must be >= 1 (or null for always)")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "seconds": self.seconds,
            "times": self.times,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "ServiceFault":
        """Build a fault from a plain mapping, validating every field."""
        if not isinstance(raw, Mapping):
            raise ServiceFaultPlanError(f"a fault must be a mapping, got {raw!r}")
        unknown = set(raw) - {"kind", "seconds", "times", "message"}
        if unknown:
            raise ServiceFaultPlanError(f"unknown fault fields {sorted(unknown)}")
        if "kind" not in raw:
            raise ServiceFaultPlanError(f"fault {dict(raw)!r} names no kind")
        times = raw.get("times")
        try:
            return cls(
                kind=str(raw["kind"]),
                seconds=float(raw.get("seconds", 0.0)),
                times=None if times is None else int(times),
                message=str(raw.get("message", "injected service fault")),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, ServiceFaultPlanError):
                raise
            raise ServiceFaultPlanError(
                f"invalid fault {dict(raw)!r}: {error}"
            ) from None


class ServiceFaultPlan:
    """An immutable mapping from site to the fault injected there."""

    def __init__(self, faults: Mapping[str, ServiceFault]) -> None:
        for site, fault in faults.items():
            if site not in SITES:
                raise ServiceFaultPlanError(
                    f"unknown fault site {site!r}; valid: {list(SITES)}"
                )
            if not isinstance(fault, ServiceFault):
                raise ServiceFaultPlanError(
                    f"plan entry {site!r} is not a ServiceFault: {fault!r}"
                )
        self._faults: Dict[str, ServiceFault] = dict(faults)

    @classmethod
    def from_mapping(
        cls, raw: Mapping[str, Mapping[str, object]]
    ) -> "ServiceFaultPlan":
        """Build a plan from ``{site: {"kind": ..., ...}}`` plain dicts."""
        if not isinstance(raw, Mapping):
            raise ServiceFaultPlanError(
                f"a fault plan must be a mapping, got {raw!r}"
            )
        return cls(
            {
                str(site): fault
                if isinstance(fault, ServiceFault)
                else ServiceFault.from_dict(fault)
                for site, fault in raw.items()
            }
        )

    def get(self, site: str) -> Optional[ServiceFault]:
        """The fault injected at ``site``, or ``None``."""
        return self._faults.get(site)

    def sites(self) -> Tuple[str, ...]:
        """The sites the plan injects at, sorted."""
        return tuple(sorted(self._faults))

    def __len__(self) -> int:
        return len(self._faults)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ServiceFaultPlan) and self._faults == other._faults
        )

    def to_json(self) -> str:
        """Canonical JSON form (what :func:`install` puts in the environment)."""
        return json.dumps(
            {site: fault.to_dict() for site, fault in self._faults.items()},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, raw: str) -> "ServiceFaultPlan":
        """Parse a plan from its JSON form, validating it."""
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServiceFaultPlanError(
                f"service fault plan is not valid JSON: {error}"
            ) from None
        return cls.from_mapping(decoded)


def coerce_plan(
    faults: "ServiceFaultPlan | Mapping[str, object] | None",
) -> Optional[ServiceFaultPlan]:
    """A :class:`ServiceFaultPlan` from a plan, a plain mapping, or ``None``."""
    if faults is None or isinstance(faults, ServiceFaultPlan):
        return faults
    return ServiceFaultPlan.from_mapping(faults)


# -- installation, occurrence accounting, triggering ---------------------------

#: Parse cache: the last seen raw environment value and its parsed plan.
_parsed: Tuple[Optional[str], Optional[ServiceFaultPlan]] = (None, None)

#: Occurrences seen per site this process (deterministic ``times`` windows).
_occurrences: Dict[str, int] = {}
_occurrences_lock = threading.Lock()


def install(plan: Optional[ServiceFaultPlan]) -> None:
    """Install ``plan`` into the environment (``None`` uninstalls)."""
    if plan is None or len(plan) == 0:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = plan.to_json()


def active_plan() -> Optional[ServiceFaultPlan]:
    """The installed plan, parsed from the environment (or ``None``).

    A malformed plan raises :class:`ServiceFaultPlanError` loudly — a chaos
    harness that silently ignores a typo would pass vacuously.
    """
    global _parsed
    raw = os.environ.get(ENV_VAR)
    if raw is None or not raw.strip():
        return None
    cached_raw, cached_plan = _parsed
    if raw == cached_raw:
        return cached_plan
    plan = ServiceFaultPlan.from_json(raw)
    _parsed = (raw, plan)
    return plan


def reset_occurrences() -> None:
    """Zero the per-site occurrence counters (test isolation)."""
    with _occurrences_lock:
        _occurrences.clear()


@contextmanager
def injected(
    faults: "ServiceFaultPlan | Mapping[str, object] | None",
) -> Iterator[Optional[ServiceFaultPlan]]:
    """Install a plan for a ``with`` block, then restore the previous one.

    Occurrence counters are reset on entry so each injection block starts a
    fresh deterministic ``times`` window.
    """
    plan = coerce_plan(faults)
    previous = os.environ.get(ENV_VAR)
    install(plan)
    reset_occurrences()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        reset_occurrences()


def maybe_trigger(site: str) -> None:
    """Fire the installed fault for ``site``, if any applies now.

    Called at each instrumentation point.  Increments the site's occurrence
    counter only when a fault is installed for the site, so ``times`` windows
    count fault-eligible occurrences and are independent of unrelated
    activity before the plan was installed.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.get(site)
    if fault is None:
        return
    with _occurrences_lock:
        occurrence = _occurrences.get(site, 0) + 1
        _occurrences[site] = occurrence
    if fault.times is not None and occurrence > fault.times:
        return
    if fault.kind == "oserror":
        raise OSError(f"{fault.message} (injected at {site})")
    if fault.kind == "slow":
        time.sleep(fault.seconds)
        return
    if fault.kind == "die":
        raise WorkerThreadDeath(f"{fault.message} (injected at {site})")
    raise ServiceFaultPlanError(  # pragma: no cover - guarded by __post_init__
        f"unknown fault kind {fault.kind!r}"
    )
