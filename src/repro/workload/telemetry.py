"""Wide-sparse telemetry workload generator.

A scenario class neither TPC-H nor SSB covers: telemetry/observability tables
are *wide* (tens to hundreds of sensor channels) and their query footprints
are *sparse* — each dashboard panel reads the record spine (timestamp, device)
plus a small cluster of correlated channels, and most channels are read rarely
or never.  Vertical partitioning shines here because a row layout drags the
whole wide row through the buffer for every panel, while the per-panel channel
clusters are natural column groups.

The generator is deterministic for a given seed:

* the schema is a ``ts``/``device_id``/``site`` spine followed by
  ``num_channels`` sensor columns whose widths are drawn from typical
  telemetry encodings (4/8-byte numerics with occasional wide diagnostic
  strings);
* queries model dashboard *panels*: each panel owns a contiguous-ish cluster
  of channels (correlated sensors are registered together, so neighbouring
  columns correlate) and reads the spine plus that cluster;
* a few *hot* panels carry most of the weight (dashboards auto-refresh; ad-hoc
  panels do not), giving the skewed access distribution real deployments show.
"""

from __future__ import annotations

from typing import List, Optional

from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.synthetic import RandomState, _rng
from repro.workload.workload import Workload

#: Channel byte widths, sampled with the given probabilities: mostly 4/8-byte
#: numerics, occasionally a 32-byte diagnostic string column.
_CHANNEL_WIDTHS = (4, 8, 32)
_CHANNEL_WIDTH_PROBABILITIES = (0.5, 0.4, 0.1)

#: The record spine every panel reads.
_SPINE = (("ts", 8, "bigint"), ("device_id", 4, "int"), ("site", 12, "char(12)"))


def telemetry_schema(
    num_channels: int = 40,
    row_count: int = 10_000_000,
    name: str = "telemetry",
    random_state: RandomState = 0,
) -> TableSchema:
    """A wide telemetry table: the spine plus ``num_channels`` sensor columns."""
    if num_channels < 1:
        raise ValueError("num_channels must be >= 1")
    rng = _rng(random_state)
    columns: List[Column] = [
        Column(name=col_name, width=width, sql_type=sql_type)
        for col_name, width, sql_type in _SPINE
    ]
    for c in range(num_channels):
        width = int(
            rng.choice(_CHANNEL_WIDTHS, p=_CHANNEL_WIDTH_PROBABILITIES)
        )
        columns.append(Column(name=f"s{c + 1}", width=width, sql_type="sensor"))
    return TableSchema(name=name, columns=columns, row_count=row_count)


def telemetry_workload(
    num_channels: int = 40,
    num_panels: int = 10,
    min_panel_channels: int = 2,
    max_panel_channels: int = 5,
    hot_panels: int = 2,
    hot_weight: float = 10.0,
    row_count: int = 10_000_000,
    random_state: RandomState = 0,
    name: str = "telemetry",
    schema: Optional[TableSchema] = None,
) -> Workload:
    """Dashboard panels over a wide-sparse telemetry table.

    Each panel reads the spine plus a cluster of ``min_panel_channels`` to
    ``max_panel_channels`` channels anchored at a random position (neighbouring
    channels correlate, so clusters are contiguous with occasional outliers).
    The first ``hot_panels`` panels are weighted ``hot_weight``; the rest
    weigh 1.  The same seed drives both schema and panels, so a single
    ``random_state`` fully determines the workload.
    """
    if num_panels < 1:
        raise ValueError("num_panels must be >= 1")
    if not 1 <= min_panel_channels <= max_panel_channels:
        raise ValueError("need 1 <= min_panel_channels <= max_panel_channels")
    rng = _rng(random_state)
    if schema is None:
        schema = telemetry_schema(
            num_channels=num_channels, row_count=row_count, random_state=rng
        )
    # Channels are everything after the spine (a name-prefix test would
    # wrongly sweep the spine column "site" into the channel pool).
    channel_names = [c.name for c in schema.columns[len(_SPINE):]]
    spine_names = [col_name for col_name, _, _ in _SPINE]
    num_channels = len(channel_names)

    queries: List[Query] = []
    for panel in range(num_panels):
        size = int(
            rng.integers(min_panel_channels, min(max_panel_channels, num_channels) + 1)
        )
        anchor = int(rng.integers(0, num_channels))
        cluster = [channel_names[(anchor + offset) % num_channels] for offset in range(size)]
        # One outlier channel per ~4 panels: a cross-subsystem correlation.
        if rng.random() < 0.25:
            cluster.append(channel_names[int(rng.integers(0, num_channels))])
        weight = hot_weight if panel < hot_panels else 1.0
        queries.append(
            Query(
                name=f"P{panel + 1}",
                attributes=spine_names + cluster,
                weight=weight,
            )
        )
    return Workload(schema=schema, queries=queries, name=name)


def small_telemetry_workload(random_state: RandomState = 0) -> Workload:
    """A small preset (13 attributes) sized for smoke grids and CI."""
    return telemetry_workload(
        num_channels=10,
        num_panels=6,
        max_panel_channels=4,
        row_count=2_000_000,
        random_state=random_state,
        name="telemetry-small",
    )


def wide_telemetry_workload(random_state: RandomState = 0) -> Workload:
    """The headline preset: 43 attributes, 10 panels, skewed weights."""
    return telemetry_workload(random_state=random_state, name="telemetry-wide")
