"""Star Schema Benchmark (SSB) schema and workload.

The paper uses the SSB (O'Neil et al.) as a second benchmark in Table 5
because its 13 queries have *less fragmented* attribute access patterns than
TPC-H, which lets wider column groups pay off slightly more (up to 5.29%
improvement over a pure column layout instead of 3.71%).

As for TPC-H, a query is represented by its attribute footprint per table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.workload.query import Query
from repro.workload.schema import Column, Database, TableSchema
from repro.workload.workload import Workload

#: Base row counts at scale factor 1.
_BASE_ROW_COUNTS = {
    "lineorder": 6_000_000,
    "customer": 30_000,
    "supplier": 2_000,
    "part": 200_000,
    "date": 2_556,
}

#: Tables whose row counts do not change with the scale factor.
FIXED_SIZE_TABLES = frozenset({"date"})

_TABLE_COLUMNS: Dict[str, Sequence] = {
    "lineorder": [
        ("orderkey", "int", 0),
        ("linenumber", "int", 0),
        ("custkey", "int", 0),
        ("partkey", "int", 0),
        ("suppkey", "int", 0),
        ("orderdate", "int", 0),
        ("orderpriority", "char", 15),
        ("shippriority", "char", 1),
        ("quantity", "int", 0),
        ("extendedprice", "int", 0),
        ("ordtotalprice", "int", 0),
        ("discount", "int", 0),
        ("revenue", "int", 0),
        ("supplycost", "int", 0),
        ("tax", "int", 0),
        ("commitdate", "int", 0),
        ("shipmode", "char", 10),
    ],
    "customer": [
        ("custkey", "int", 0),
        ("name", "varchar", 25),
        ("address", "varchar", 25),
        ("city", "char", 10),
        ("nation", "char", 15),
        ("region", "char", 12),
        ("phone", "char", 15),
        ("mktsegment", "char", 10),
    ],
    "supplier": [
        ("suppkey", "int", 0),
        ("name", "char", 25),
        ("address", "varchar", 25),
        ("city", "char", 10),
        ("nation", "char", 15),
        ("region", "char", 12),
        ("phone", "char", 15),
    ],
    "part": [
        ("partkey", "int", 0),
        ("name", "varchar", 22),
        ("mfgr", "char", 6),
        ("category", "char", 7),
        ("brand1", "char", 9),
        ("color", "varchar", 11),
        ("type", "varchar", 25),
        ("size", "int", 0),
        ("container", "char", 10),
    ],
    "date": [
        ("datekey", "int", 0),
        ("date", "char", 18),
        ("dayofweek", "char", 9),
        ("month", "char", 9),
        ("year", "int", 0),
        ("yearmonthnum", "int", 0),
        ("yearmonth", "char", 7),
        ("daynuminweek", "int", 0),
        ("daynuminmonth", "int", 0),
        ("daynuminyear", "int", 0),
        ("monthnuminyear", "int", 0),
        ("weeknuminyear", "int", 0),
        ("sellingseason", "varchar", 12),
        ("lastdayinweekfl", "char", 1),
        ("lastdayinmonthfl", "char", 1),
        ("holidayfl", "char", 1),
        ("weekdayfl", "char", 1),
    ],
}

#: Footprints of the 13 SSB queries (flights 1-4).
SSB_QUERY_FOOTPRINTS: Dict[str, Dict[str, List[str]]] = {
    "Q1.1": {
        "lineorder": ["extendedprice", "discount", "orderdate", "quantity"],
        "date": ["datekey", "year"],
    },
    "Q1.2": {
        "lineorder": ["extendedprice", "discount", "orderdate", "quantity"],
        "date": ["datekey", "yearmonthnum"],
    },
    "Q1.3": {
        "lineorder": ["extendedprice", "discount", "orderdate", "quantity"],
        "date": ["datekey", "weeknuminyear", "year"],
    },
    "Q2.1": {
        "lineorder": ["revenue", "orderdate", "partkey", "suppkey"],
        "date": ["datekey", "year"],
        "part": ["partkey", "category", "brand1"],
        "supplier": ["suppkey", "region"],
    },
    "Q2.2": {
        "lineorder": ["revenue", "orderdate", "partkey", "suppkey"],
        "date": ["datekey", "year"],
        "part": ["partkey", "brand1"],
        "supplier": ["suppkey", "region"],
    },
    "Q2.3": {
        "lineorder": ["revenue", "orderdate", "partkey", "suppkey"],
        "date": ["datekey", "year"],
        "part": ["partkey", "brand1"],
        "supplier": ["suppkey", "region"],
    },
    "Q3.1": {
        "lineorder": ["custkey", "suppkey", "orderdate", "revenue"],
        "customer": ["custkey", "region", "nation"],
        "supplier": ["suppkey", "region", "nation"],
        "date": ["datekey", "year"],
    },
    "Q3.2": {
        "lineorder": ["custkey", "suppkey", "orderdate", "revenue"],
        "customer": ["custkey", "nation", "city"],
        "supplier": ["suppkey", "nation", "city"],
        "date": ["datekey", "year"],
    },
    "Q3.3": {
        "lineorder": ["custkey", "suppkey", "orderdate", "revenue"],
        "customer": ["custkey", "city"],
        "supplier": ["suppkey", "city"],
        "date": ["datekey", "year"],
    },
    "Q3.4": {
        "lineorder": ["custkey", "suppkey", "orderdate", "revenue"],
        "customer": ["custkey", "city"],
        "supplier": ["suppkey", "city"],
        "date": ["datekey", "yearmonth", "year"],
    },
    "Q4.1": {
        "lineorder": [
            "custkey", "suppkey", "partkey", "orderdate", "revenue", "supplycost",
        ],
        "customer": ["custkey", "region", "nation"],
        "supplier": ["suppkey", "region"],
        "part": ["partkey", "mfgr"],
        "date": ["datekey", "year"],
    },
    "Q4.2": {
        "lineorder": [
            "custkey", "suppkey", "partkey", "orderdate", "revenue", "supplycost",
        ],
        "customer": ["custkey", "region"],
        "supplier": ["suppkey", "region", "nation"],
        "part": ["partkey", "mfgr", "category"],
        "date": ["datekey", "year"],
    },
    "Q4.3": {
        "lineorder": [
            "custkey", "suppkey", "partkey", "orderdate", "revenue", "supplycost",
        ],
        "customer": ["custkey", "region"],
        "supplier": ["suppkey", "nation", "city"],
        "part": ["partkey", "category", "brand1"],
        "date": ["datekey", "year"],
    },
}

#: Canonical query order.
SSB_QUERY_ORDER = tuple(SSB_QUERY_FOOTPRINTS)

#: The paper's default scale factor (matching TPC-H SF 10).
DEFAULT_SCALE_FACTOR = 10.0


def _row_count(table: str, scale_factor: float) -> int:
    base = _BASE_ROW_COUNTS[table]
    if table in FIXED_SIZE_TABLES:
        return base
    return max(1, int(round(base * scale_factor)))


def table_schema(table: str, scale_factor: float = DEFAULT_SCALE_FACTOR) -> TableSchema:
    """Schema of one SSB table at the given scale factor."""
    if table not in _TABLE_COLUMNS:
        raise KeyError(f"unknown SSB table {table!r}")
    columns = [
        Column.of_type(name, sql_type, length)
        for name, sql_type, length in _TABLE_COLUMNS[table]
    ]
    return TableSchema(
        name=f"ssb_{table}",
        columns=columns,
        row_count=_row_count(table, scale_factor),
    )


def ssb_database(scale_factor: float = DEFAULT_SCALE_FACTOR) -> Database:
    """The full SSB schema as a :class:`~repro.workload.schema.Database`."""
    database = Database(name=f"ssb-sf{scale_factor:g}")
    for table in _TABLE_COLUMNS:
        database.add(table_schema(table, scale_factor))
    return database


def table_names() -> List[str]:
    """All SSB table names in canonical order."""
    return list(_TABLE_COLUMNS)


def queries_for_table(table: str) -> List[Query]:
    """The SSB queries that touch ``table``, as per-table footprints."""
    if table not in _TABLE_COLUMNS:
        raise KeyError(f"unknown SSB table {table!r}")
    queries = []
    for query_name in SSB_QUERY_ORDER:
        footprint = SSB_QUERY_FOOTPRINTS[query_name]
        if table in footprint:
            queries.append(Query(name=query_name, attributes=footprint[table]))
    return queries


def ssb_workload(table: str, scale_factor: float = DEFAULT_SCALE_FACTOR) -> Workload:
    """Workload of one SSB table."""
    queries = queries_for_table(table)
    schema = table_schema(table, scale_factor)
    if not queries:
        queries = [Query(name="Q0", attributes=[schema.attribute_names[0]])]
    return Workload(schema=schema, queries=queries, name=f"ssb-{table}")


def ssb_workloads(scale_factor: float = DEFAULT_SCALE_FACTOR) -> Dict[str, Workload]:
    """Per-table workloads for every SSB table."""
    workloads = {}
    for table in _TABLE_COLUMNS:
        queries = queries_for_table(table)
        if not queries:
            continue
        workloads[table] = Workload(
            schema=table_schema(table, scale_factor),
            queries=queries,
            name=f"ssb-{table}",
        )
    return workloads
