"""Workload model: table schemas, queries, and benchmark workloads.

This package provides the inputs a vertical partitioning algorithm works on:

* :class:`~repro.workload.schema.Column` and
  :class:`~repro.workload.schema.TableSchema` describe a logical relation
  (attribute names, byte widths, row count).
* :class:`~repro.workload.query.Query` describes one query's attribute
  footprint on one table, together with its weight (frequency).
* :class:`~repro.workload.workload.Workload` bundles queries against a single
  table and exposes the derived structures the algorithms need (usage matrix,
  affinity matrix, primary partitions).

Concrete benchmark workloads live in :mod:`repro.workload.tpch` (the 22-query
TPC-H benchmark used throughout the paper), :mod:`repro.workload.ssb` (the
Star Schema Benchmark used in Table 5), :mod:`repro.workload.synthetic`
(random workload generators used by the test suite), and the parameterised
scenario generators :mod:`repro.workload.star` (synthetic SSB-style star
schemas) and :mod:`repro.workload.telemetry` (wide-sparse telemetry tables)
used by the comparison grid.
"""

from repro.workload.schema import Column, TableSchema
from repro.workload.query import Query
from repro.workload.workload import Workload
from repro.workload import tpch, ssb, star, synthetic, telemetry

__all__ = [
    "Column",
    "TableSchema",
    "Query",
    "Workload",
    "tpch",
    "ssb",
    "star",
    "synthetic",
    "telemetry",
]
