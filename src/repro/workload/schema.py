"""Logical table schemas.

A vertical partitioning algorithm only needs three facts about a table: the
names of its attributes, their byte widths (the width a row of a column group
occupies on disk or in memory), and the number of rows.  ``TableSchema``
captures exactly that and nothing else, so the same schema object can feed the
analytical cost models, the storage simulator and the algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


#: Byte widths used for the common SQL data types.  The values follow the
#: fixed-width encoding assumed by the paper's cost model: fixed-size numeric
#: and date types use their natural binary width, character types use their
#: declared maximum length.
TYPE_WIDTHS = {
    "int": 4,
    "integer": 4,
    "bigint": 8,
    "decimal": 8,
    "double": 8,
    "float": 8,
    "date": 4,
    "bool": 1,
    "char": 1,
}


class SchemaError(ValueError):
    """Raised when a schema definition is inconsistent."""


def mask_of(indices: Iterable[int]) -> int:
    """Integer bitmask of a set of attribute indices (bit ``i`` = attribute ``i``).

    Lives here (the dependency-free bottom of the layering) so that queries,
    partitions and the cost evaluator all share one definition.
    """
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def indices_of_mask(mask: int) -> Tuple[int, ...]:
    """Attribute indices of a bitmask, in increasing order."""
    if mask < 0:
        raise ValueError(f"attribute bitmask must be non-negative, got {mask}")
    indices = []
    index = 0
    while mask:
        if mask & 1:
            indices.append(index)
        mask >>= 1
        index += 1
    return tuple(indices)


@dataclass(frozen=True)
class Column:
    """One attribute of a logical relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its table.
    width:
        Number of bytes one value of this attribute occupies in a stored row
        of a column group.
    sql_type:
        Optional human-readable SQL type, kept for documentation and for the
        storage simulator's data generator.
    """

    name: str
    width: int
    sql_type: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.width <= 0:
            raise SchemaError(
                f"column {self.name!r} must have a positive width, got {self.width}"
            )

    @classmethod
    def of_type(cls, name: str, sql_type: str, length: int = 1) -> "Column":
        """Build a column from a SQL type name.

        ``char``/``varchar`` types multiply the base width by ``length``; all
        other types ignore ``length``.
        """
        base = sql_type.lower().split("(")[0].strip()
        if base in ("char", "varchar", "text", "string"):
            width = max(1, length)
            return cls(name=name, width=width, sql_type=f"{base}({length})")
        if base not in TYPE_WIDTHS:
            raise SchemaError(f"unknown SQL type {sql_type!r} for column {name!r}")
        return cls(name=name, width=TYPE_WIDTHS[base], sql_type=base)


@dataclass(frozen=True)
class TableSchema:
    """A logical relation: an ordered list of columns plus a row count.

    The attribute order is significant only as a canonical naming order;
    algorithms are free to permute attributes (Navathe and O2P do exactly
    that via affinity clustering).
    """

    name: str
    columns: Tuple[Column, ...]
    row_count: int

    def __init__(self, name: str, columns: Sequence[Column], row_count: int) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        if row_count < 0:
            raise SchemaError(f"table {name!r} must have a non-negative row count")
        names = [column.name for column in columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(
                f"table {name!r} has duplicate column names: {sorted(duplicates)}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "row_count", int(row_count))

    # -- basic introspection ------------------------------------------------

    @property
    def attribute_count(self) -> int:
        """Number of attributes in the table."""
        return len(self.columns)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(column.name for column in self.columns)

    @property
    def row_size(self) -> int:
        """Width in bytes of a full row (all attributes)."""
        return sum(column.width for column in self.columns)

    @property
    def total_bytes(self) -> int:
        """Total size of the table in bytes under a row layout."""
        return self.row_size * self.row_count

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    # -- lookups ------------------------------------------------------------

    def index_of(self, attribute: str) -> int:
        """Return the positional index of ``attribute``.

        Raises :class:`SchemaError` if the attribute does not exist, naming
        the table to make workload-definition typos easy to locate.
        """
        for index, column in enumerate(self.columns):
            if column.name == attribute:
                return index
        raise SchemaError(f"table {self.name!r} has no attribute {attribute!r}")

    def indices_of(self, attributes: Iterable[str]) -> Tuple[int, ...]:
        """Map attribute names to a sorted tuple of positional indices."""
        return tuple(sorted(self.index_of(attribute) for attribute in attributes))

    def column_at(self, index: int) -> Column:
        """Return the column at positional ``index``."""
        return self.columns[index]

    def width_of(self, index: int) -> int:
        """Byte width of the attribute at positional ``index``."""
        return self.columns[index].width

    def widths(self) -> Tuple[int, ...]:
        """Byte widths of all attributes in schema order."""
        return tuple(column.width for column in self.columns)

    def subset_row_size(self, indices: Iterable[int]) -> int:
        """Row width of the column group formed by ``indices``."""
        return sum(self.columns[index].width for index in indices)

    # -- derived schemas ----------------------------------------------------

    def scaled(self, factor: float) -> "TableSchema":
        """Return a copy with the row count scaled by ``factor``.

        Used to emulate different TPC-H scale factors without regenerating
        workloads; small dimension tables round up to at least one row.
        """
        if factor <= 0:
            raise SchemaError("scale factor must be positive")
        return TableSchema(
            name=self.name,
            columns=self.columns,
            row_count=max(1, int(round(self.row_count * factor))),
        )

    def with_row_count(self, row_count: int) -> "TableSchema":
        """Return a copy with an explicit row count."""
        return TableSchema(name=self.name, columns=self.columns, row_count=row_count)

    def describe(self) -> str:
        """Human-readable, one-line-per-column description."""
        lines = [f"{self.name} ({self.row_count:,} rows, {self.row_size} B/row)"]
        for index, column in enumerate(self.columns):
            lines.append(f"  [{index:2d}] {column.name:<20s} {column.width:>4d} B")
        return "\n".join(lines)


@dataclass
class Database:
    """A named collection of tables, e.g. the whole TPC-H schema.

    The paper partitions each table independently ("we partition each table
    in TPC-H separately"), so the database object is mostly a convenience
    container used by the experiment drivers.
    """

    name: str
    tables: Dict[str, TableSchema] = field(default_factory=dict)

    def add(self, table: TableSchema) -> None:
        """Register a table; raises if the name is already taken."""
        if table.name in self.tables:
            raise SchemaError(f"database {self.name!r} already has table {table.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        """Return the table called ``name``."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"database {self.name!r} has no table {name!r}") from None

    def table_names(self) -> List[str]:
        """Names of all tables in insertion order."""
        return list(self.tables)

    def scaled(self, factor: float) -> "Database":
        """Scale all tables' row counts; fixed-size tables are handled by callers."""
        scaled = Database(name=self.name)
        for table in self.tables.values():
            scaled.add(table.scaled(factor))
        return scaled

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self.tables.values())

    def __len__(self) -> int:
        return len(self.tables)
