"""Parameterised star-schema (SSB-style) workload generator.

The fixed Star Schema Benchmark lives in :mod:`repro.workload.ssb`; this
module generates *synthetic* star schemas whose shape can be dialled — number
of dimensions, number of measures, row count — so the comparison grid can
widen its scenario coverage beyond the two published benchmarks.

The generated workload mimics SSB's structure on the fact table:

* the schema is a fact table with one foreign-key column per dimension, a
  block of numeric measure columns, and a few wide descriptive columns
  (priority/mode strings) that make column grouping decisions non-trivial;
* queries come in *flights* (SSB's Q1.x ... Q4.x): each flight fixes a subset
  of the dimension keys and a couple of measures, and the queries within a
  flight drill down by adding one more dimension key each — so queries inside
  a flight have strongly overlapping footprints while different flights
  overlap only partially, the access pattern that lets wider column groups
  pay off (paper Table 5).

All generators take an integer seed (or :class:`numpy.random.Generator`) and
are fully deterministic for a given seed, which the grid runner's content-hash
cache relies on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.synthetic import RandomState, _rng
from repro.workload.workload import Workload

#: Byte widths of the generated measure columns, cycled in order (decimal,
#: int, decimal, ... mirroring SSB's revenue/quantity/discount mix).
_MEASURE_WIDTHS = (8, 4, 8, 4, 8)

#: (name, width) of the descriptive tail columns appended after the measures.
_DESCRIPTIVE_COLUMNS = (("priority", 15), ("shipmode", 10), ("comment", 40))


def star_fact_schema(
    num_dimensions: int = 4,
    num_measures: int = 9,
    row_count: int = 6_000_000,
    name: str = "star_fact",
) -> TableSchema:
    """The fact table of a synthetic star schema.

    Columns, in order: ``orderkey``/``linenumber`` (the composite key),
    one ``d<i>_key`` per dimension, ``m<i>`` measures, then the fixed
    descriptive tail.
    """
    if num_dimensions < 1:
        raise ValueError("num_dimensions must be >= 1")
    if num_measures < 1:
        raise ValueError("num_measures must be >= 1")
    columns: List[Column] = [
        Column(name="orderkey", width=4, sql_type="int"),
        Column(name="linenumber", width=4, sql_type="int"),
    ]
    for d in range(num_dimensions):
        columns.append(Column(name=f"d{d + 1}_key", width=4, sql_type="int"))
    for m in range(num_measures):
        width = _MEASURE_WIDTHS[m % len(_MEASURE_WIDTHS)]
        sql_type = "decimal" if width == 8 else "int"
        columns.append(Column(name=f"m{m + 1}", width=width, sql_type=sql_type))
    for col_name, width in _DESCRIPTIVE_COLUMNS:
        columns.append(Column(name=col_name, width=width, sql_type=f"char({width})"))
    return TableSchema(name=name, columns=columns, row_count=row_count)


def star_workload(
    num_dimensions: int = 4,
    num_measures: int = 9,
    flights: int = 4,
    queries_per_flight: int = 3,
    row_count: int = 6_000_000,
    random_state: RandomState = 0,
    name: str = "star",
    schema: Optional[TableSchema] = None,
) -> Workload:
    """An SSB-style flight workload on the fact table of a synthetic star schema.

    Each flight draws a starting set of dimension keys and measures; query
    ``j`` of a flight adds ``j`` further dimension keys (the drill-down).
    Flight 1 additionally references the descriptive tail with one query, as
    SSB's report-style queries do.  Earlier flights carry higher weights
    (reports run more often than ad-hoc drill-downs).
    """
    if flights < 1 or queries_per_flight < 1:
        raise ValueError("flights and queries_per_flight must be >= 1")
    if schema is None:
        schema = star_fact_schema(
            num_dimensions=num_dimensions,
            num_measures=num_measures,
            row_count=row_count,
        )
    rng = _rng(random_state)
    dimension_names = [f"d{d + 1}_key" for d in range(num_dimensions)]
    measure_names = [f"m{m + 1}" for m in range(num_measures)]
    descriptive_names = [col_name for col_name, _ in _DESCRIPTIVE_COLUMNS]

    queries: List[Query] = []
    for flight in range(flights):
        start_dims = int(rng.integers(1, max(2, num_dimensions // 2) + 1))
        flight_dims = [
            dimension_names[i]
            for i in rng.permutation(num_dimensions)
        ]
        flight_measures = [
            measure_names[i]
            for i in rng.choice(
                num_measures,
                size=int(rng.integers(1, min(3, num_measures) + 1)),
                replace=False,
            )
        ]
        weight = float(flights - flight)
        for step in range(queries_per_flight):
            depth = min(num_dimensions, start_dims + step)
            attributes = flight_dims[:depth] + flight_measures
            if flight == 0 and step == queries_per_flight - 1:
                attributes = attributes + descriptive_names
            queries.append(
                Query(
                    name=f"F{flight + 1}.{step + 1}",
                    attributes=attributes,
                    weight=weight,
                )
            )
    return Workload(schema=schema, queries=queries, name=name)


def tiny_star_workload(random_state: RandomState = 0) -> Workload:
    """A small preset (9 attributes) sized for smoke grids and CI."""
    return star_workload(
        num_dimensions=2,
        num_measures=2,
        flights=3,
        queries_per_flight=2,
        row_count=1_000_000,
        random_state=random_state,
        name="star-tiny",
    )


def default_star_workload(random_state: RandomState = 0) -> Workload:
    """The default preset: an SSB-like 18-attribute fact table."""
    return star_workload(random_state=random_state, name="star-default")
