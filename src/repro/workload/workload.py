"""Workloads: a table schema plus the queries that run against it.

``Workload`` is the central input object of the library.  It binds a
:class:`~repro.workload.schema.TableSchema` with a list of
:class:`~repro.workload.query.Query` objects and derives the structures the
partitioning algorithms consume:

* the attribute *usage matrix* (queries x attributes, 0/1),
* the attribute *affinity matrix* (co-access counts weighted by frequency,
  used by Navathe and O2P),
* the *primary partitions* / *atomic fragments* (maximal groups of attributes
  referenced by exactly the same set of queries, used by AutoPart and HYRISE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.workload.query import Query, QueryError, ResolvedQuery
from repro.workload.schema import TableSchema


class WorkloadError(ValueError):
    """Raised when a workload definition is inconsistent."""


@dataclass(frozen=True)
class Workload:
    """A query workload over a single table.

    The paper partitions each table of TPC-H independently, so a workload is
    always per-table; multi-table benchmarks are represented as one workload
    per table (see :func:`repro.workload.tpch.tpch_workloads`).
    """

    schema: TableSchema
    queries: Tuple[ResolvedQuery, ...]
    name: str = ""

    def __init__(
        self,
        schema: TableSchema,
        queries: Sequence[Query],
        name: str = "",
    ) -> None:
        resolved: List[ResolvedQuery] = []
        seen_names = set()
        for query in queries:
            if isinstance(query, ResolvedQuery):
                resolved_query = query
            elif isinstance(query, Query):
                resolved_query = query.resolve(schema)
            else:
                raise WorkloadError(
                    f"expected Query or ResolvedQuery, got {type(query).__name__}"
                )
            if resolved_query.name in seen_names:
                raise WorkloadError(f"duplicate query name {resolved_query.name!r}")
            seen_names.add(resolved_query.name)
            max_index = max(resolved_query.attribute_indices, default=-1)
            if max_index >= schema.attribute_count:
                raise WorkloadError(
                    f"query {resolved_query.name!r} references attribute index "
                    f"{max_index} but table {schema.name!r} has only "
                    f"{schema.attribute_count} attributes"
                )
            resolved.append(resolved_query)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "queries", tuple(resolved))
        object.__setattr__(self, "name", name or f"{schema.name}-workload")

    # -- basic accessors ----------------------------------------------------

    @property
    def query_count(self) -> int:
        """Number of queries in the workload."""
        return len(self.queries)

    @property
    def attribute_count(self) -> int:
        """Number of attributes in the underlying table."""
        return self.schema.attribute_count

    @property
    def total_weight(self) -> float:
        """Sum of query weights."""
        return sum(query.weight for query in self.queries)

    def __iter__(self) -> Iterator[ResolvedQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def query(self, name: str) -> ResolvedQuery:
        """Return the query called ``name``."""
        for query in self.queries:
            if query.name == name:
                return query
        raise WorkloadError(f"workload {self.name!r} has no query {name!r}")

    # -- derived structures ---------------------------------------------------

    def usage_matrix(self) -> np.ndarray:
        """Attribute usage matrix of shape (query_count, attribute_count).

        ``usage[q, a]`` is 1 if query ``q`` references attribute ``a``.
        An empty workload yields a (0, attribute_count) matrix.
        """
        matrix = np.zeros((self.query_count, self.attribute_count), dtype=np.int64)
        for row, query in enumerate(self.queries):
            for index in query.attribute_indices:
                matrix[row, index] = 1
        return matrix

    def weights(self) -> np.ndarray:
        """Query weights as a vector aligned with :meth:`usage_matrix` rows."""
        return np.array([query.weight for query in self.queries], dtype=float)

    def affinity_matrix(self) -> np.ndarray:
        """Attribute affinity matrix (attribute_count x attribute_count).

        Cell ``(i, j)`` is the summed weight of queries that reference both
        attribute ``i`` and attribute ``j`` — the affinity measure of
        Navathe et al. [15].  The diagonal holds each attribute's total
        access weight.
        """
        usage = self.usage_matrix().astype(float)
        if usage.size == 0:
            return np.zeros((self.attribute_count, self.attribute_count))
        weighted = usage * self.weights()[:, np.newaxis]
        return weighted.T @ usage

    def attribute_access_weights(self) -> np.ndarray:
        """Per-attribute total access weight (diagonal of the affinity matrix)."""
        usage = self.usage_matrix().astype(float)
        if usage.size == 0:
            return np.zeros(self.attribute_count)
        return self.weights() @ usage

    def referenced_attributes(self) -> FrozenSet[int]:
        """Indices of attributes referenced by at least one query."""
        referenced: set = set()
        for query in self.queries:
            referenced.update(query.attribute_indices)
        return frozenset(referenced)

    def unreferenced_attributes(self) -> FrozenSet[int]:
        """Indices of attributes no query ever touches."""
        return frozenset(range(self.attribute_count)) - self.referenced_attributes()

    def primary_partitions(self) -> List[FrozenSet[int]]:
        """Primary partitions (a.k.a. atomic fragments).

        Two attributes belong to the same primary partition iff they are
        referenced by exactly the same set of queries.  Attributes referenced
        by no query form one additional fragment (they must still be stored).
        The result is sorted by each fragment's smallest attribute index, so
        it is deterministic.
        """
        signature_to_attributes: Dict[FrozenSet[str], set] = {}
        for index in range(self.attribute_count):
            signature = frozenset(
                query.name for query in self.queries if query.references_index(index)
            )
            signature_to_attributes.setdefault(signature, set()).add(index)
        fragments = [frozenset(group) for group in signature_to_attributes.values()]
        return sorted(fragments, key=min)

    def queries_referencing(self, indices: Iterable[int]) -> List[ResolvedQuery]:
        """Queries that touch at least one attribute in ``indices``."""
        index_set = set(indices)
        return [query for query in self.queries if query.references_any(index_set)]

    # -- workload slicing -----------------------------------------------------

    def first(self, k: int) -> "Workload":
        """Workload consisting of the first ``k`` queries (paper Figures 2, 7).

        Queries that become empty projections on this table never existed in
        the workload in the first place, so slicing is a plain prefix.
        """
        if k <= 0:
            raise WorkloadError("first(k) requires k >= 1")
        return Workload(
            schema=self.schema,
            queries=list(self.queries[:k]),
            name=f"{self.name}[:{k}]",
        )

    def subset(self, names: Iterable[str]) -> "Workload":
        """Workload restricted to the named queries, preserving order."""
        wanted = set(names)
        missing = wanted - {query.name for query in self.queries}
        if missing:
            raise WorkloadError(f"unknown query names: {sorted(missing)}")
        kept = [query for query in self.queries if query.name in wanted]
        return Workload(schema=self.schema, queries=kept, name=f"{self.name}-subset")

    def with_schema(self, schema: TableSchema) -> "Workload":
        """Rebind the same queries to a (typically rescaled) schema."""
        if schema.attribute_names != self.schema.attribute_names:
            raise WorkloadError(
                "cannot rebind workload to a schema with different attributes"
            )
        return Workload(schema=schema, queries=list(self.queries), name=self.name)

    def scaled(self, factor: float) -> "Workload":
        """Same workload over a table scaled by ``factor``."""
        return self.with_schema(self.schema.scaled(factor))

    def describe(self) -> str:
        """Human-readable summary: one line per query with its footprint."""
        lines = [f"Workload {self.name!r} on {self.schema.name} "
                 f"({self.query_count} queries, {self.attribute_count} attributes)"]
        names = self.schema.attribute_names
        for query in self.queries:
            attrs = ", ".join(names[i] for i in query.attribute_indices)
            lines.append(f"  {query.name:<6s} w={query.weight:<6g} [{attrs}]")
        return "\n".join(lines)
