"""TPC-H schema and workload, as used throughout the paper.

The paper evaluates the partitioning algorithms on the TPC-H benchmark at
scale factor 10, taking all 22 queries but considering only scan and
projection operators.  For vertical partitioning purposes a query is therefore
its *attribute footprint*: every attribute it references in the SELECT list,
WHERE/JOIN predicates, GROUP BY or ORDER BY clauses of a given table.

This module encodes

* the eight TPC-H table schemas with fixed byte widths (numeric/date types use
  their binary width, character types their declared maximum length), and
* the per-table footprints of queries Q1–Q22, transcribed from the TPC-H
  specification.

Scale factors scale the row counts of all tables except ``nation`` and
``region``, whose cardinalities are fixed by the benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.workload.query import Query
from repro.workload.schema import Column, Database, TableSchema
from repro.workload.workload import Workload

#: Tables whose row counts do not change with the scale factor.
FIXED_SIZE_TABLES = frozenset({"nation", "region"})

#: Base row counts at scale factor 1.
_BASE_ROW_COUNTS = {
    "lineitem": 6_001_215,
    "orders": 1_500_000,
    "partsupp": 800_000,
    "part": 200_000,
    "customer": 150_000,
    "supplier": 10_000,
    "nation": 25,
    "region": 5,
}

#: (name, sql type, length) per table, in schema order.
_TABLE_COLUMNS: Dict[str, Sequence] = {
    "lineitem": [
        ("orderkey", "int", 0),
        ("partkey", "int", 0),
        ("suppkey", "int", 0),
        ("linenumber", "int", 0),
        ("quantity", "decimal", 0),
        ("extendedprice", "decimal", 0),
        ("discount", "decimal", 0),
        ("tax", "decimal", 0),
        ("returnflag", "char", 1),
        ("linestatus", "char", 1),
        ("shipdate", "date", 0),
        ("commitdate", "date", 0),
        ("receiptdate", "date", 0),
        ("shipinstruct", "char", 25),
        ("shipmode", "char", 10),
        ("comment", "varchar", 44),
    ],
    "orders": [
        ("orderkey", "int", 0),
        ("custkey", "int", 0),
        ("orderstatus", "char", 1),
        ("totalprice", "decimal", 0),
        ("orderdate", "date", 0),
        ("orderpriority", "char", 15),
        ("clerk", "char", 15),
        ("shippriority", "int", 0),
        ("comment", "varchar", 79),
    ],
    "customer": [
        ("custkey", "int", 0),
        ("name", "varchar", 25),
        ("address", "varchar", 40),
        ("nationkey", "int", 0),
        ("phone", "char", 15),
        ("acctbal", "decimal", 0),
        ("mktsegment", "char", 10),
        ("comment", "varchar", 117),
    ],
    "part": [
        ("partkey", "int", 0),
        ("name", "varchar", 55),
        ("mfgr", "char", 25),
        ("brand", "char", 10),
        ("type", "varchar", 25),
        ("size", "int", 0),
        ("container", "char", 10),
        ("retailprice", "decimal", 0),
        ("comment", "varchar", 23),
    ],
    "partsupp": [
        ("partkey", "int", 0),
        ("suppkey", "int", 0),
        ("availqty", "int", 0),
        ("supplycost", "decimal", 0),
        ("comment", "varchar", 199),
    ],
    "supplier": [
        ("suppkey", "int", 0),
        ("name", "char", 25),
        ("address", "varchar", 40),
        ("nationkey", "int", 0),
        ("phone", "char", 15),
        ("acctbal", "decimal", 0),
        ("comment", "varchar", 101),
    ],
    "nation": [
        ("nationkey", "int", 0),
        ("name", "char", 25),
        ("regionkey", "int", 0),
        ("comment", "varchar", 152),
    ],
    "region": [
        ("regionkey", "int", 0),
        ("name", "char", 25),
        ("comment", "varchar", 152),
    ],
}

#: Attribute footprints of the 22 TPC-H queries, per table.  A query appears
#: under a table only if it references at least one of that table's attributes.
TPCH_QUERY_FOOTPRINTS: Dict[str, Dict[str, List[str]]] = {
    "Q1": {
        "lineitem": [
            "quantity", "extendedprice", "discount", "tax",
            "returnflag", "linestatus", "shipdate",
        ],
    },
    "Q2": {
        "part": ["partkey", "mfgr", "size", "type"],
        "supplier": [
            "suppkey", "name", "address", "nationkey", "phone", "acctbal", "comment",
        ],
        "partsupp": ["partkey", "suppkey", "supplycost"],
        "nation": ["nationkey", "name", "regionkey"],
        "region": ["regionkey", "name"],
    },
    "Q3": {
        "customer": ["custkey", "mktsegment"],
        "orders": ["orderkey", "custkey", "orderdate", "shippriority"],
        "lineitem": ["orderkey", "extendedprice", "discount", "shipdate"],
    },
    "Q4": {
        "orders": ["orderkey", "orderdate", "orderpriority"],
        "lineitem": ["orderkey", "commitdate", "receiptdate"],
    },
    "Q5": {
        "customer": ["custkey", "nationkey"],
        "orders": ["orderkey", "custkey", "orderdate"],
        "lineitem": ["orderkey", "suppkey", "extendedprice", "discount"],
        "supplier": ["suppkey", "nationkey"],
        "nation": ["nationkey", "name", "regionkey"],
        "region": ["regionkey", "name"],
    },
    "Q6": {
        "lineitem": ["shipdate", "discount", "quantity", "extendedprice"],
    },
    "Q7": {
        "supplier": ["suppkey", "nationkey"],
        "lineitem": ["orderkey", "suppkey", "extendedprice", "discount", "shipdate"],
        "orders": ["orderkey", "custkey"],
        "customer": ["custkey", "nationkey"],
        "nation": ["nationkey", "name"],
    },
    "Q8": {
        "part": ["partkey", "type"],
        "supplier": ["suppkey", "nationkey"],
        "lineitem": ["partkey", "suppkey", "orderkey", "extendedprice", "discount"],
        "orders": ["orderkey", "custkey", "orderdate"],
        "customer": ["custkey", "nationkey"],
        "nation": ["nationkey", "regionkey", "name"],
        "region": ["regionkey", "name"],
    },
    "Q9": {
        "part": ["partkey", "name"],
        "supplier": ["suppkey", "nationkey"],
        "lineitem": [
            "partkey", "suppkey", "orderkey", "extendedprice", "discount", "quantity",
        ],
        "partsupp": ["partkey", "suppkey", "supplycost"],
        "orders": ["orderkey", "orderdate"],
        "nation": ["nationkey", "name"],
    },
    "Q10": {
        "customer": [
            "custkey", "name", "acctbal", "address", "phone", "comment", "nationkey",
        ],
        "orders": ["orderkey", "custkey", "orderdate"],
        "lineitem": ["orderkey", "extendedprice", "discount", "returnflag"],
        "nation": ["nationkey", "name"],
    },
    "Q11": {
        "partsupp": ["partkey", "suppkey", "availqty", "supplycost"],
        "supplier": ["suppkey", "nationkey"],
        "nation": ["nationkey", "name"],
    },
    "Q12": {
        "orders": ["orderkey", "orderpriority"],
        "lineitem": ["orderkey", "shipmode", "commitdate", "shipdate", "receiptdate"],
    },
    "Q13": {
        "customer": ["custkey"],
        "orders": ["orderkey", "custkey", "comment"],
    },
    "Q14": {
        "lineitem": ["partkey", "extendedprice", "discount", "shipdate"],
        "part": ["partkey", "type"],
    },
    "Q15": {
        "lineitem": ["suppkey", "extendedprice", "discount", "shipdate"],
        "supplier": ["suppkey", "name", "address", "phone"],
    },
    "Q16": {
        "partsupp": ["partkey", "suppkey"],
        "part": ["partkey", "brand", "type", "size"],
        "supplier": ["suppkey", "comment"],
    },
    "Q17": {
        "lineitem": ["partkey", "quantity", "extendedprice"],
        "part": ["partkey", "brand", "container"],
    },
    "Q18": {
        "customer": ["custkey", "name"],
        "orders": ["orderkey", "custkey", "orderdate", "totalprice"],
        "lineitem": ["orderkey", "quantity"],
    },
    "Q19": {
        "lineitem": [
            "partkey", "quantity", "extendedprice", "discount",
            "shipinstruct", "shipmode",
        ],
        "part": ["partkey", "brand", "container", "size"],
    },
    "Q20": {
        "supplier": ["suppkey", "name", "address", "nationkey"],
        "nation": ["nationkey", "name"],
        "partsupp": ["partkey", "suppkey", "availqty"],
        "part": ["partkey", "name"],
        "lineitem": ["partkey", "suppkey", "quantity", "shipdate"],
    },
    "Q21": {
        "supplier": ["suppkey", "name", "nationkey"],
        "lineitem": ["orderkey", "suppkey", "receiptdate", "commitdate"],
        "orders": ["orderkey", "orderstatus"],
        "nation": ["nationkey", "name"],
    },
    "Q22": {
        "customer": ["custkey", "phone", "acctbal"],
        "orders": ["custkey"],
    },
}

#: Canonical query order used for "first k queries" experiments.
TPCH_QUERY_ORDER = tuple(f"Q{i}" for i in range(1, 23))

#: The paper's default scale factor.
DEFAULT_SCALE_FACTOR = 10.0


def _row_count(table: str, scale_factor: float) -> int:
    base = _BASE_ROW_COUNTS[table]
    if table in FIXED_SIZE_TABLES:
        return base
    return max(1, int(round(base * scale_factor)))


def table_schema(table: str, scale_factor: float = DEFAULT_SCALE_FACTOR) -> TableSchema:
    """Schema of one TPC-H table at the given scale factor."""
    if table not in _TABLE_COLUMNS:
        raise KeyError(f"unknown TPC-H table {table!r}")
    columns = [
        Column.of_type(name, sql_type, length)
        for name, sql_type, length in _TABLE_COLUMNS[table]
    ]
    return TableSchema(
        name=table,
        columns=columns,
        row_count=_row_count(table, scale_factor),
    )


def tpch_database(scale_factor: float = DEFAULT_SCALE_FACTOR) -> Database:
    """The full TPC-H schema as a :class:`~repro.workload.schema.Database`."""
    database = Database(name=f"tpch-sf{scale_factor:g}")
    for table in _TABLE_COLUMNS:
        database.add(table_schema(table, scale_factor))
    return database


def table_names() -> List[str]:
    """All TPC-H table names in canonical order."""
    return list(_TABLE_COLUMNS)


def queries_for_table(table: str) -> List[Query]:
    """The TPC-H queries that touch ``table``, as per-table footprints."""
    if table not in _TABLE_COLUMNS:
        raise KeyError(f"unknown TPC-H table {table!r}")
    queries = []
    for query_name in TPCH_QUERY_ORDER:
        footprint = TPCH_QUERY_FOOTPRINTS[query_name]
        if table in footprint:
            queries.append(Query(name=query_name, attributes=footprint[table]))
    return queries


def tpch_workload(
    table: str,
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    num_queries: int = 22,
) -> Workload:
    """Workload of one TPC-H table.

    Parameters
    ----------
    table:
        TPC-H table name, e.g. ``"lineitem"``.
    scale_factor:
        TPC-H scale factor; affects only the row count.
    num_queries:
        Keep only queries among the first ``num_queries`` of the canonical
        Q1..Q22 order (the paper's "first k queries" experiments).
    """
    if not 1 <= num_queries <= 22:
        raise ValueError("num_queries must be between 1 and 22")
    allowed = set(TPCH_QUERY_ORDER[:num_queries])
    queries = [q for q in queries_for_table(table) if q.name in allowed]
    schema = table_schema(table, scale_factor)
    if not queries:
        # A table untouched by the first k queries still has a (trivial)
        # workload; give it a single query touching its first attribute so the
        # algorithms have something to work with.  Callers that care filter
        # such tables out (see tpch_workloads).
        queries = [Query(name="Q0", attributes=[schema.attribute_names[0]])]
    return Workload(schema=schema, queries=queries, name=f"tpch-{table}")


def tpch_workloads(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    num_queries: int = 22,
) -> Dict[str, Workload]:
    """Per-table workloads for every TPC-H table touched by the first k queries."""
    allowed = set(TPCH_QUERY_ORDER[:num_queries])
    workloads = {}
    for table in _TABLE_COLUMNS:
        queries = [q for q in queries_for_table(table) if q.name in allowed]
        if not queries:
            continue
        schema = table_schema(table, scale_factor)
        workloads[table] = Workload(
            schema=schema, queries=queries, name=f"tpch-{table}"
        )
    return workloads


def lineitem_workload(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    num_queries: int = 22,
) -> Workload:
    """Shorthand for the Lineitem workload used in Figures 7 and Tables 3/4."""
    return tpch_workload("lineitem", scale_factor, num_queries)
