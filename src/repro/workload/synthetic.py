"""Synthetic workload generators.

The test suite and the ablation benchmarks need workloads whose properties can
be dialled: highly *regular* access patterns (many queries touching nearly the
same attributes — where top-down algorithms converge fast) versus highly
*fragmented* patterns (queries with little overlap — where bottom-up
algorithms converge fast), plus uniformly random footprints for property-based
testing.

All generators take an explicit :class:`numpy.random.Generator` or an integer
seed so that every experiment is reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload

RandomState = Union[int, np.random.Generator, None]


def _rng(random_state: RandomState) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def synthetic_table(
    num_attributes: int,
    row_count: int = 1_000_000,
    min_width: int = 4,
    max_width: int = 64,
    name: str = "synthetic",
    random_state: RandomState = 0,
) -> TableSchema:
    """A table with ``num_attributes`` attributes of random byte widths."""
    if num_attributes < 1:
        raise ValueError("num_attributes must be >= 1")
    if min_width < 1 or max_width < min_width:
        raise ValueError("widths must satisfy 1 <= min_width <= max_width")
    rng = _rng(random_state)
    columns = [
        Column(name=f"a{i}", width=int(rng.integers(min_width, max_width + 1)))
        for i in range(num_attributes)
    ]
    return TableSchema(name=name, columns=columns, row_count=row_count)


def random_workload(
    schema: TableSchema,
    num_queries: int,
    min_attributes: int = 1,
    max_attributes: Optional[int] = None,
    random_state: RandomState = 0,
    name: str = "random",
) -> Workload:
    """Queries with uniformly random attribute footprints.

    Each query references a uniformly random subset of the table's attributes
    whose size is drawn uniformly from ``[min_attributes, max_attributes]``.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    rng = _rng(random_state)
    n = schema.attribute_count
    max_attributes = n if max_attributes is None else min(max_attributes, n)
    if not 1 <= min_attributes <= max_attributes:
        raise ValueError("need 1 <= min_attributes <= max_attributes <= #attributes")
    names = schema.attribute_names
    queries = []
    for q in range(num_queries):
        size = int(rng.integers(min_attributes, max_attributes + 1))
        chosen = rng.choice(n, size=size, replace=False)
        queries.append(Query(name=f"Q{q + 1}", attributes=[names[i] for i in chosen]))
    return Workload(schema=schema, queries=queries, name=name)


def regular_workload(
    schema: TableSchema,
    num_queries: int,
    core_size: Optional[int] = None,
    noise: float = 0.1,
    random_state: RandomState = 0,
    name: str = "regular",
) -> Workload:
    """A *regular* workload: all queries share a common core of attributes.

    Each query references the core set plus, with probability ``noise`` per
    remaining attribute, that extra attribute.  Top-down algorithms (Navathe,
    O2P) converge quickly on such workloads because only a few splits are
    needed.
    """
    rng = _rng(random_state)
    n = schema.attribute_count
    core_size = max(1, n // 2) if core_size is None else core_size
    if not 1 <= core_size <= n:
        raise ValueError("core_size must be within [1, #attributes]")
    names = schema.attribute_names
    core = list(rng.choice(n, size=core_size, replace=False))
    rest = [i for i in range(n) if i not in set(core)]
    queries = []
    for q in range(num_queries):
        extra = [i for i in rest if rng.random() < noise]
        attrs = [names[i] for i in core + extra]
        queries.append(Query(name=f"Q{q + 1}", attributes=attrs))
    return Workload(schema=schema, queries=queries, name=name)


def fragmented_workload(
    schema: TableSchema,
    num_queries: int,
    attributes_per_query: int = 2,
    random_state: RandomState = 0,
    name: str = "fragmented",
) -> Workload:
    """A *fragmented* workload: queries touch disjoint-ish attribute slices.

    Attributes are dealt round-robin to queries so overlap between queries is
    minimal; bottom-up algorithms (HillClimb, AutoPart) converge quickly here
    because very few merges improve the cost.
    """
    if attributes_per_query < 1:
        raise ValueError("attributes_per_query must be >= 1")
    rng = _rng(random_state)
    n = schema.attribute_count
    names = schema.attribute_names
    order = list(rng.permutation(n))
    queries = []
    cursor = 0
    for q in range(num_queries):
        attrs = []
        for _ in range(min(attributes_per_query, n)):
            attrs.append(names[order[cursor % n]])
            cursor += 1
        queries.append(Query(name=f"Q{q + 1}", attributes=set(attrs)))
    return Workload(schema=schema, queries=queries, name=name)


def clustered_workload(
    schema: TableSchema,
    num_clusters: int,
    queries_per_cluster: int,
    overlap: float = 0.0,
    random_state: RandomState = 0,
    name: str = "clustered",
) -> Workload:
    """Queries arranged in clusters, each cluster sharing an attribute group.

    This mimics the "several classes of queries, each having very similar
    access patterns" situation the Trojan algorithm targets with its query
    grouping; ``overlap`` adds cross-cluster attribute bleed.
    """
    if num_clusters < 1 or queries_per_cluster < 1:
        raise ValueError("num_clusters and queries_per_cluster must be >= 1")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    rng = _rng(random_state)
    n = schema.attribute_count
    names = schema.attribute_names
    order = list(rng.permutation(n))
    groups: List[List[int]] = [[] for _ in range(num_clusters)]
    for position, attribute in enumerate(order):
        groups[position % num_clusters].append(attribute)
    queries = []
    counter = 1
    for cluster_index, group in enumerate(groups):
        other_attributes = [i for i in range(n) if i not in set(group)]
        for _ in range(queries_per_cluster):
            attrs = set(group)
            for attribute in other_attributes:
                if rng.random() < overlap:
                    attrs.add(attribute)
            queries.append(
                Query(name=f"Q{counter}", attributes=[names[i] for i in attrs])
            )
            counter += 1
    return Workload(schema=schema, queries=queries, name=name)
