"""Queries as attribute footprints.

The paper's unified setting considers only scan and projection operators: a
query is fully described, for partitioning purposes, by the set of attributes
it references on a given table plus how often it runs.  ``Query`` captures
exactly that.  Attributes may be given by name (resolved against a
:class:`~repro.workload.schema.TableSchema` when building a
:class:`~repro.workload.workload.Workload`) or directly by positional index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.workload.schema import TableSchema, mask_of


class QueryError(ValueError):
    """Raised when a query definition is inconsistent."""


@dataclass(frozen=True)
class Query:
    """One query's footprint on one table.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"Q6"``.
    attributes:
        Names of the attributes the query references (projection plus
        predicate attributes — the paper counts every referenced attribute).
    weight:
        Relative frequency of the query in the workload.  The estimated
        workload cost is the weighted sum of per-query costs.
    selectivity:
        Fraction of rows the query's predicates select.  The paper's cost
        model ignores selectivity (scan-only I/O costs); it is kept so that
        the storage simulator and future extensions can use it.
    """

    name: str
    attributes: FrozenSet[str]
    weight: float = 1.0
    selectivity: float = 1.0

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        weight: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        attribute_set = frozenset(attributes)
        if not name:
            raise QueryError("query name must be non-empty")
        if not attribute_set:
            raise QueryError(f"query {name!r} must reference at least one attribute")
        if weight <= 0:
            raise QueryError(f"query {name!r} must have a positive weight")
        if not 0.0 < selectivity <= 1.0:
            raise QueryError(
                f"query {name!r} selectivity must be in (0, 1], got {selectivity}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attribute_set)
        object.__setattr__(self, "weight", float(weight))
        object.__setattr__(self, "selectivity", float(selectivity))

    def resolve(self, schema: TableSchema) -> "ResolvedQuery":
        """Bind the query to a schema, translating names to indices."""
        indices = schema.indices_of(self.attributes)
        return ResolvedQuery(
            name=self.name,
            attribute_indices=indices,
            weight=self.weight,
            selectivity=self.selectivity,
        )

    def references(self, attribute: str) -> bool:
        """True if the query touches ``attribute``."""
        return attribute in self.attributes

    def with_weight(self, weight: float) -> "Query":
        """Return a copy with a different weight."""
        return Query(
            name=self.name,
            attributes=self.attributes,
            weight=weight,
            selectivity=self.selectivity,
        )


@dataclass(frozen=True)
class ResolvedQuery:
    """A query whose attributes have been resolved to positional indices."""

    name: str
    attribute_indices: Tuple[int, ...]
    weight: float = 1.0
    selectivity: float = 1.0
    _index_set: FrozenSet[int] = field(default=frozenset(), compare=False, repr=False)
    _index_mask: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        index_set = frozenset(self.attribute_indices)
        object.__setattr__(self, "_index_set", index_set)
        object.__setattr__(self, "_index_mask", mask_of(index_set))

    @property
    def index_set(self) -> FrozenSet[int]:
        """The referenced indices as a frozenset (cached)."""
        return self._index_set

    @property
    def index_mask(self) -> int:
        """The referenced indices as an integer bitmask (bit ``i`` = attribute ``i``)."""
        return self._index_mask

    def references_index(self, index: int) -> bool:
        """True if the query touches the attribute at ``index``."""
        return index in self._index_set

    def references_any(self, indices: Iterable[int]) -> bool:
        """True if the query touches any of ``indices``."""
        return any(index in self._index_set for index in indices)

    def referenced_subset(self, indices: Iterable[int]) -> FrozenSet[int]:
        """The subset of ``indices`` the query actually references."""
        return self._index_set.intersection(indices)

    def __len__(self) -> int:
        return len(self.attribute_indices)


def make_query(
    name: str,
    attributes: Iterable[str],
    weight: float = 1.0,
    selectivity: float = 1.0,
) -> Query:
    """Convenience constructor mirroring :class:`Query`'s signature."""
    return Query(name=name, attributes=attributes, weight=weight, selectivity=selectivity)
