"""Setup shim.

The environment's setuptools lacks the ``wheel`` package needed for PEP 660
editable wheels, so this shim keeps the legacy ``pip install -e .`` path
working.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
