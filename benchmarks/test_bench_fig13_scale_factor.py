"""Figure 13: buffer-size sweet spots across dataset scale factors.

Paper shape: apart from the smallest dataset (where each query's data fits the
buffer), the improvement over Column depends on the buffer size in the same
way for every scale factor — small buffers favour partitioning, large buffers
do not.
"""

from repro.experiments import sweet_spots
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig13_scale_factor_sweet_spots(benchmark):
    rows = run_once(
        benchmark,
        sweet_spots.scale_factor_sweet_spots,
        algorithm="hillclimb",
        scale_factors=(0.1, 1.0, 10.0),
        tables=("lineitem",),
    )
    print("\n" + format_table(rows, title="Figure 13 — normalised cost vs (scale factor, buffer size)"))

    # HillClimb never loses to Column at any combination.
    assert all(row["hillclimb"] <= 1.0 + 1e-9 for row in rows)
    # For realistic dataset sizes (SF >= 1) the small-buffer end favours
    # partitioning at least as much as the huge-buffer end.  SF 0.1 is the
    # paper's special region (each query's data fits the buffer), so it is
    # only required to stay at or below Column.
    for scale_factor in (1.0, 10.0):
        series = [row for row in rows if row["scale_factor"] == scale_factor]
        series.sort(key=lambda row: row["buffer_size_mb"])
        assert min(r["hillclimb"] for r in series) <= series[-1]["hillclimb"] + 1e-9
