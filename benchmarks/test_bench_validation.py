"""Smoke bench: the estimated-vs-measured validation experiment.

Runs the Figure-3-shaped validation (docs/EXECUTION.md) on synthetic TPC-H,
prints the estimated and measured runtimes side by side, and asserts the
headline agreement claim the backend exists to defend: rank correlation
between predicted and measured runtimes of at least 0.9, with tight relative
errors.  Non-blocking like the rest of the harness, but a correlation drop
here means a cost-model or executor change broke the agreement the paper's
credibility rests on.
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.validation import (
    agreement_summary,
    estimated_vs_measured_runtimes,
    validation_reports,
)

#: Kept small so the smoke stays in seconds: two tables, four algorithms.
TABLES = ("partsupp", "supplier")
ALGORITHMS = ("autopart", "hillclimb", "navathe", "o2p")
MEASURED_ROWS = 5_000


def test_bench_estimated_vs_measured_validation(benchmark):
    reports = run_once(
        benchmark,
        validation_reports,
        tables=TABLES,
        scale_factor=0.1,
        algorithms=ALGORITHMS,
        rows=MEASURED_ROWS,
    )

    rows = estimated_vs_measured_runtimes(reports)
    print()
    print(
        format_table(
            rows, title="Estimated vs measured workload runtimes (Figure 3 shape)"
        )
    )
    summary = agreement_summary(reports)
    print(
        f"pooled rank correlation: {summary['rank_correlation']:.4f} over "
        f"{summary['layouts_validated']} layouts, "
        f"worst |rel err| {summary['max_absolute_relative_error'] * 100:.2f}%"
    )

    assert summary["layouts_validated"] == len(TABLES) * (len(ALGORITHMS) + 2)
    assert summary["rank_correlation"] >= 0.9
    assert summary["max_absolute_relative_error"] <= 0.05
    for table, stats in summary["per_table"].items():
        assert stats["rank_correlation"] >= 0.9, table
