"""Figure 12: estimated runtimes when re-optimising for each disk parameter.

Paper shape: block size and seek time barely move the runtimes; the runtime is
inversely proportional to the disk bandwidth; "no interesting regions".
"""

import pytest

from repro.experiments import sweet_spots
from repro.experiments.report import format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


@pytest.mark.parametrize("parameter", ["block_size", "read_bandwidth", "seek_time"])
def test_bench_fig12_parameter_sweet_spots(benchmark, parameter):
    rows = run_once(
        benchmark,
        sweet_spots.parameter_sweet_spots,
        parameter,
        scale_factor=SCALE_FACTOR,
        tables=("lineitem", "orders", "partsupp"),
    )
    print("\n" + format_table(rows, title=f"Figure 12 — runtimes vs {parameter} (s)"))

    for row in rows:
        # Row stays the worst layout and the query-optimal PMV the best,
        # regardless of the parameter value.
        assert row["row"] >= row["hillclimb"]
        assert row["query_optimal"] <= row["column"] * 1.05

    if parameter == "read_bandwidth":
        # Higher bandwidth means lower runtimes.
        assert rows[0]["hillclimb"] > rows[-1]["hillclimb"]
