"""Table 6: improvement over the column layout under HDD vs main-memory models.

Paper shape: the HillClimb class improves a few percent over Column on disk
but 0.00% in main memory; Navathe and O2P are negative under both models.
"""

from repro.experiments import quality
from repro.experiments.report import format_percentage, format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_table6_improvement_by_cost_model(benchmark):
    rows = run_once(
        benchmark,
        quality.improvement_over_column_by_cost_model,
        scale_factor=SCALE_FACTOR,
    )
    printable = [
        {
            "algorithm": row["algorithm"],
            "HDD cost model": format_percentage(row["HDD"]),
            "MM cost model": format_percentage(row["MM"]),
        }
        for row in rows
    ]
    print("\n" + format_table(printable, title="Table 6 — improvement over Column"))

    by_name = {row["algorithm"]: row for row in rows}
    # Disk: the HillClimb class improves a little over Column.
    assert by_name["hillclimb"]["HDD"] > 0.0
    # Main memory: the improvement vanishes (at most a rounding error).
    assert by_name["hillclimb"]["MM"] <= 0.001
    assert by_name["autopart"]["MM"] <= 0.001
    # Navathe/O2P are worse than Column under both cost models.
    assert by_name["navathe"]["HDD"] < 0.0
    assert by_name["navathe"]["MM"] < 0.0
    assert by_name["o2p"]["MM"] < 0.0
