"""Tables 1 and 2: algorithm classification and native settings."""

from repro.core import classification
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_table1_classification(benchmark):
    """Regenerate Table 1 (classification of the evaluated algorithms)."""
    rows = run_once(benchmark, classification.classification_table)
    print("\n" + format_table(rows, title="Table 1 — classification"))
    assert len(rows) == 7


def test_bench_table2_settings(benchmark):
    """Regenerate Table 2 (native settings of the algorithms + unified setting)."""
    rows = run_once(benchmark, classification.settings_table)
    print("\n" + format_table(rows, title="Table 2 — settings"))
    assert any(row["algorithm"] == "unified" for row in rows)
