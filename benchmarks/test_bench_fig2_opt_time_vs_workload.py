"""Figure 2: optimisation time over varying workload size (first k queries)."""

from repro.experiments import optimization_time
from repro.experiments.report import format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_fig2_opt_time_vs_workload_size(benchmark):
    rows = run_once(
        benchmark,
        optimization_time.optimization_time_vs_workload_size,
        max_queries=22,
        scale_factor=SCALE_FACTOR,
    )
    print("\n" + format_table(rows, title="Figure 2 — optimization time vs workload size (s)"))

    assert len(rows) == 22
    # Optimisation time grows with the workload size for every algorithm
    # (compare the single-query prefix with the full workload).
    for algorithm in ("autopart", "hillclimb", "hyrise", "navathe", "o2p"):
        assert rows[-1][algorithm] >= rows[0][algorithm]
