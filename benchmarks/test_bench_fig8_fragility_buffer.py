"""Figure 8: fragility with respect to the buffer size.

Paper shape: shrinking the buffer from 8 MB to 0.08 MB inflates the workload
runtime by factors of 5-24; growing it helps slightly; the effect dwarfs every
other disk parameter.
"""

from repro.experiments import fragility
from repro.experiments.report import format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_fig8_buffer_size_fragility(benchmark):
    rows = run_once(
        benchmark, fragility.buffer_size_fragility, scale_factor=SCALE_FACTOR
    )
    print("\n" + format_table(rows, title="Figure 8 — fragility vs buffer size (factor)"))

    by_buffer = {row["buffer_size_mb"]: row for row in rows}
    smallest = by_buffer[min(by_buffer)]
    default = by_buffer[8.0]
    largest = by_buffer[max(by_buffer)]
    # The 8 MB row is the baseline: zero change.
    assert abs(default["hillclimb"]) < 1e-9
    # Tiny buffers inflate runtimes by at least 2x for every subject.
    for subject in ("hillclimb", "navathe", "column", "row"):
        assert smallest[subject] > 1.0
    # Huge buffers never hurt.
    for subject in ("hillclimb", "navathe", "column", "row"):
        assert largest[subject] <= 0.0
