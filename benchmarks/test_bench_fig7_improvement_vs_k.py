"""Figure 7 and Tables 3/4: re-optimising for the first k queries (Lineitem).

Paper shape: HillClimb starts ~24% better than Column and decays to ~6.5%;
Navathe is positive only for the first few queries and then goes (and stays)
negative.  Table 3: Navathe's unnecessary reads jump above 30% from k=4 while
HillClimb stays at 0%.  Table 4: HillClimb's reconstruction joins grow with k
while staying below Column's.
"""

from repro.experiments import workload_scaling
from repro.experiments.report import format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_fig7_improvement_over_column_vs_k(benchmark):
    rows = run_once(
        benchmark,
        workload_scaling.improvement_over_column_vs_k,
        max_queries=22,
        scale_factor=SCALE_FACTOR,
    )
    print("\n" + format_table(rows, title="Figure 7 — improvement over Column vs k (fraction)"))

    assert len(rows) == 22
    # With a single query HillClimb's layout is query-optimal: clear improvement.
    assert rows[0]["hillclimb"] > 0.05
    # The improvement shrinks as the workload grows.
    assert rows[-1]["hillclimb"] < rows[0]["hillclimb"]
    # HillClimb never falls below Column; Navathe eventually does.
    assert all(row["hillclimb"] >= -1e-9 for row in rows)
    assert any(row["navathe"] < 0 for row in rows)


def test_bench_table3_unnecessary_reads_vs_k(benchmark):
    rows = run_once(
        benchmark,
        workload_scaling.unnecessary_reads_vs_k,
        max_queries=6,
        scale_factor=SCALE_FACTOR,
    )
    print("\n" + format_table(rows, title="Table 3 — unnecessary reads on Lineitem (fraction)"))

    # HillClimb reads (almost) no unnecessary data for these small workloads
    # (the paper reports exactly 0%; our cost model trades a few percent of
    # extra reads for fewer seeks at k=6).
    assert all(row["hillclimb"] < 0.05 for row in rows)
    # Navathe reads far more unnecessary data than HillClimb for every k.
    # (Deviation from the paper: its Navathe is clean for k <= 3 and jumps to
    # >30% at k=4; our z-measure Navathe keeps wide groups from the start —
    # see EXPERIMENTS.md.)
    assert all(row["navathe"] > row["hillclimb"] + 0.05 for row in rows)


def test_bench_table4_reconstruction_joins_vs_k(benchmark):
    rows = run_once(
        benchmark,
        workload_scaling.reconstruction_joins_vs_k,
        max_queries=6,
        scale_factor=SCALE_FACTOR,
    )
    print("\n" + format_table(rows, title="Table 4 — avg reconstruction joins on Lineitem"))

    # Joins grow with the workload size and stay below Column's.
    assert rows[0]["hillclimb"] <= rows[-1]["hillclimb"]
    assert all(row["hillclimb"] <= row["column"] for row in rows)
