"""Figure 10: pay-off over Row and over Column.

Paper shape: every algorithm pays off over Row after ~25% of one workload
execution; paying off over Column takes tens to hundreds of executions, and
Navathe/O2P never pay off over Column.
"""

from repro.experiments import payoff
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig10_payoff(benchmark, tpch_suite):
    rows = run_once(benchmark, payoff.payoff_over_baselines, suite=tpch_suite)
    print("\n" + format_table(rows, title="Figure 10 — pay-off (workload executions)"))

    by_name = {row["algorithm"]: row for row in rows}
    # Paying off over Row needs only a fraction of the workload (creation time
    # dominates, and the improvement over Row is huge).
    for name in ("hillclimb", "autopart", "hyrise", "trojan"):
        assert 0 < by_name[name]["payoff_over_row"] < 5
    # Over Column the pay-off takes far longer than over Row.
    assert by_name["hillclimb"]["payoff_over_column"] > by_name["hillclimb"]["payoff_over_row"]
    # Navathe and O2P never pay off over Column.
    assert by_name["navathe"]["payoff_over_column"] < 0
    assert by_name["o2p"]["payoff_over_column"] < 0
