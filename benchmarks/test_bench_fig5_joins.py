"""Figure 5: average tuple-reconstruction joins per tuple.

Paper shape: Row 0, Column highest (~2.5), all vertically partitioned layouts
perform at least ~72% of Column's joins.
"""

from repro.experiments import quality
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig5_tuple_reconstruction_joins(benchmark, tpch_suite):
    rows = run_once(benchmark, quality.tuple_reconstruction_joins, suite=tpch_suite)
    print("\n" + format_table(rows, title="Figure 5 — avg tuple reconstruction joins"))

    joins = {row["algorithm"]: row["avg_reconstruction_joins"] for row in rows}
    assert joins["row"] == 0.0
    assert joins["column"] == max(joins.values())
    # The partitioned layouts still perform a large share of Column's joins.
    for name in ("hillclimb", "autopart", "hyrise", "trojan"):
        assert joins[name] >= 0.5 * joins["column"]
