"""Table 7 on a real engine: the same layouts timed on embedded SQLite.

The simulated DBMS-X benchmark asserts the paper's disk-bound shape
(Row ≫ Column).  Warm in-memory SQLite inverts that pairing by design — byte
savings are cheap out of the page cache while rowid reconstruction joins cost
a b-tree probe per row — so the engine benchmark asserts the shape that *does*
transfer: HillClimb beats Column under both record encodings, because grouped
layouts avoid unnecessary tuple-reconstruction joins.  The divergence is
documented in ``docs/ENGINE_X.md``.
"""

from repro.experiments import engine_x
from repro.experiments.table7 import format_table7

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_table7_engine_x_runtimes(benchmark):
    rows = run_once(
        benchmark,
        engine_x.engine_x_runtimes,
        scale_factor=SCALE_FACTOR,
        rows=engine_x.DEFAULT_ENGINE_ROWS,
    )
    print("\n" + format_table7(rows))

    assert all(row["engine"] == engine_x.ENGINE_LABEL for row in rows)
    by_encoding = {row["encoding"]: row for row in rows}
    assert set(by_encoding) == {name for name, _ in engine_x.ENCODINGS}
    for row in rows:
        # The paper's grouping claim on a real engine: HillClimb's grouped
        # layout beats full vertical partitioning by skipping reconstruction
        # joins.  (Timing noise guard: require a real margin, not a tie.)
        assert row["hillclimb"] < row["column"] * 0.98
        # Every layout actually executed: strictly positive wall clock.
        assert all(row[layout] > 0 for layout in ("row", "column", "hillclimb"))


def test_bench_table7_combined_report(benchmark):
    report = run_once(
        benchmark,
        engine_x.table7_report,
        scale_factor=SCALE_FACTOR,
        rows=engine_x.DEFAULT_ENGINE_ROWS,
    )
    print("\n" + report)
    # Simulated and measured rows render in one table under one header.
    assert report.count("engine") >= 1
    assert "dbms-x (simulated)" in report
    assert "sqlite" in report
