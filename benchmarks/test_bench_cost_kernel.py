"""Cost-kernel microbenchmark: naive vs. memoized costing of HillClimb.

The optimisation-time figures (1 and 2) are only meaningful if the measured
time is algorithmic work, not avoidable Python overhead.  This bench times
HillClimb on the widest TPC-H table (``lineitem``, 16 attributes) with the
pre-kernel naive costing (fresh ``Partitioning`` + ``workload_cost`` per
candidate) and with the bitmask :class:`~repro.cost.evaluator.CostEvaluator`,
prints the speedup, and records both times in the benchmark JSON so the perf
trajectory is tracked across PRs.  The layouts must be bit-identical — the
kernel is an optimisation, never an approximation.
"""

import time

from repro.algorithms.hillclimb import HillClimbAlgorithm
from repro.cost.hdd import HDDCostModel
from repro.workload import tpch

from benchmarks.conftest import SCALE_FACTOR

#: Acceptance floor for the kernel: HillClimb on lineitem at least this much
#: faster than the naive path (measured ~10x; the margin absorbs CI noise).
MIN_SPEEDUP = 5.0


def test_bench_cost_kernel_hillclimb_lineitem(benchmark):
    workload = tpch.tpch_workloads(scale_factor=SCALE_FACTOR)["lineitem"]
    model = HDDCostModel()

    # Warm-up runs so import costs and allocator state hit neither side.
    naive_layout = HillClimbAlgorithm(naive_costing=True).compute(workload, model)
    kernel_layout = HillClimbAlgorithm().compute(workload, model)
    assert kernel_layout == naive_layout

    # Both sides take the min of three runs so one scheduler hiccup on a
    # noisy CI runner cannot sink the speedup ratio.
    naive_runs = []
    for _ in range(3):
        start = time.perf_counter()
        HillClimbAlgorithm(naive_costing=True).compute(workload, model)
        naive_runs.append(time.perf_counter() - start)
    naive_seconds = min(naive_runs)

    benchmark.pedantic(
        lambda: HillClimbAlgorithm().compute(workload, model),
        rounds=3,
        iterations=1,
    )
    kernel_seconds = benchmark.stats.stats.min

    speedup = naive_seconds / kernel_seconds
    benchmark.extra_info["naive_seconds"] = naive_seconds
    benchmark.extra_info["kernel_seconds"] = kernel_seconds
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\ncost kernel — HillClimb on lineitem: naive {naive_seconds * 1e3:.1f} ms, "
        f"kernel {kernel_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP
