"""Table 7: TPC-H runtimes in the (simulated) DBMS-X column store.

Paper shape: Row ≫ Column for both record encodings; Column beats the
HillClimb column-grouped layout, with a narrower gap under fixed-size
dictionary encoding than under the default varying-length encoding.

Rows use the shared Table-7 schema (``repro.experiments.table7``) so they
print alongside the real-engine rows of ``test_bench_table7_engine_x.py``.
"""

from repro.experiments import dbms_x_experiment
from repro.experiments.table7 import format_table7

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_table7_dbms_x_runtimes(benchmark):
    rows = run_once(
        benchmark, dbms_x_experiment.dbms_x_runtimes, scale_factor=SCALE_FACTOR
    )
    print("\n" + format_table7(rows))

    assert all(row["engine"] == dbms_x_experiment.ENGINE_LABEL for row in rows)
    by_encoding = {row["encoding"]: row for row in rows}
    default = by_encoding["Default (LZO or Delta)"]
    dictionary = by_encoding["Dictionary"]
    for row in (default, dictionary):
        # Row is far slower than both column-oriented layouts.
        assert row["row"] > 2 * row["column"]
        # Column beats the HillClimb column-grouped layout inside DBMS-X.
        assert row["column"] < row["hillclimb"]
    # The relative gap narrows under dictionary encoding... or at least does
    # not widen dramatically; the key point is that it never flips.
    default_gap = default["hillclimb"] / default["column"]
    dictionary_gap = dictionary["hillclimb"] / dictionary["column"]
    assert dictionary_gap < default_gap * 1.05
