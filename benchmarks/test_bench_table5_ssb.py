"""Table 5: improvement over the column layout on TPC-H versus SSB.

Paper shape: modest single-digit improvements on both benchmarks, slightly
larger on SSB (less fragmented access patterns), negative for Navathe and O2P
on TPC-H but positive-but-tiny on SSB.
"""

from repro.experiments import quality
from repro.experiments.report import format_percentage, format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_table5_improvement_by_benchmark(benchmark):
    rows = run_once(
        benchmark,
        quality.improvement_over_column_by_benchmark,
        scale_factor=SCALE_FACTOR,
    )
    printable = [
        {
            "algorithm": row["algorithm"],
            "TPC-H": format_percentage(row["TPC-H"]),
            "SSB": format_percentage(row["SSB"]),
        }
        for row in rows
    ]
    print("\n" + format_table(printable, title="Table 5 — improvement over Column"))

    by_name = {row["algorithm"]: row for row in rows}
    # The HillClimb class improves over Column on both benchmarks, but never
    # dramatically (the paper's Lesson 4), and SSB's less fragmented access
    # patterns allow a slightly larger improvement than TPC-H.
    for name in ("hillclimb", "autopart"):
        assert 0.0 <= by_name[name]["TPC-H"] < 0.15
        assert 0.0 <= by_name[name]["SSB"] < 0.15
        assert by_name[name]["SSB"] >= by_name[name]["TPC-H"]
    # Navathe and O2P are worse than Column on TPC-H.  (Deviation from the
    # paper: our affinity-driven Navathe/O2P are also negative on SSB, where
    # the paper measured a small positive improvement — see EXPERIMENTS.md.)
    assert by_name["navathe"]["TPC-H"] < 0.0
    assert by_name["o2p"]["TPC-H"] < 0.0
