"""Figure 14: the computed partitions for the TPC-H workload.

Paper shape: two classes of layouts — the "HillClimb class" (AutoPart,
HillClimb, HYRISE, Trojan, BruteForce, identical or nearly identical layouts)
and the Navathe/O2P class whose order-constrained layouts differ visibly.
"""

from repro.experiments import layouts
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig14_computed_layouts(benchmark, tpch_suite):
    rows = run_once(benchmark, layouts.computed_layouts, suite=tpch_suite)
    compact = [
        {
            "table": row["table"],
            "algorithm": row["algorithm"],
            "groups": " | ".join(",".join(group) for group in row["groups"]),
        }
        for row in rows
    ]
    print("\n" + format_table(compact, title="Figure 14 — computed layouts"))

    classes = layouts.layout_classes(suite=tpch_suite)
    # On PartSupp the HillClimb class shares one layout.
    partsupp_classes = classes["partsupp"]
    hillclimb_class = next(
        members for members in partsupp_classes.values() if "hillclimb" in members
    )
    for name in ("autopart", "hyrise"):
        assert name in hillclimb_class
    # AutoPart and HillClimb have the same estimated cost on every table
    # (they may differ only in how they group unreferenced attributes).
    for table in tpch_suite.tables:
        assert tpch_suite.run("autopart", table).estimated_cost == (
            tpch_suite.run("hillclimb", table).estimated_cost
        )
