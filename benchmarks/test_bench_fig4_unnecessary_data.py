"""Figure 4: fraction of unnecessary data read.

Paper shape: Row ~84%, Navathe ~25%, O2P ~21%, HYRISE 0%, the HillClimb class
under 1%, Column 0%.
"""

from repro.experiments import quality
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig4_unnecessary_data_read(benchmark, tpch_suite):
    rows = run_once(benchmark, quality.unnecessary_data_read, suite=tpch_suite)
    print("\n" + format_table(rows, title="Figure 4 — unnecessary data read (fraction)"))

    fractions = {row["algorithm"]: row["unnecessary_data_fraction"] for row in rows}
    assert fractions["row"] > 0.5
    assert fractions["column"] == 0.0
    assert fractions["hillclimb"] < 0.1
    assert fractions["autopart"] < 0.1
    # Navathe and O2P read substantially more unnecessary data.
    assert fractions["navathe"] > fractions["hillclimb"]
    assert fractions["o2p"] > fractions["hillclimb"]
