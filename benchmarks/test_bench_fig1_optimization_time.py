"""Figure 1: optimisation time for different algorithms.

Paper shape: O2P fastest, then Navathe/HillClimb/AutoPart/HYRISE within a few
seconds, Trojan orders of magnitude slower, brute force slowest of all (hours
on the real Lineitem search space — exact here only on the tables where the
enumeration is feasible; see EXPERIMENTS.md).
"""

from repro.experiments import optimization_time
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig1_optimization_time(benchmark, tpch_suite):
    rows = run_once(benchmark, optimization_time.optimization_times, suite=tpch_suite)
    print("\n" + format_table(rows, title="Figure 1 — optimization time (s)"))

    times = {row["algorithm"]: row["optimization_time_s"] for row in rows}
    # Every heuristic is much faster than brute force (even with the fallback
    # for Lineitem, the exact small-table enumerations dominate).
    assert times["brute-force"] > times["hillclimb"]
    assert times["brute-force"] > times["o2p"]
    # Trojan is the slowest heuristic; O2P and Navathe are the fastest.
    heuristics = {k: v for k, v in times.items() if k not in ("brute-force",)}
    assert times["trojan"] == max(heuristics.values())
    assert min(heuristics, key=heuristics.get) in ("o2p", "navathe")
