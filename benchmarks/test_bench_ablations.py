"""Ablation benchmarks for the design choices called out in DESIGN.md.

* HillClimb with vs without the precomputed column-group cost dictionary (the
  paper's "improved version" drops the dictionary).
* Trojan's interestingness threshold sweep.
* HYRISE's K (maximum primary partitions per subgraph) sweep.
* The HDD cost model's buffer-sharing policy (proportional vs equal split).
"""

import pytest

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import column_partitioning
from repro.cost.hdd import HDDCostModel
from repro.experiments.report import format_table
from repro.workload import tpch

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_ablation_hillclimb_cost_dictionary(benchmark):
    """The dictionary-free HillClimb finds the same layout; the dictionary only
    changes the bookkeeping cost (the reason the paper dropped it)."""
    workload = tpch.tpch_workload("customer", scale_factor=SCALE_FACTOR)
    model = HDDCostModel()

    def run_both():
        plain = get_algorithm("hillclimb", use_cost_dictionary=False).run(workload, model)
        dictionary = get_algorithm("hillclimb", use_cost_dictionary=True).run(workload, model)
        return plain, dictionary

    plain, dictionary = run_once(benchmark, run_both)
    rows = [
        {"variant": "no dictionary", "cost_s": plain.estimated_cost,
         "optimization_s": plain.optimization_time},
        {"variant": "with dictionary", "cost_s": dictionary.estimated_cost,
         "optimization_s": dictionary.optimization_time},
    ]
    print("\n" + format_table(rows, title="Ablation — HillClimb cost dictionary"))
    assert plain.partitioning == dictionary.partitioning


def test_bench_ablation_trojan_threshold(benchmark):
    """Sweeping Trojan's interestingness threshold trades optimisation effort
    against layout quality; very high thresholds degenerate to the primary
    partitions."""
    workload = tpch.tpch_workload("customer", scale_factor=SCALE_FACTOR)
    model = HDDCostModel()
    thresholds = (0.1, 0.4, 0.7, 1.0)

    def sweep():
        results = []
        for threshold in thresholds:
            result = get_algorithm("trojan", interestingness_threshold=threshold).run(
                workload, model
            )
            results.append((threshold, result))
        return results

    results = run_once(benchmark, sweep)
    rows = [
        {"threshold": threshold, "cost_s": result.estimated_cost,
         "partitions": result.partitioning.partition_count}
        for threshold, result in results
    ]
    print("\n" + format_table(rows, title="Ablation — Trojan interestingness threshold"))
    partitions = [result.partitioning.partition_count for _, result in results]
    # Lower thresholds admit more column groups, so the layout never becomes
    # finer as the threshold drops; at threshold 1.0 only perfectly co-accessed
    # groups (the primary partitions) survive.
    assert partitions[0] <= partitions[-1]
    expected_primary = len(workload.primary_partitions())
    assert partitions[-1] == expected_primary


def test_bench_ablation_hyrise_k(benchmark):
    """HYRISE's subgraph size K: small K is faster per subgraph but can miss
    merges across subgraphs; large K recovers the unrestricted merge."""
    workload = tpch.tpch_workload("lineitem", scale_factor=SCALE_FACTOR)
    model = HDDCostModel()
    ks = (2, 4, 8, 16)

    def sweep():
        results = []
        for k in ks:
            result = get_algorithm(
                "hyrise", max_primary_partitions_per_subgraph=k
            ).run(workload, model)
            results.append((k, result))
        return results

    results = run_once(benchmark, sweep)
    rows = [
        {"K": k, "cost_s": result.estimated_cost,
         "optimization_s": result.optimization_time,
         "partitions": result.partitioning.partition_count}
        for k, result in results
    ]
    print("\n" + format_table(rows, title="Ablation — HYRISE subgraph size K"))
    costs = {k: result.estimated_cost for k, result in results}
    # The largest K is at least as good as the smallest.
    assert costs[16] <= costs[2] * 1.0001


def test_bench_ablation_buffer_sharing_policy(benchmark):
    """The paper shares the I/O buffer proportionally to partition row sizes;
    an equal split penalises wide partitions and changes the costs."""
    workload = tpch.tpch_workload("lineitem", scale_factor=SCALE_FACTOR)
    proportional = HDDCostModel(buffer_sharing="proportional")
    equal = HDDCostModel(buffer_sharing="equal")
    layout = column_partitioning(workload.schema)

    def evaluate():
        return (
            proportional.workload_cost(workload, layout),
            equal.workload_cost(workload, layout),
        )

    proportional_cost, equal_cost = run_once(benchmark, evaluate)
    rows = [
        {"policy": "proportional", "column_layout_cost_s": proportional_cost},
        {"policy": "equal", "column_layout_cost_s": equal_cost},
    ]
    print("\n" + format_table(rows, title="Ablation — buffer sharing policy"))
    # For the column layout the two policies coincide only if all attribute
    # widths were equal, which they are not on Lineitem.
    assert proportional_cost != pytest.approx(equal_cost, rel=1e-6)
