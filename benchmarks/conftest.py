"""Shared fixtures for the benchmark harness.

Most figures derive from the same full TPC-H suite (every algorithm on every
table at scale factor 10, brute force exact where feasible), so it is run once
per benchmark session and reused.  Individual benches time their own
experiment driver with ``benchmark.pedantic(rounds=1)`` — these are
reproduction experiments, not micro-benchmarks, so a single measured run is
the meaningful unit — and print the regenerated table/figure rows so the
numbers can be compared with the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_suite
from repro.workload import tpch

#: The paper's scale factor.
SCALE_FACTOR = 10.0


@pytest.fixture(scope="session")
def tpch_workloads_sf10():
    """Per-table TPC-H workloads at the paper's scale factor."""
    return tpch.tpch_workloads(scale_factor=SCALE_FACTOR)


@pytest.fixture(scope="session")
def tpch_suite(tpch_workloads_sf10):
    """Every algorithm run on every TPC-H table (shared across benches)."""
    return run_suite(tpch_workloads_sf10)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
