"""Figure 9: normalised cost vs buffer size when re-optimising per buffer size.

Paper shape: vertical partitioning (and even perfect materialised views) beats
the column layout only for buffers below ~100 MB; HillClimb is never worse
than Column; Navathe helps only in a narrow band of small buffers.
"""

from repro.experiments import sweet_spots
from repro.experiments.report import format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


def test_bench_fig9_buffer_size_sweet_spots(benchmark):
    rows = run_once(
        benchmark, sweet_spots.buffer_size_sweet_spots, scale_factor=SCALE_FACTOR
    )
    print("\n" + format_table(rows, title="Figure 9 — normalised cost vs buffer size (fraction of Column)"))

    by_buffer = {row["buffer_size_mb"]: row for row in rows}
    ordered = sorted(by_buffer)
    small = by_buffer[ordered[1]]   # ~0.1 MB
    huge = by_buffer[ordered[-1]]   # ~10 GB
    # For small buffers column grouping clearly beats the column layout.
    assert small["hillclimb"] < 0.95
    assert small["pmv"] < small["hillclimb"]
    # For huge buffers the advantage disappears (within a percent of Column).
    assert huge["hillclimb"] > 0.98
    assert huge["pmv"] > 0.9
    # HillClimb never does worse than Column (it would simply keep the column
    # layout if nothing better exists).
    assert all(row["hillclimb"] <= 1.0 + 1e-9 for row in rows)
