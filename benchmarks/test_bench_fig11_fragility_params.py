"""Figure 11: fragility with respect to block size, bandwidth and seek time.

Paper shape: block size changes matter less than 1%, disk bandwidth up to
~40%, seek time less than ~5% — all tiny compared with the buffer size effect
of Figure 8.
"""

import pytest

from repro.experiments import fragility
from repro.experiments.report import format_table

from benchmarks.conftest import SCALE_FACTOR, run_once


@pytest.mark.parametrize(
    # The paper reports <1% for block size, <=42% for bandwidth and <5% for
    # seek time; our bounds are looser because the extreme block sizes of the
    # sweep (0.5 KB and 128 KB) interact with the buffer-sharing formula more
    # strongly in the analytic model than on the paper's testbed.
    "parameter, bound",
    [("block_size", 0.35), ("read_bandwidth", 0.6), ("seek_time", 0.3)],
)
def test_bench_fig11_parameter_fragility(benchmark, parameter, bound):
    rows = run_once(
        benchmark,
        fragility.parameter_fragility,
        parameter,
        scale_factor=SCALE_FACTOR,
    )
    print("\n" + format_table(rows, title=f"Figure 11 — fragility vs {parameter}"))

    # None of these parameters comes close to the buffer-size effect (factors
    # of 5-24 in Figure 8); they stay within the paper's reported ranges.
    for row in rows:
        for subject in ("hillclimb", "navathe", "column", "row"):
            assert abs(row[subject]) <= bound
