"""Figure 3: estimated workload runtime for different algorithms.

Paper shape (seconds): Row 2058 >> Navathe 506 > O2P 481 > AutoPart 393 ~=
Trojan 387 ~= HillClimb = HYRISE = BruteForce = Column 381.  The reproduction
must preserve the ordering Row >> Navathe/O2P > Column >= HillClimb-class.
"""

from repro.experiments import quality
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig3_estimated_workload_runtime(benchmark, tpch_suite):
    rows = run_once(benchmark, quality.estimated_workload_runtimes, suite=tpch_suite)
    print("\n" + format_table(rows, title="Figure 3 — estimated workload runtime (s)"))

    costs = {row["algorithm"]: row["estimated_runtime_s"] for row in rows}
    # Row is by far the worst layout.
    assert costs["row"] > 3 * costs["column"]
    # The HillClimb class matches brute force and beats (or ties) Column.
    assert costs["hillclimb"] <= costs["brute-force"] * 1.001
    assert costs["hillclimb"] <= costs["column"]
    assert costs["autopart"] <= costs["column"]
    # Navathe and O2P are worse than Column (the paper's surprising finding).
    assert costs["navathe"] > costs["column"]
    assert costs["o2p"] > costs["column"]
