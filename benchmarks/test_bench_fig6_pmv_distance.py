"""Figure 6: distance from perfect materialised views.

Paper shape: Row ~517%, Navathe ~49%, O2P ~56%, HillClimb/AutoPart ~18%,
Column ~23%.
"""

from repro.experiments import quality
from repro.experiments.report import format_table

from benchmarks.conftest import run_once


def test_bench_fig6_distance_from_pmv(benchmark, tpch_suite):
    rows = run_once(benchmark, quality.distance_from_pmv, suite=tpch_suite)
    print("\n" + format_table(rows, title="Figure 6 — distance from PMV (fraction)"))

    distances = {row["algorithm"]: row["distance_from_pmv"] for row in rows}
    # Every legal layout is at least as expensive as the PMV reference.
    assert all(value >= 0.0 for value in distances.values())
    # Row is by far the farthest; HillClimb is closer to PMV than Navathe/O2P.
    assert distances["row"] == max(distances.values())
    assert distances["hillclimb"] < distances["navathe"]
    assert distances["hillclimb"] < distances["o2p"]
