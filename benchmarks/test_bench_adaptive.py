"""Adaptive-subsystem microbenchmark: the windowed path stays incremental.

Two guarantees keep the online controller cheap enough to sit on a query
stream:

1. **No full-workload recosting on non-trigger steps.**  Per arrival the
   controller folds the query into its windowed statistics and (when a check
   is due) costs the deployed layout on the *aggregated window* through the
   memoized kernel.  The naive ``workload_cost`` / ``query_cost`` paths of
   the cost model must never run outside drift triggers — asserted here with
   the counting wrapper, per step.
2. **O(window) work per arrival, independent of stream length.**  On a long
   stationary stream the per-arrival cost must not grow with the number of
   arrivals already processed (the pre-subsystem example replayed the whole
   prefix per step — quadratic).  Asserted by timing the first half of a
   long stream against the second half.

The comparison benchmark regenerates the adaptive report (the dynamic
counterpart of the paper's figures) at full experiment size and asserts the
headline result: the adaptive controller beats both the static hindsight
layout and the reorg-every-query policy on cumulative cost.
"""

import time

from repro.core.algorithm import _CountingCostModel
from repro.cost.hdd import HDDCostModel
from repro.experiments.adaptive import (
    ADAPTIVE_DISK,
    DEFAULT_WINDOW,
    adaptive_policy_comparison,
    default_drifting_stream,
)
from repro.experiments.report import format_table
from repro.online import AdaptiveAdvisor, zipf_template_stream
from repro.workload.synthetic import synthetic_table

from benchmarks.conftest import run_once


def test_bench_adaptive_no_full_recost_on_non_trigger_steps(benchmark):
    stream = default_drifting_stream()
    counting = _CountingCostModel(HDDCostModel(ADAPTIVE_DISK))
    policy = AdaptiveAdvisor(counting, window=DEFAULT_WINDOW)

    def drive():
        policy.start(stream.schema)
        non_trigger_recosts = 0
        for arrival, query in enumerate(stream):
            triggers_before = policy.triggers
            naive_before = counting.workload_evaluations + counting.query_evaluations
            policy.on_query(arrival, query)
            naive_delta = (
                counting.workload_evaluations
                + counting.query_evaluations
                - naive_before
            )
            if policy.triggers == triggers_before and naive_delta:
                non_trigger_recosts += naive_delta
        return non_trigger_recosts

    non_trigger_recosts = run_once(benchmark, drive)
    benchmark.extra_info["arrivals"] = stream.arrival_count
    benchmark.extra_info["checks"] = policy.checks
    benchmark.extra_info["triggers"] = policy.triggers
    print(
        f"\nadaptive windowing — {stream.arrival_count} arrivals, "
        f"{policy.checks} checks, {policy.triggers} triggers, "
        f"{non_trigger_recosts} naive recosts outside triggers"
    )
    # The windowed path must never fall back to the naive costing paths on a
    # non-trigger step: all per-arrival costing goes through the memoized
    # kernel over the aggregated window.
    assert non_trigger_recosts == 0
    # The window aggregate the checks operate on is bounded by the window,
    # never by the stream length.
    assert policy.stats.distinct_footprints <= DEFAULT_WINDOW


def test_bench_adaptive_per_arrival_cost_is_flat(benchmark):
    """Per-arrival work must not grow with the arrivals already processed."""
    schema = synthetic_table(12, row_count=100_000, random_state=0)
    stream = zipf_template_stream(
        schema, num_templates=8, length=3000, max_attributes=5, random_state=0
    )
    model = HDDCostModel(ADAPTIVE_DISK)
    policy = AdaptiveAdvisor(model, window=DEFAULT_WINDOW)

    def drive():
        policy.start(stream.schema)
        halves = []
        half = stream.arrival_count // 2
        started = time.perf_counter()
        for arrival, query in enumerate(stream):
            policy.on_query(arrival, query)
            if arrival + 1 == half:
                halves.append(time.perf_counter() - started)
                started = time.perf_counter()
        halves.append(time.perf_counter() - started)
        return halves

    first_half, second_half = run_once(benchmark, drive)
    ratio = second_half / first_half if first_half > 0 else 1.0
    benchmark.extra_info["first_half_s"] = first_half
    benchmark.extra_info["second_half_s"] = second_half
    benchmark.extra_info["ratio"] = ratio
    print(
        f"\nadaptive per-arrival cost — first half {first_half * 1e3:.1f} ms, "
        f"second half {second_half * 1e3:.1f} ms, ratio {ratio:.2f}"
    )
    # A quadratic (prefix-replay) implementation makes the second half ~3x
    # the first; the windowed path stays flat.  The margin absorbs noise and
    # the warm-up triggers concentrated in the first half.
    assert ratio < 2.0


def test_bench_adaptive_policy_comparison(benchmark):
    rows = run_once(benchmark, adaptive_policy_comparison)
    print("\n" + format_table(rows, title="Adaptive re-partitioning on a drifting stream"))
    by_policy = {row["policy"]: row for row in rows}
    for row in rows:
        benchmark.extra_info[f"{row['policy']}_total_s"] = row["total_cost_s"]
    adaptive_total = by_policy["adaptive"]["total_cost_s"]
    assert adaptive_total < by_policy["static-hindsight"]["total_cost_s"]
    assert adaptive_total < by_policy["reorg-every-query"]["total_cost_s"]
