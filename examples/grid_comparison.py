#!/usr/bin/env python3
"""Comparison grid: the paper's systematic study, cached and parallel.

Runs the builtin ``small`` grid — every algorithm crossed with four scenario
classes (two TPC-H tables, a synthetic star schema, a wide-sparse telemetry
table) under the HDD and main-memory cost models — then runs it *again* to
show the persistent result cache at work: the second pass is served entirely
from disk and reproduces the same headline tables without running a single
algorithm.

Equivalent CLI::

    python -m repro.grid --grid small --workers 4

Usage::

    python examples/grid_comparison.py [grid] [workers] [cache_dir]
"""

from __future__ import annotations

import sys
import time

from repro import LayoutAdvisor


def main() -> None:
    grid = sys.argv[1] if len(sys.argv) > 1 else "small"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    cache_dir = sys.argv[3] if len(sys.argv) > 3 else ".grid-cache"

    advisor = LayoutAdvisor()

    start = time.perf_counter()
    report = advisor.compare(grid=grid, cache_dir=cache_dir, workers=workers)
    first_elapsed = time.perf_counter() - start
    print(report.describe())
    print()
    print(
        f"first pass : {report.computed} computed, {report.cache_hits} cached "
        f"in {first_elapsed:.2f}s ({workers} workers)"
    )

    start = time.perf_counter()
    again = advisor.compare(grid=grid, cache_dir=cache_dir, workers=workers)
    second_elapsed = time.perf_counter() - start
    print(
        f"second pass: {again.computed} computed, {again.cache_hits} cached "
        f"in {second_elapsed:.2f}s "
        f"({again.hit_rate * 100:.0f}% cache hits)"
    )


if __name__ == "__main__":
    main()
