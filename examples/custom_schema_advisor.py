#!/usr/bin/env python3
"""Using the advisor on your own schema and workload.

The library is not tied to TPC-H: any table plus a set of query attribute
footprints works.  This example models a web-analytics events table with a
mixed dashboard/reporting workload, compares the disk cost model against the
main-memory cost model, and shows how the recommendation changes (the paper's
Table 6 effect: in main memory, plain columns are almost impossible to beat).
"""

from __future__ import annotations

from repro import (
    Column,
    HDDCostModel,
    LayoutAdvisor,
    MainMemoryCostModel,
    Query,
    TableSchema,
    Workload,
)


def build_events_workload() -> Workload:
    """A 12-attribute click-events table with three classes of queries."""
    schema = TableSchema(
        name="events",
        columns=[
            Column.of_type("event_id", "bigint"),
            Column.of_type("user_id", "bigint"),
            Column.of_type("session_id", "bigint"),
            Column.of_type("timestamp", "date"),
            Column.of_type("event_type", "char", 12),
            Column.of_type("page_url", "varchar", 120),
            Column.of_type("referrer_url", "varchar", 120),
            Column.of_type("country", "char", 2),
            Column.of_type("device", "char", 16),
            Column.of_type("revenue", "decimal"),
            Column.of_type("latency_ms", "int"),
            Column.of_type("user_agent", "varchar", 200),
        ],
        row_count=25_000_000,
    )
    queries = [
        # Real-time dashboard: counts by type and country over time.
        Query("dashboard_traffic", ["timestamp", "event_type", "country"], weight=30),
        Query("dashboard_devices", ["timestamp", "device", "event_type"], weight=20),
        # Revenue reporting: a narrow numeric slice.
        Query("revenue_by_country", ["timestamp", "country", "revenue"], weight=10),
        Query("revenue_by_user", ["user_id", "revenue", "timestamp"], weight=5),
        # Performance monitoring.
        Query("latency_percentiles", ["timestamp", "latency_ms", "page_url"], weight=8),
        # Occasional deep-dive session analysis touching the wide text columns.
        Query(
            "session_replay",
            ["session_id", "user_id", "timestamp", "page_url", "referrer_url",
             "user_agent", "event_type"],
            weight=1,
        ),
    ]
    return Workload(schema, queries, name="web-events")


def main() -> None:
    workload = build_events_workload()
    print(workload.describe())

    for label, cost_model in (
        ("disk-based system (HDD cost model)", HDDCostModel()),
        ("in-memory system (cache-miss cost model)", MainMemoryCostModel()),
    ):
        advisor = LayoutAdvisor(cost_model=cost_model)
        report = advisor.recommend(workload)
        print()
        print("=" * 72)
        print(f"Recommendation for a {label}")
        print("=" * 72)
        print(report.describe())
        best = report.best
        print()
        print(f"Best layout ({best.algorithm}):")
        print(best.partitioning.describe())


if __name__ == "__main__":
    main()
