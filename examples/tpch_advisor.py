#!/usr/bin/env python3
"""Physical design advisor for the full TPC-H benchmark.

This is the paper's main scenario: an analyst has a row-oriented database,
TPC-H-like analytical queries, and wants to know (a) which vertical
partitioning algorithm to trust and (b) whether partitioning is worth it at
all compared to a plain column layout.

The script partitions every TPC-H table with every algorithm, prints the
per-algorithm totals (Figure 3), the fraction of unnecessary data read
(Figure 4) and when the investment pays off over the row layout (Figure 10).

Usage::

    python examples/tpch_advisor.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.experiments import optimization_time, payoff, quality
from repro.experiments.report import format_percentage, format_table
from repro.experiments.runner import run_suite
from repro.workload import tpch


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    print(f"Running the full advisor on TPC-H at scale factor {scale_factor:g} ...")

    workloads = tpch.tpch_workloads(scale_factor=scale_factor)
    suite = run_suite(workloads)

    print()
    print(format_table(
        optimization_time.optimization_times(suite=suite),
        title="How fast?  (total optimisation time, seconds)",
    ))
    print()
    print(format_table(
        quality.estimated_workload_runtimes(suite=suite),
        title="How good?  (estimated workload runtime, seconds)",
    ))
    print()
    print(format_table(
        quality.unnecessary_data_read(suite=suite),
        title="Unnecessary data read (fraction of bytes read)",
    ))
    print()
    print(format_table(
        payoff.payoff_over_baselines(suite=suite),
        title="Pay-off (workload executions until the investment is recovered)",
    ))

    column_total = suite.total_cost("column")
    best_name = min(
        (name for name in suite.algorithms if name not in ("row", "column")),
        key=suite.total_cost,
    )
    best_total = suite.total_cost(best_name)
    print()
    print(
        f"Best algorithm: {best_name} "
        f"({format_percentage((column_total - best_total) / column_total)} over Column)"
    )
    for table in suite.tables:
        print()
        print(suite.layout(best_name, table).describe())


if __name__ == "__main__":
    main()
