#!/usr/bin/env python3
"""Buffer-size tuning: where does vertical partitioning make sense?

The paper's core practical lesson (Lesson 2) is that the database I/O buffer
size decides whether column grouping helps at all: below roughly 100 MB it
does, above it a plain column layout is at least as good.  This script sweeps
the buffer size for a table of your choice, re-optimising the layout at every
point (Figure 9), and also shows what happens if you *keep* the 8 MB-optimised
layout while the buffer changes underneath you (Figure 8 — fragility).

Usage::

    python examples/buffer_size_tuning.py [table] [scale_factor]
"""

from __future__ import annotations

import sys

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import column_partitioning
from repro.cost.disk import DEFAULT_DISK, MB
from repro.cost.hdd import HDDCostModel
from repro.metrics.fragility import fragility, normalized_cost
from repro.workload import tpch

BUFFER_SIZES_MB = (0.08, 0.8, 8, 80, 800, 8000)


def main() -> None:
    table = sys.argv[1] if len(sys.argv) > 1 else "lineitem"
    scale_factor = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    workload = tpch.tpch_workload(table, scale_factor=scale_factor)

    base_model = HDDCostModel(DEFAULT_DISK)
    base_layout = get_algorithm("hillclimb").run(workload, base_model).partitioning
    print(f"HillClimb layout optimised for the default 8 MB buffer on {table}:")
    print(base_layout.describe())

    print()
    print(f"{'buffer':>10s} {'re-optimised vs column':>24s} {'stale 8MB layout drift':>24s}")
    for buffer_mb in BUFFER_SIZES_MB:
        disk = DEFAULT_DISK.with_buffer_size(int(buffer_mb * MB))
        model = HDDCostModel(disk)
        reoptimised = get_algorithm("hillclimb").run(workload, model).partitioning
        ratio = normalized_cost(workload, reoptimised, model)
        drift = fragility(workload, base_layout, base_model, model)
        print(
            f"{buffer_mb:>8g}MB {ratio * 100:>22.1f}% {drift * 100:>+22.1f}%"
        )

    print()
    huge = HDDCostModel(DEFAULT_DISK.with_buffer_size(8000 * MB))
    column_cost = huge.workload_cost(workload, column_partitioning(workload.schema))
    grouped_cost = huge.workload_cost(workload, base_layout)
    if grouped_cost >= column_cost:
        print(
            "With a multi-GB buffer the column layout is at least as good as the\n"
            "grouped layout — if you can afford large buffered reads, skip the\n"
            "vertical partitioning machinery (the paper's Lesson 4)."
        )
    else:
        print("Column grouping still pays off even with a huge buffer on this workload.")


if __name__ == "__main__":
    main()
