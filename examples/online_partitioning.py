#!/usr/bin/env python3
"""Online partitioning: watching O2P adapt as queries arrive.

O2P was designed for the online setting: it does not see the workload up
front, but updates its affinity clustering and adds (at most) one split per
incoming query.  This example replays the Lineitem workload query by query and
prints the layout O2P has committed to after each step, together with the cost
it would achieve on the queries seen so far, compared against the offline
HillClimb layout computed with hindsight.

Usage::

    python examples/online_partitioning.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.core.algorithm import get_algorithm
from repro.cost.hdd import HDDCostModel
from repro.workload import tpch
from repro.workload.workload import Workload


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    full_workload = tpch.tpch_workload("lineitem", scale_factor=scale_factor)
    model = HDDCostModel()
    names = full_workload.schema.attribute_names

    print(f"Replaying {full_workload.query_count} Lineitem queries through O2P\n")
    print(f"{'step':>4s} {'query':>6s} {'parts':>6s} {'O2P cost':>12s} {'hindsight':>12s}")

    for step in range(1, full_workload.query_count + 1):
        seen = Workload(
            full_workload.schema,
            list(full_workload.queries[:step]),
            name=f"lineitem-first-{step}",
        )
        o2p_layout = get_algorithm("o2p").compute(seen, model)
        hindsight = get_algorithm("hillclimb").compute(seen, model)
        o2p_cost = model.workload_cost(seen, o2p_layout)
        hindsight_cost = model.workload_cost(seen, hindsight)
        query_name = full_workload.queries[step - 1].name
        print(
            f"{step:>4d} {query_name:>6s} {o2p_layout.partition_count:>6d} "
            f"{o2p_cost:>12.3f} {hindsight_cost:>12.3f}"
        )

    print("\nFinal O2P layout:")
    final = get_algorithm("o2p").compute(full_workload, model)
    for index, partition in enumerate(final, start=1):
        group = ", ".join(names[i] for i in partition)
        print(f"  P{index}: {group}")


if __name__ == "__main__":
    main()
