#!/usr/bin/env python3
"""Online partitioning: watching O2P and the adaptive controller on a stream.

O2P was designed for the online setting: it does not see the workload up
front, but updates its affinity clustering and adds (at most) one split per
incoming query.  This example replays the Lineitem workload as a query
stream and steps O2P *incrementally* — one :class:`O2PStepper` fed one query
at a time, with every per-step layout costed through the memoized
:class:`CostEvaluator` kernel.  The whole replay is a single pass: no
prefix-workload rebuilding, no from-scratch re-runs per step (the previous
version of this example recomputed O2P and a hindsight HillClimb on the
prefix at every arrival, which was quadratic in the stream length).

Afterwards the same stream is run through the online policy harness to
compare O2P's always-on splitting against the drift-triggered, pay-off-gated
adaptive controller and the static hindsight layout, using the cumulative
scan + re-organisation accounting of :mod:`repro.online`.

Usage::

    python examples/online_partitioning.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.algorithms.o2p import O2PStepper
from repro.cost.evaluator import CostEvaluator
from repro.cost.hdd import HDDCostModel
from repro.online import (
    AdaptiveAdvisor,
    O2PPolicy,
    hindsight_policy,
    replay_stream,
    run_policy,
)
from repro.workload import tpch


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    workload = tpch.tpch_workload("lineitem", scale_factor=scale_factor)
    stream = replay_stream(workload)
    model = HDDCostModel()
    names = stream.schema.attribute_names

    print(f"Replaying {stream.arrival_count} Lineitem queries through O2P\n")
    print(f"{'step':>4s} {'query':>6s} {'parts':>6s} {'split':>6s} {'window cost':>12s}")

    # One incremental pass: the stepper carries O2P's state across arrivals,
    # and the evaluator memoizes group profiles and co-read costs.  The
    # running cost of the seen queries is maintained incrementally — a step
    # without a split adds only the new query's cost; the seen set is
    # re-costed only when a split changes the layout, which O2P does at most
    # (#attributes - 1) times regardless of stream length.
    stepper = O2PStepper(stream.schema)
    evaluator = CostEvaluator(workload, model)
    seen_masks = []
    layout_masks = stepper.layout_masks()
    seen_cost = 0.0
    for step, query in enumerate(stream, start=1):
        split = stepper.step(query)
        seen_masks.append((query.index_mask, query.weight))
        if split:
            layout_masks = stepper.layout_masks()
            seen_cost = sum(
                weight * evaluator.query_cost(mask, layout_masks)
                for mask, weight in seen_masks
            )
        else:
            seen_cost += query.weight * evaluator.query_cost(
                query.index_mask, layout_masks
            )
        print(
            f"{step:>4d} {query.name:>6s} {len(layout_masks):>6d} "
            f"{'yes' if split else '':>6s} {seen_cost:>12.3f}"
        )

    print("\nFinal O2P layout:")
    for index, partition in enumerate(stepper.layout(), start=1):
        group = ", ".join(names[i] for i in partition)
        print(f"  P{index}: {group}")

    print("\nPolicy comparison on the same stream (cumulative seconds):")
    print(
        f"{'policy':>18s} {'scan':>10s} {'create':>8s} {'opt':>8s} "
        f"{'total':>10s} {'reorgs':>6s}"
    )
    for policy in (
        hindsight_policy(stream, model),
        O2PPolicy(),
        AdaptiveAdvisor(model, window=min(16, stream.arrival_count)),
    ):
        result = run_policy(stream, policy, model)
        print(
            f"{result.policy:>18s} {result.scan_cost:>10.3f} "
            f"{result.creation_cost:>8.2f} {result.optimization_time:>8.3f} "
            f"{result.total_cost:>10.3f} {result.reorg_count:>6d}"
        )


if __name__ == "__main__":
    main()
