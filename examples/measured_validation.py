"""Validate estimated costs against measured execution.

Every other example trusts the analytical cost model; this one checks it.
``LayoutAdvisor.validate_costs`` runs the configured algorithms, materialises
each recommended layout (plus the Row and Column baselines) into numpy-backed
column-group files, replays the workload with bulk buffered scans, and
compares the measured I/O times with the model's predictions — per-layout
relative error and the Spearman rank correlation across layouts.

Run with::

    PYTHONPATH=src python examples/measured_validation.py [table] [scale] [rows]

e.g. ``... measured_validation.py partsupp 0.1 20000``.
"""

import sys

from repro import LayoutAdvisor, tpch
from repro.experiments.report import format_table
from repro.experiments.validation import (
    agreement_summary,
    estimated_vs_measured_runtimes,
    validation_reports,
)


def main() -> None:
    table = sys.argv[1] if len(sys.argv) > 1 else "partsupp"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    rows = int(sys.argv[3]) if len(sys.argv) > 3 else 20_000

    # One table, one report: every algorithm plus Row and Column.
    workload = tpch.tpch_workload(table, scale_factor=scale)
    advisor = LayoutAdvisor()
    report = advisor.validate_costs(workload, rows=rows)
    print(report.describe())
    print()

    # The Figure 3 shape across several tables: estimated and measured
    # total runtimes side by side, plus the pooled agreement summary.
    reports = validation_reports(scale_factor=scale, rows=rows)
    print(
        format_table(
            estimated_vs_measured_runtimes(reports),
            title="Workload runtimes across tables (Figure 3 shape)",
        )
    )
    summary = agreement_summary(reports)
    print(
        f"\npooled rank correlation: {summary['rank_correlation']:.4f} over "
        f"{summary['layouts_validated']} layouts "
        f"(worst |rel err|: {summary['max_absolute_relative_error'] * 100:.2f}%)"
    )


if __name__ == "__main__":
    main()
