#!/usr/bin/env python3
"""Quickstart: recommend a vertical partitioning for one table.

Runs every partitioning algorithm on the TPC-H PartSupp workload (the example
from the paper's introduction scaled up to the full benchmark queries) and
prints a comparison report plus the recommended layout.

Usage::

    python examples/quickstart.py [table] [scale_factor]
"""

from __future__ import annotations

import sys

from repro import LayoutAdvisor, tpch


def main() -> None:
    table = sys.argv[1] if len(sys.argv) > 1 else "partsupp"
    scale_factor = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    workload = tpch.tpch_workload(table, scale_factor=scale_factor)
    print(workload.describe())
    print()

    advisor = LayoutAdvisor()
    report = advisor.recommend(workload)
    print(report.describe())
    print()

    best = report.best
    print(f"Recommended layout (from {best.algorithm}):")
    print(best.partitioning.describe())
    print()
    print(
        f"Estimated improvement over a row layout:    "
        f"{best.improvement_over_row * 100:+.2f}%"
    )
    print(
        f"Estimated improvement over a column layout: "
        f"{best.improvement_over_column * 100:+.2f}%"
    )


if __name__ == "__main__":
    main()
