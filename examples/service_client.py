#!/usr/bin/env python3
"""Advisor service client: submit a grid over HTTP, poll it, print the tables.

Boots an in-process ``repro.service`` instance on an ephemeral port (no
separate terminal needed), submits a comparison job, polls it to completion,
and submits it *again* to show both reuse layers at work: the resubmission
dedups onto the finished job (one computation for two requests) and — after
a simulated restart — a fresh service over the same cache directory serves
the spec as a pure result-cache hit.

Point ``--url`` at an already-running server (``python -m repro.service``)
to use it as a plain client instead. Uses nothing beyond ``urllib``.

Usage::

    python examples/service_client.py [grid] [cache_dir]
    python examples/service_client.py --url http://localhost:8137 [grid]
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request


def post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path) as response:
        return json.loads(response.read())


def poll(base: str, job_id: str, timeout: float = 600.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = get(base, f"/v1/jobs/{job_id}")
        if job["state"] in ("done", "failed"):
            return job
        time.sleep(0.2)
    raise TimeoutError(f"job {job_id} still {job['state']} after {timeout:g}s")


def submit_and_wait(base: str, spec: dict) -> dict:
    accepted = post(base, "/v1/compare", spec)
    job = accepted["job"]
    print(
        f"submitted {job['id']} (deduped: {accepted['deduped']}), "
        f"polling {accepted['poll']} ..."
    )
    finished = poll(base, job["id"])
    if finished["state"] == "failed":
        raise RuntimeError(f"job failed: {finished['error']}")
    return finished


def main() -> None:
    argv = sys.argv[1:]
    url = None
    if argv and argv[0] == "--url":
        url = argv[1].rstrip("/")
        argv = argv[2:]
    spec = {"grid": argv[0] if argv else "tiny"}
    cache_dir = argv[1] if len(argv) > 1 else ".grid-cache"

    if url is None:
        from repro.service import create_service

        service = create_service(port=0, cache_dir=cache_dir, workers=2)
        service.serve_in_thread()
        url = service.url
        print(f"service up at {url} (cache: {cache_dir})")
    else:
        service = None

    try:
        finished = submit_and_wait(url, spec)
        result = finished["result"]
        print()
        print(result["tables"])
        print()
        print(
            f"job {finished['id']}: {result['accounting']} "
            f"in {finished['wall_seconds']:.2f}s"
        )

        # Same spec again: no second computation, just the same job document.
        again = post(url, "/v1/compare", spec)
        print(
            f"resubmission: deduped={again['deduped']}, "
            f"state={again['job']['state']} (result served immediately)"
        )
    finally:
        if service is not None:
            service.stop()

    if service is not None:
        # "Restart": a fresh service over the same cache directory. The job
        # registry is empty, but every cell comes off the persistent cache.
        from repro.service import create_service

        revived = create_service(port=0, cache_dir=cache_dir, workers=2)
        revived.serve_in_thread()
        try:
            finished = submit_and_wait(revived.url, spec)
            cache = finished["result"]["cache"]
            print(
                f"after restart: {cache['hits']} cache hits, "
                f"{cache['computed']} computed — pure cache replay"
            )
        finally:
            revived.stop()


if __name__ == "__main__":
    main()
