"""Integration tests: the measured-execution backend through the whole stack.

Covers the acceptance path end to end: a measured grid run produces an
estimated-vs-measured agreement table with high rank correlation, measured
cells cache and resume like estimated ones (and invalidate on data-seed /
scale changes), serial and parallel measured runs agree byte for byte on the
deterministic payload, ``LayoutAdvisor.validate_costs`` validates all six
algorithms plus brute force, and the Figure 3 validation experiment holds its
shape.
"""

import pytest

from repro.core.advisor import LayoutAdvisor
from repro.cost.hdd import HDDCostModel
from repro.experiments import validation as validation_experiment
from repro.grid.aggregate import agreement_rows, agreement_summary_rows
from repro.grid.cache import canonical_json, deterministic_payload
from repro.grid.runner import run_grid
from repro.grid.spec import GridError, GridSpec, register_workload
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


def _measured_workload(name: str) -> Workload:
    schema = TableSchema(
        f"{name}_table",
        [Column("a", 4), Column("b", 8), Column("c", 40), Column("d", 16),
         Column("e", 8)],
        120_000,
    )
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=2.0),
            Query("Q2", ["c"]),
            Query("Q3", ["a", "d", "e"], weight=0.5),
            Query("Q4", ["b", "c", "e"]),
        ],
        name=name,
    )


for _name in ("mb_alpha", "mb_beta"):
    try:
        register_workload(f"measured:{_name}", lambda _n=_name: _measured_workload(_n))
    except GridError:
        pass

MEASURED_SPEC = GridSpec(
    name="measured-unit",
    algorithms=("hillclimb", "navathe"),
    workloads=("measured:mb_alpha", "measured:mb_beta"),
    cost_models=("hdd",),
    backend="measured",
    measurement={"rows": 2_000},
)


class TestMeasuredGrid:
    def test_cells_carry_agreeing_measured_sections(self):
        report = run_grid(MEASURED_SPEC, cache_dir=None)
        assert len(report.results) == 4
        for result in report.results:
            measured = result.measured
            assert measured is not None
            assert measured["rows"] == 2_000
            assert measured["measured_io_seconds"] > 0
            assert abs(measured["relative_error"]) <= 0.02
        rows = agreement_rows(report.results)
        assert len(rows) == 4
        summary = agreement_summary_rows(report.results)
        pooled = next(row for row in summary if row["algorithm"] == "(all)")
        assert pooled["rank corr"] >= 0.9
        assert "Estimated vs measured agreement" in report.describe()

    def test_measured_runs_cache_and_resume(self, tmp_path):
        first = run_grid(MEASURED_SPEC, cache_dir=str(tmp_path))
        second = run_grid(MEASURED_SPEC, cache_dir=str(tmp_path))
        assert first.computed == 4 and second.cache_hits == 4
        for a, b in zip(first.results, second.results):
            assert canonical_json(a.payload).encode() == canonical_json(b.payload).encode()

    def test_changed_seed_and_scale_invalidate_measured_cells(self, tmp_path):
        run_grid(MEASURED_SPEC, cache_dir=str(tmp_path))
        reseeded = MEASURED_SPEC.with_backend(
            "measured", {"rows": 2_000, "data_seed": 5}
        )
        assert run_grid(reseeded, cache_dir=str(tmp_path)).computed == 4
        rescaled = MEASURED_SPEC.with_backend("measured", {"rows": 3_000})
        assert run_grid(rescaled, cache_dir=str(tmp_path)).computed == 4
        # The original cells are untouched: a re-run is still fully cached.
        assert run_grid(MEASURED_SPEC, cache_dir=str(tmp_path)).cache_hits == 4

    def test_parallel_measured_run_matches_serial(self, tmp_path):
        serial = run_grid(MEASURED_SPEC, cache_dir=None, workers=1)
        parallel = run_grid(MEASURED_SPEC, cache_dir=str(tmp_path), workers=2)
        assert parallel.computed == 4
        for s, p in zip(serial.results, parallel.results):
            assert s.cell == p.cell
            det_s = canonical_json(deterministic_payload(s.payload))
            det_p = canonical_json(deterministic_payload(p.payload))
            assert det_s.encode() == det_p.encode()

    def test_equal_sharing_cells_agree_under_their_own_policy(self):
        # The executor traces the model's buffer-sharing policy, so measuring
        # the hdd:equal ablation compares like with like.
        spec = GridSpec(
            name="measured-equal",
            algorithms=("hillclimb",),
            workloads=("measured:mb_alpha",),
            cost_models=("hdd:equal",),
            backend="measured",
            measurement={"rows": 2_000},
        )
        report = run_grid(spec, cache_dir=None)
        measured = report.results[0].measured
        assert measured is not None
        assert abs(measured["relative_error"]) <= 0.02

    def test_unsupported_cost_model_is_reported_not_coerced(self):
        spec = GridSpec(
            name="measured-mm",
            algorithms=("hillclimb",),
            workloads=("measured:mb_alpha",),
            cost_models=("mainmemory",),
            backend="measured",
            measurement={"rows": 2_000},
        )
        report = run_grid(spec, cache_dir=None)
        result = report.results[0]
        assert result.measured is None
        assert result.payload["measured"]["supported"] is False
        assert agreement_rows(report.results) == []

    def test_measurement_requires_measured_backend(self):
        with pytest.raises(GridError):
            GridSpec(
                name="bad",
                algorithms=("hillclimb",),
                workloads=("measured:mb_alpha",),
                cost_models=("hdd",),
                measurement={"rows": 100},
            )


class TestValidateCosts:
    def test_all_algorithms_plus_brute_force_validate(self):
        workload = _measured_workload("validate")
        advisor = LayoutAdvisor(
            algorithms=(
                "autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan",
                "brute-force",
            )
        )
        report = advisor.validate_costs(workload, rows=2_000)
        labels = {validation.label for validation in report.validations}
        assert {"brute-force", "hillclimb", "row", "column"} <= labels
        assert len(report.validations) == 9  # 7 algorithms + 2 baselines
        assert report.rank_correlation >= 0.9
        assert report.max_absolute_relative_error <= 0.02
        # Prediction and measurement are compared at the *measured* scale, so
        # they must crown the same cheapest layout there.  (Brute force's
        # full-scale optimality is the differential test's claim; at a tiny
        # measured scale block rounding can legitimately favour a different
        # layout, and the model predicts exactly that.)
        cheapest_measured = min(
            report.validations, key=lambda v: v.measured_io_seconds
        )
        cheapest_predicted = min(
            report.validations, key=lambda v: v.predicted_seconds
        )
        assert cheapest_measured.label == cheapest_predicted.label

    def test_validate_costs_requires_a_disk_model(self):
        from repro.cost.mainmemory import MainMemoryCostModel

        advisor = LayoutAdvisor(cost_model=MainMemoryCostModel())
        with pytest.raises(ValueError):
            advisor.validate_costs(_measured_workload("mm"), rows=1_000)


class TestValidationExperiment:
    def test_figure3_shape_survives_measurement(self):
        reports = validation_experiment.validation_reports(
            tables=("partsupp",),
            scale_factor=0.1,
            algorithms=("hillclimb", "navathe"),
            rows=2_000,
        )
        rows = validation_experiment.estimated_vs_measured_runtimes(reports)
        assert {row["layout"] for row in rows} == {
            "hillclimb", "navathe", "row", "column"
        }
        # Measured order must match estimated order (the figure's shape).
        by_estimate = sorted(rows, key=lambda row: row["estimated_runtime_s"])
        assert [row["layout"] for row in by_estimate] == [
            row["layout"] for row in rows
        ]
        summary = validation_experiment.agreement_summary(reports)
        assert summary["rank_correlation"] >= 0.9
        assert summary["layouts_validated"] == 4
        assert summary["per_table"]["partsupp"]["rank_correlation"] >= 0.9
