"""Randomized differential test of every algorithm's reported cost.

Guards the ``CostEvaluator`` exactness invariant (docs/PERFORMANCE.md) from
the outside: on ~50 seeded random small schemas/workloads, for all six
algorithms plus brute force,

* the cost each algorithm *reports* for its best layout must equal a fresh
  un-memoized ``CostModel.workload_cost`` recomputation on a brand-new model
  instance — bit for bit, not approximately (both sides run the same float
  arithmetic in the same canonical order, so any divergence means a caching
  or ordering bug in the kernel, not rounding), and
* no algorithm may beat the exact brute-force enumeration (over raw
  attributes, the true lower bound) — an algorithm "improving" on the
  optimum means it evaluated candidates under a different cost function than
  it reported.

Schemas are kept at 4–6 attributes so the exact enumeration stays trivial
(Bell(6) = 203 candidates) while widths, row counts, footprints and weights
vary freely.
"""

import numpy as np
import pytest

from repro.core.algorithm import get_algorithm
from repro.cost.evaluator import CostEvaluator
from repro.cost.hdd import HDDCostModel
from repro.workload.query import Query
from repro.workload.synthetic import random_workload, synthetic_table

SEEDS = range(50)

ALGORITHMS = ("autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan")

#: Exact optimum: enumerate raw attributes, no primary-partition collapsing.
BRUTE_FORCE_OPTIONS = {"collapse_primary_partitions": False}


def _random_case(seed: int):
    """One seeded (workload, cost model) pair with varied shape."""
    rng = np.random.default_rng(seed)
    schema = synthetic_table(
        num_attributes=int(rng.integers(4, 7)),
        row_count=int(rng.integers(20_000, 500_000)),
        min_width=2,
        max_width=48,
        name=f"diff_{seed}",
        random_state=rng,
    )
    workload = random_workload(
        schema,
        num_queries=int(rng.integers(3, 7)),
        random_state=rng,
        name=f"diff-wl-{seed}",
    )
    # Vary the weights so weighted summation order matters.
    reweighted = [
        Query(
            name=query.name,
            attributes=[schema.attribute_names[i] for i in query.attribute_indices],
            weight=float(rng.integers(1, 5)),
        )
        for query in workload
    ]
    return type(workload)(schema, reweighted, name=workload.name)


@pytest.mark.parametrize("seed", SEEDS)
def test_reported_costs_are_exact_and_bounded_by_brute_force(seed):
    workload = _random_case(seed)
    optimal = get_algorithm("brute-force", **BRUTE_FORCE_OPTIONS).run(
        workload, HDDCostModel()
    )
    # Brute force itself must report an exactly-recomputable cost.
    fresh_optimal = HDDCostModel().workload_cost(workload, optimal.partitioning)
    assert optimal.estimated_cost == fresh_optimal

    for name in ALGORITHMS:
        result = get_algorithm(name).run(workload, HDDCostModel())
        # A brand-new model instance, no evaluator, no shared caches: the
        # reported cost must be reproducible from scratch, exactly.
        fresh = HDDCostModel().workload_cost(workload, result.partitioning)
        assert result.estimated_cost == fresh, (
            f"{name} reported {result.estimated_cost!r} but a fresh "
            f"recomputation gives {fresh!r} (seed {seed})"
        )
        # The memoized kernel must agree with the naive path on the same
        # layout, bit for bit.
        kernel = CostEvaluator(workload, HDDCostModel()).evaluate(
            result.partitioning.as_masks()
        )
        assert kernel == fresh, (
            f"{name}: kernel cost {kernel!r} != naive cost {fresh!r} (seed {seed})"
        )
        # Nothing beats the exact enumeration.
        assert fresh >= fresh_optimal * (1.0 - 1e-12), (
            f"{name} cost {fresh!r} beats brute force {fresh_optimal!r} "
            f"(seed {seed})"
        )
