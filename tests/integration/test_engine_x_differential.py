"""Randomized differential test: estimated vs measured vs SQLite, 30+ seeds.

Each seed generates a schema, a layout and a nested-footprint workload
(:func:`repro.engine_x.differential.random_case`), runs it through all three
backends, and asserts two things per seed:

* the per-query *rankings* agree — tie-aware Spearman >= 0.8 between the
  analytical cost, the traced numpy replay and the real engine's wall clock
  (the case generator makes footprints geometrically separated, so warm-run
  noise cannot plausibly flip adjacent ranks);
* the scanned-row/byte *accounting* is bit-identical across backends, each
  deriving it through its own mechanism (closed formulas / traced buffer
  walk / database catalog + ``count(*)``).
"""

import pytest

from repro.engine_x.differential import random_case, run_differential

#: The issue's acceptance floor: at least 30 seeds, every one agreeing.
SEEDS = tuple(range(30))

#: Tie-aware Spearman floor per seed (cases are built to make this easy for a
#: correct backend and hopeless for a wrong one).
MIN_SPEARMAN = 0.8


class TestCaseGenerator:
    def test_cases_are_deterministic_per_seed(self):
        for seed in (0, 7, 29):
            first, second = random_case(seed), random_case(seed)
            assert first.workload.schema == second.workload.schema
            assert first.partitioning.partitions == second.partitioning.partitions
            assert [q.name for q in first.workload.queries] == [
                q.name for q in second.workload.queries
            ]

    def test_cases_vary_across_seeds(self):
        schemas = {random_case(seed).workload.schema for seed in SEEDS}
        assert len(schemas) == len(SEEDS)

    def test_footprints_are_nested_and_geometrically_separated(self):
        for seed in (0, 11, 23):
            case = random_case(seed)
            schema = case.workload.schema
            footprints = []
            previous = frozenset()
            for query in case.workload.queries:
                indices = frozenset(query.attribute_indices)
                assert previous < indices  # strictly nested
                previous = indices
                footprints.append(
                    sum(schema.columns[i].width for i in indices)
                )
            for smaller, larger in zip(footprints, footprints[1:]):
                # The generator adds >= 55% of the cumulative volume per
                # group, so adjacent footprints are decidably separated.
                assert larger >= smaller * 1.5


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_agreement(seed, tmp_path):
    result = run_differential(seed, database_dir=str(tmp_path))
    assert len(result.comparisons) == 5
    assert result.scan_counts_agree, result.describe()
    assert result.spearman_estimated_measured >= MIN_SPEARMAN, result.describe()
    assert result.spearman_estimated_sqlite >= MIN_SPEARMAN, result.describe()
    assert result.spearman_measured_sqlite >= MIN_SPEARMAN, result.describe()


def test_differential_timings_are_positive_and_distinct(tmp_path):
    result = run_differential(3, database_dir=str(tmp_path))
    engine_seconds = [c.sqlite_seconds for c in result.comparisons]
    assert all(seconds > 0 for seconds in engine_seconds)
    # Nested footprints mean strictly growing work; the engine must resolve
    # all five queries to distinct timings at this scale.
    assert len(set(engine_seconds)) == len(engine_seconds)
