"""Integration tests for the experiment drivers (shape checks on small inputs).

Each driver is exercised at a reduced scale (small scale factor, subset of
tables or buffer values) so the suite stays fast; the benchmark harnesses run
the full-size versions.
"""

import pytest

from repro.experiments import (
    dbms_x_experiment,
    fragility,
    layouts,
    optimization_time,
    payoff,
    quality,
    sweet_spots,
    workload_scaling,
)
from repro.experiments.runner import run_suite
from repro.workload import tpch

SCALE_FACTOR = 0.5
SMALL_TABLES = ("partsupp", "customer", "supplier", "nation", "region")


@pytest.fixture(scope="module")
def small_suite():
    workloads = {
        table: tpch.tpch_workload(table, scale_factor=SCALE_FACTOR)
        for table in SMALL_TABLES
    }
    return run_suite(workloads)


class TestOptimizationTimeDrivers:
    def test_figure1_rows(self, small_suite):
        rows = optimization_time.optimization_times(suite=small_suite)
        assert {row["algorithm"] for row in rows} >= {"hillclimb", "brute-force"}
        assert all(row["optimization_time_s"] >= 0 for row in rows)

    def test_figure2_rows(self):
        rows = optimization_time.optimization_time_vs_workload_size(
            max_queries=3, scale_factor=SCALE_FACTOR, algorithms=("hillclimb", "o2p")
        )
        assert [row["k"] for row in rows] == [1, 2, 3]
        assert all(row["hillclimb"] >= 0 for row in rows)


class TestQualityDrivers:
    def test_figure3_includes_baselines(self, small_suite):
        rows = quality.estimated_workload_runtimes(suite=small_suite)
        names = [row["algorithm"] for row in rows]
        assert "row" in names and "column" in names
        by_name = {row["algorithm"]: row["estimated_runtime_s"] for row in rows}
        assert by_name["row"] > by_name["column"]

    def test_figure4_fractions_in_unit_interval(self, small_suite):
        rows = quality.unnecessary_data_read(suite=small_suite)
        for row in rows:
            assert 0.0 <= row["unnecessary_data_fraction"] <= 1.0
        by_name = {row["algorithm"]: row["unnecessary_data_fraction"] for row in rows}
        assert by_name["row"] > by_name["column"]

    def test_figure5_row_layout_has_zero_joins(self, small_suite):
        rows = quality.tuple_reconstruction_joins(suite=small_suite)
        by_name = {row["algorithm"]: row["avg_reconstruction_joins"] for row in rows}
        assert by_name["row"] == 0.0
        assert by_name["column"] >= by_name["hillclimb"]

    def test_figure6_distances_non_negative(self, small_suite):
        rows = quality.distance_from_pmv(suite=small_suite)
        for row in rows:
            assert row["distance_from_pmv"] >= 0.0
        by_name = {row["algorithm"]: row["distance_from_pmv"] for row in rows}
        assert by_name["row"] > by_name["hillclimb"]

    def test_table6_main_memory_kills_the_improvement(self):
        rows = quality.improvement_over_column_by_cost_model(
            scale_factor=SCALE_FACTOR, algorithms=("hillclimb", "navathe")
        )
        by_name = {row["algorithm"]: row for row in rows}
        # In main memory HillClimb cannot beat the column layout by any
        # meaningful margin (Table 6 reports 0.00%).
        assert by_name["hillclimb"]["MM"] <= 0.001
        # Navathe is negative (worse than column) under both models.
        assert by_name["navathe"]["HDD"] < 0.0
        assert by_name["navathe"]["MM"] < 0.0


class TestWorkloadScalingDrivers:
    def test_figure7_rows(self):
        rows = workload_scaling.improvement_over_column_vs_k(
            max_queries=4, scale_factor=SCALE_FACTOR
        )
        assert [row["k"] for row in rows] == [1, 2, 3, 4]
        # For a single query the optimal layout matches that query exactly,
        # so HillClimb improves over Column (positive improvement).
        assert rows[0]["hillclimb"] > 0.0

    def test_table3_hillclimb_reads_no_unnecessary_data_for_small_k(self):
        rows = workload_scaling.unnecessary_reads_vs_k(
            max_queries=3, scale_factor=SCALE_FACTOR
        )
        assert all(row["hillclimb"] == pytest.approx(0.0, abs=1e-9) for row in rows)

    def test_table4_joins_grow_with_k(self):
        rows = workload_scaling.reconstruction_joins_vs_k(
            max_queries=4, scale_factor=SCALE_FACTOR
        )
        assert rows[0]["hillclimb"] <= rows[-1]["hillclimb"]
        # Column always joins every referenced attribute (more than HillClimb).
        for row in rows:
            assert row["column"] >= row["hillclimb"]


class TestFragilityAndSweetSpotDrivers:
    def test_figure8_small_buffer_hurts(self):
        rows = fragility.buffer_size_fragility(
            buffer_sizes=(80 * 1024, 8 * 1024 * 1024, 800 * 1024 * 1024),
            subjects=("hillclimb", "column"),
            scale_factor=SCALE_FACTOR,
        )
        small, default, big = rows
        assert small["hillclimb"] > 0.0
        assert default["hillclimb"] == pytest.approx(0.0)
        assert big["hillclimb"] <= 0.0

    def test_figure11_block_size_has_tiny_impact(self):
        rows = fragility.parameter_fragility(
            "block_size",
            values=(4 * 1024, 8 * 1024, 16 * 1024),
            subjects=("hillclimb", "column"),
            scale_factor=SCALE_FACTOR,
        )
        for row in rows:
            assert abs(row["hillclimb"]) < 0.1

    def test_figure11_rejects_unknown_parameter(self):
        with pytest.raises(ValueError):
            fragility.parameter_fragility("humidity")

    def test_figure9_small_buffers_favour_partitioning(self):
        rows = sweet_spots.buffer_size_sweet_spots(
            buffer_sizes=(100 * 1024, 8 * 1024 * 1024, 1024 * 1024 * 1024),
            scale_factor=SCALE_FACTOR,
            tables=("lineitem",),
        )
        # Normalised costs: <= 1 means at least as good as Column.
        assert rows[0]["hillclimb"] <= 1.0 + 1e-9
        # For a huge buffer the advantage all but disappears (within ~1%).
        assert rows[-1]["hillclimb"] >= 0.99

    def test_figure12_rows_have_all_subjects(self):
        rows = sweet_spots.parameter_sweet_spots(
            "seek_time",
            values=(2e-3, 6e-3),
            scale_factor=SCALE_FACTOR,
            tables=("partsupp",),
        )
        for row in rows:
            for key in ("hillclimb", "navathe", "column", "row", "query_optimal"):
                assert row[key] > 0

    def test_figure13_rows(self):
        rows = sweet_spots.scale_factor_sweet_spots(
            buffer_sizes=(8 * 1024 * 1024,),
            scale_factors=(0.1, 1.0),
            tables=("partsupp",),
        )
        assert len(rows) == 2
        assert {row["scale_factor"] for row in rows} == {0.1, 1.0}


class TestPayoffLayoutsAndDbmsX:
    def test_figure10_payoff_over_row_is_fast(self, small_suite):
        rows = payoff.payoff_over_baselines(suite=small_suite)
        by_name = {row["algorithm"]: row for row in rows}
        # Paying off over Row needs at most a few workload executions.
        assert 0 < by_name["hillclimb"]["payoff_over_row"] < 10
        # Navathe/O2P never pay off over Column (negative improvement).
        assert by_name["navathe"]["payoff_over_column"] < 0

    def test_figure14_layout_classes(self, small_suite):
        classes = layouts.layout_classes(suite=small_suite)
        for table in ("partsupp", "customer"):
            groups = classes[table]
            hillclimb_class = next(
                members for members in groups.values() if "hillclimb" in members
            )
            # The HillClimb class contains AutoPart as well (Figure 14).
            assert "autopart" in hillclimb_class

    def test_figure14_rows_cover_every_table(self, small_suite):
        rows = layouts.computed_layouts(suite=small_suite)
        tables = {row["table"] for row in rows}
        assert tables == set(SMALL_TABLES)

    def test_table7_shape(self):
        rows = dbms_x_experiment.dbms_x_runtimes(
            scale_factor=SCALE_FACTOR, tables=("partsupp", "customer", "supplier")
        )
        assert len(rows) == 2
        # The shared Table-7 schema (repro.experiments.table7): every row
        # carries the engine/encoding labels plus one column per layout.
        assert {row["engine"] for row in rows} == {dbms_x_experiment.ENGINE_LABEL}
        assert len({row["encoding"] for row in rows}) == 2
        for row in rows:
            assert row["row"] > row["column"]
            assert row["row"] > row["hillclimb"]
