"""Chaos tests: kill the advisor service mid-job, restart it, lose nothing.

These tests drive ``python -m repro.service`` as a real subprocess — the
same entry point operators use — and assert the PR-10 durability contract:

* SIGKILL mid-job + restart over the same cache dir converges to the same
  answers (content-hash-equal on the deterministic cell payload) with every
  accepted job reaching a terminal state;
* a saturated queue sheds submissions with 429 + ``Retry-After`` instead of
  melting down;
* injected journal I/O failures degrade durability, never availability.

Determinism comes from ``REPRO_SERVICE_FAULTS`` (``repro.service.faults``):
a ``slow`` fault at ``job.start`` holds jobs at a known checkpoint so kills
and saturation happen inside a guaranteed window, not a lucky race.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.grid.cache import canonical_json
from repro.service.faults import ServiceFaultPlan

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: Two cells (two algorithms), enough substance to survive a mid-run kill.
CHAOS_COMPARE = {
    "algorithms": ["hillclimb", "navathe"],
    "workloads": ["telemetry:small"],
    "cost_models": ["hdd"],
}


def _request(method, url, body=None, timeout=30):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), json.loads(response.read())


class ServiceProcess:
    """One ``python -m repro.service`` subprocess plus its parsed base URL."""

    def __init__(self, cache_dir, extra_args=(), faults=None):
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        env.pop("REPRO_SERVICE_FAULTS", None)
        if faults:
            env["REPRO_SERVICE_FAULTS"] = ServiceFaultPlan.from_mapping(
                faults
            ).to_json()
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0",
             "--cache-dir", str(cache_dir), *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        self.lines = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()
        self.url = self._await_url()

    def _drain(self):
        for line in self.process.stdout:
            self.lines.append(line.rstrip("\n"))

    def _await_url(self, timeout=30):
        deadline = time.monotonic() + timeout
        pattern = re.compile(r"listening on (http://\S+)")
        while time.monotonic() < deadline:
            for line in list(self.lines):
                match = pattern.search(line)
                if match:
                    return match.group(1)
            if self.process.poll() is not None:
                raise RuntimeError(
                    "service exited before binding:\n" + "\n".join(self.lines)
                )
            time.sleep(0.02)
        raise TimeoutError(
            "service never printed its URL:\n" + "\n".join(self.lines)
        )

    def submit(self, kind, body):
        return _request("POST", f"{self.url}/v1/{kind}", body)

    def job(self, job_id):
        return _request("GET", f"{self.url}/v1/jobs/{job_id}")[2]

    def wait_state(self, job_id, states, timeout=60):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            document = self.job(job_id)
            if document["state"] in states:
                return document
            time.sleep(0.05)
        raise TimeoutError(
            f"job {job_id} never reached {states} "
            f"(last state {document['state']!r})"
        )

    def kill(self):
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def stop(self):
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGINT)
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)


def _deterministic_cells(result):
    """The run-independent portion of a compare result, canonically encoded.

    Cache hit counts, attempts and wall timings legitimately differ between
    an interrupted-and-recovered run and a clean one; the *answers* — which
    layout each algorithm chose and what it costs — must not.
    """
    return canonical_json(
        [
            {
                "label": cell["label"],
                "key": cell["key"],
                "ok": cell["ok"],
                "estimated_cost": cell.get("estimated_cost"),
                "layout": cell.get("layout"),
            }
            for cell in sorted(result["cells"], key=lambda cell: cell["label"])
        ]
    )


class TestKillAndRecover:
    def test_sigkill_mid_job_restart_converges_to_same_answers(self, tmp_path):
        cache_dir = tmp_path / "cache"

        # Reference: the same spec on an untouched service and cache.
        reference = ServiceProcess(tmp_path / "reference-cache")
        try:
            _, _, submitted = reference.submit("compare", CHAOS_COMPARE)
            final = reference.wait_state(
                submitted["job"]["id"], ("done",), timeout=120
            )
            expected = _deterministic_cells(final["result"])
        finally:
            reference.stop()

        # Chaos run: the slow fault holds the job mid-run for 3 seconds —
        # a guaranteed window in which the SIGKILL lands.
        victim = ServiceProcess(
            cache_dir,
            faults={"job.start": {"kind": "slow", "seconds": 3.0}},
        )
        _, _, submitted = victim.submit("compare", CHAOS_COMPARE)
        job_id = submitted["job"]["id"]
        victim.wait_state(job_id, ("running",), timeout=30)
        victim.kill()  # SIGKILL: no drain, no journal goodbye

        # Restart over the same cache dir, no faults: the journal replays,
        # the interrupted job is re-enqueued and runs to completion.
        revived = ServiceProcess(cache_dir)
        try:
            assert any("recovered" in line for line in revived.lines)
            final = revived.wait_state(job_id, ("done",), timeout=120)
            assert _deterministic_cells(final["result"]) == expected
            # Every job the killed process accepted is terminal again.
            _, _, listing = _request("GET", f"{revived.url}/v1/jobs")
            assert listing["total"] == 1
            assert all(
                job["state"] in ("done", "failed", "cancelled")
                for job in listing["jobs"]
            )
            _, _, health = _request("GET", f"{revived.url}/health")
            assert health["recovered_jobs"] == 1
            assert health["journal"] is not None
        finally:
            revived.stop()

    def test_sigkill_with_queued_jobs_recovers_all_of_them(self, tmp_path):
        cache_dir = tmp_path / "cache"
        victim = ServiceProcess(
            cache_dir,
            extra_args=("--workers", "1"),
            faults={"job.start": {"kind": "slow", "seconds": 3.0}},
        )
        _, _, first = victim.submit("compare", CHAOS_COMPARE)
        _, _, second = victim.submit(
            "compare", {**CHAOS_COMPARE, "cost_models": ["mainmemory"]}
        )
        victim.wait_state(first["job"]["id"], ("running",), timeout=30)
        victim.kill()

        revived = ServiceProcess(cache_dir)
        try:
            for document in (first, second):
                final = revived.wait_state(
                    document["job"]["id"], ("done",), timeout=120
                )
                assert final["result"]["cells"], final
            _, _, health = _request("GET", f"{revived.url}/health")
            assert health["recovered_jobs"] == 2
        finally:
            revived.stop()


class TestOverloadShedding:
    def test_full_queue_sheds_429_with_retry_after(self, tmp_path):
        service = ServiceProcess(
            tmp_path / "cache",
            extra_args=("--workers", "1", "--max-queue-depth", "1"),
            faults={"job.start": {"kind": "slow", "seconds": 2.0}},
        )
        try:
            service.submit("compare", CHAOS_COMPARE)
            service.submit(
                "compare", {**CHAOS_COMPARE, "cost_models": ["mainmemory"]}
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                service.submit(
                    "compare", {**CHAOS_COMPARE, "algorithms": ["hillclimb"]}
                )
            assert excinfo.value.code == 429
            retry_after = excinfo.value.headers["Retry-After"]
            assert retry_after is not None and int(retry_after) >= 1
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["type"] == "TooManyRequests"
            assert envelope["error"]["retry_after"] == int(retry_after)
            # Saturation flips readiness but not liveness.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _request("GET", f"{service.url}/health/ready")
            assert excinfo.value.code == 503
            status, _, _ = _request("GET", f"{service.url}/health/live")
            assert status == 200
        finally:
            service.stop()


class TestJournalDegradation:
    def test_journal_faults_degrade_durability_not_availability(self, tmp_path):
        service = ServiceProcess(
            tmp_path / "cache",
            faults={"journal.append": {"kind": "oserror", "times": 2}},
        )
        try:
            _, _, submitted = service.submit("compare", CHAOS_COMPARE)
            final = service.wait_state(
                submitted["job"]["id"], ("done",), timeout=120
            )
            assert final["result"]["cells"]
            _, _, health = _request("GET", f"{service.url}/health")
            assert health["journal"]["append_failures"] >= 1
            assert health["journal"]["appends"] >= 1  # later appends landed
        finally:
            service.stop()

    def test_worker_death_fault_fails_job_but_service_survives(self, tmp_path):
        service = ServiceProcess(
            tmp_path / "cache",
            extra_args=("--workers", "1"),
            faults={"job.start": {"kind": "die", "times": 1}},
        )
        try:
            _, _, submitted = service.submit("compare", CHAOS_COMPARE)
            final = service.wait_state(
                submitted["job"]["id"], ("failed",), timeout=60
            )
            assert final["error"]["type"] == "WorkerThreadDeath"
            # The respawned worker runs the retry to completion.
            _, _, retried = service.submit("compare", CHAOS_COMPARE)
            assert retried["deduped"] is False
            final = service.wait_state(
                submitted["job"]["id"], ("done",), timeout=120
            )
            assert final["result"]["cells"]
        finally:
            service.stop()
