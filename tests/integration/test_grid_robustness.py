"""End-to-end tests of the grid's fault tolerance, driven by injected faults.

Every failure path of :mod:`repro.grid.runner` is exercised deterministically
through :mod:`repro.grid.faults`: in-cell exceptions (quarantine + retries),
hung cells (per-cell timeouts), dead worker processes (crash detection and
respawn), cache I/O failures (graceful degradation), and the keep-going vs
fail-fast CLI semantics including interrupted-run resume under both ``fork``
and ``spawn`` start methods.

Parallel tests use builtin workload ids only: custom ``register_workload``
registrations do not exist inside ``spawn`` workers (they never import this
module), and the suite must behave identically under every start method.
"""

import multiprocessing
import sys
import time

import pytest

from repro.grid import (
    FaultPlan,
    GridExecutionError,
    GridSpec,
    headline_tables,
    run_grid,
)
from repro.grid.cli import main as grid_main
from repro.grid.faults import ENV_VAR
from repro.grid.runner import RetryPolicy
from repro.grid.spec import GridError, register_workload
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload

#: 2 algorithms x 1 workload x 2 cost models, resolvable inside any worker.
PARALLEL_SPEC = GridSpec(
    name="robust",
    algorithms=("hillclimb", "navathe"),
    workloads=("telemetry:small",),
    cost_models=("hdd", "mainmemory"),
)

AVAILABLE_START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


def _tiny_workload(name: str) -> Workload:
    schema = TableSchema(
        f"{name}_table",
        [Column("a", 4), Column("b", 8), Column("c", 60), Column("d", 16)],
        200_000,
    )
    return Workload(
        schema,
        [Query("Q1", ["a", "b"]), Query("Q2", ["c"]), Query("Q3", ["a", "d"])],
        name=name,
    )


try:
    register_workload("robust:w", lambda: _tiny_workload("robust"))
except GridError:
    pass

#: Serial-path spec over the fast registered workload.
SERIAL_SPEC = GridSpec(
    name="robust-serial",
    algorithms=("hillclimb", "navathe"),
    workloads=("robust:w",),
    cost_models=("hdd",),
)


class TestAcceptance:
    """The issue's acceptance scenario: crash + hang + transient in one run."""

    def test_injected_crash_hang_transient_complete_without_aborting(self, tmp_path):
        faults = {
            "hillclimb/telemetry:small/hdd": {
                "kind": "transient", "attempts": 2, "message": "flaky cell",
            },
            "navathe/telemetry:small/hdd": {"kind": "die"},
            "hillclimb/telemetry:small/mainmemory": {"kind": "hang", "seconds": 30},
        }
        report = run_grid(
            PARALLEL_SPEC,
            cache_dir=str(tmp_path),
            workers=2,
            mp_start_method="fork" if "fork" in AVAILABLE_START_METHODS else None,
            retries=2,
            retry_backoff=0.0,
            cell_timeout=1.0,
            faults=faults,
        )
        assert len(report.results) == 4 and report.failed == 2

        transient = report.cell("hillclimb", "telemetry:small", "hdd")
        assert transient.ok and transient.attempts == 3

        crash = report.cell("navathe", "telemetry:small", "hdd")
        assert crash.failure is not None
        assert crash.failure.error_type == "WorkerCrash"
        assert crash.failure.attempts == 3
        assert "exit code 86" in crash.failure.message

        hang = report.cell("hillclimb", "telemetry:small", "mainmemory")
        assert hang.failure is not None
        assert hang.failure.error_type == "CellTimeout"
        assert hang.failure.attempts == 3

        clean = report.cell("navathe", "telemetry:small", "mainmemory")
        assert clean.ok and clean.attempts == 1

        # Failures are first-class rows in the headline tables...
        tables = headline_tables(report.results)
        assert "Failures (quarantined cells)" in tables
        assert "WorkerCrash" in tables and "CellTimeout" in tables
        # ... and in the report accounting.
        assert "2 failed" in report.accounting()

        # Successful cells were cached; failures were not, so a clean rerun
        # recomputes exactly the two lost cells and then everything is cached.
        rerun = run_grid(PARALLEL_SPEC, cache_dir=str(tmp_path))
        assert rerun.ok and rerun.cache_hits == 2 and rerun.computed == 2
        assert run_grid(PARALLEL_SPEC, cache_dir=str(tmp_path)).hit_rate == 1.0


class TestQuarantineSerial:
    def test_raising_cell_is_quarantined_and_run_continues(self):
        faults = {"hillclimb/robust:w/hdd": {"kind": "raise", "message": "boom"}}
        report = run_grid(SERIAL_SPEC, faults=faults)
        assert report.failed == 1 and not report.ok
        failed = report.cell("hillclimb", "robust:w", "hdd")
        assert failed.failure.error_type == "InjectedFaultError"
        assert failed.failure.message == "boom"
        assert failed.payload is None
        with pytest.raises(ValueError, match="boom"):
            failed.estimated_cost
        # The sibling cell completed normally.
        assert report.cell("navathe", "robust:w", "hdd").ok

    def test_transient_cell_succeeds_within_retry_budget(self):
        faults = {
            "hillclimb/robust:w/hdd": {"kind": "transient", "attempts": 2},
        }
        report = run_grid(SERIAL_SPEC, retries=2, retry_backoff=0.0, faults=faults)
        assert report.ok
        assert report.cell("hillclimb", "robust:w", "hdd").attempts == 3

    def test_transient_cell_fails_when_budget_too_small(self):
        faults = {
            "hillclimb/robust:w/hdd": {"kind": "transient", "attempts": 2},
        }
        report = run_grid(SERIAL_SPEC, retries=1, retry_backoff=0.0, faults=faults)
        failed = report.cell("hillclimb", "robust:w", "hdd")
        assert failed.failure is not None
        assert failed.failure.error_type == "TransientInjectedError"
        assert failed.failure.attempts == 2

    def test_die_fault_degrades_to_raise_serially(self):
        # A serial run executes cells in this very process; the fault layer
        # must not os._exit the test runner.
        faults = {"hillclimb/robust:w/hdd": {"kind": "die"}}
        report = run_grid(SERIAL_SPEC, faults=faults)
        failed = report.cell("hillclimb", "robust:w", "hdd")
        assert failed.failure.error_type == "InjectedFaultError"
        assert "die fault degraded" in failed.failure.message

    def test_fail_fast_aborts_with_context(self):
        faults = {"hillclimb/robust:w/hdd": {"kind": "raise", "message": "boom"}}
        with pytest.raises(GridExecutionError) as excinfo:
            run_grid(SERIAL_SPEC, faults=faults, fail_fast=True)
        assert excinfo.value.label == "hillclimb/robust:w/hdd"
        assert excinfo.value.error_type == "InjectedFaultError"
        assert excinfo.value.attempts == 1

    def test_fail_fast_keeps_completed_cells_cached(self, tmp_path):
        # The failing cell comes second in canonical order, so the first
        # completes and must be resumable from the cache after the abort.
        faults = {"navathe/robust:w/hdd": {"kind": "raise"}}
        with pytest.raises(GridExecutionError):
            run_grid(SERIAL_SPEC, cache_dir=str(tmp_path), faults=faults, fail_fast=True)
        resumed = run_grid(SERIAL_SPEC, cache_dir=str(tmp_path))
        assert resumed.ok and resumed.cache_hits == 1 and resumed.computed == 1

    def test_serial_timeout_request_warns_and_is_ignored(self):
        with pytest.warns(RuntimeWarning, match="cannot be preempted"):
            report = run_grid(SERIAL_SPEC, cell_timeout=30.0)
        assert report.ok

    def test_retry_policy_object_is_accepted(self):
        faults = {
            "hillclimb/robust:w/hdd": {"kind": "transient", "attempts": 1},
        }
        policy = RetryPolicy(retries=1, backoff_base=0.0)
        report = run_grid(SERIAL_SPEC, retries=policy, faults=faults)
        assert report.ok
        assert report.cell("hillclimb", "robust:w", "hdd").attempts == 2


class TestParallelFaults:
    def test_worker_crash_is_detected_and_other_cells_survive(self, tmp_path):
        faults = {"navathe/telemetry:small/hdd": {"kind": "die"}}
        report = run_grid(
            PARALLEL_SPEC, cache_dir=str(tmp_path), workers=2, faults=faults
        )
        assert report.failed == 1
        crash = report.cell("navathe", "telemetry:small", "hdd")
        assert crash.failure.error_type == "WorkerCrash"
        assert sum(1 for result in report.results if result.ok) == 3

    def test_hung_cell_is_killed_at_the_deadline(self, tmp_path):
        faults = {
            "hillclimb/telemetry:small/hdd": {"kind": "hang", "seconds": 60},
        }
        start = time.monotonic()
        report = run_grid(
            PARALLEL_SPEC,
            cache_dir=str(tmp_path),
            workers=2,
            cell_timeout=0.5,
            faults=faults,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # nowhere near the 60s hang
        hung = report.cell("hillclimb", "telemetry:small", "hdd")
        assert hung.failure.error_type == "CellTimeout"
        assert sum(1 for result in report.results if result.ok) == 3

    def test_hang_below_timeout_merely_finishes_slowly(self):
        faults = {
            "hillclimb/telemetry:small/hdd": {"kind": "hang", "seconds": 0.2},
        }
        report = run_grid(
            PARALLEL_SPEC, workers=2, cell_timeout=30.0, faults=faults
        )
        assert report.ok

    def test_parallel_fail_fast_aborts(self, tmp_path):
        faults = {"hillclimb/telemetry:small/hdd": {"kind": "raise", "message": "boom"}}
        with pytest.raises(GridExecutionError):
            run_grid(
                PARALLEL_SPEC,
                cache_dir=str(tmp_path),
                workers=2,
                faults=faults,
                fail_fast=True,
            )


@pytest.mark.parametrize("start_method", AVAILABLE_START_METHODS)
class TestInterruptedRunResume:
    """A worker dying mid-grid must lose only its own cell, under fork and spawn."""

    def test_resume_recomputes_only_lost_cells(self, tmp_path, start_method):
        faults = {"navathe/telemetry:small/hdd": {"kind": "die"}}
        interrupted = run_grid(
            PARALLEL_SPEC,
            cache_dir=str(tmp_path),
            workers=2,
            mp_start_method=start_method,
            faults=faults,
        )
        assert interrupted.failed == 1
        assert interrupted.computed == 3

        resumed = run_grid(
            PARALLEL_SPEC,
            cache_dir=str(tmp_path),
            workers=2,
            mp_start_method=start_method,
        )
        assert resumed.ok
        assert resumed.cache_hits == 3 and resumed.computed == 1
        # The recomputed cell agrees with a fresh serial computation.
        recovered = resumed.cell("navathe", "telemetry:small", "hdd")
        reference = run_grid(PARALLEL_SPEC).cell("navathe", "telemetry:small", "hdd")
        assert recovered.layout == reference.layout
        assert recovered.estimated_cost == reference.estimated_cost


class TestCacheDegradation:
    def test_unwritable_cache_degrades_instead_of_raising(self, tmp_path):
        # The cache root is occupied by a *file*: every mkdir/read under it
        # fails with OSError, for root and unprivileged users alike.
        root = tmp_path / "cache"
        root.write_text("not a directory")
        with pytest.warns(RuntimeWarning, match="continuing without the cache"):
            report = run_grid(SERIAL_SPEC, cache_dir=str(root))
        assert report.ok and report.computed == 2
        assert report.cache.store_failures == 2
        assert "degraded: 2 store" in report.cache.describe()

    def test_degradation_warns_exactly_once(self, tmp_path):
        import warnings as warnings_module

        root = tmp_path / "cache"
        root.write_text("not a directory")
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            run_grid(SERIAL_SPEC, cache_dir=str(root))
        io_warnings = [
            w for w in caught if "continuing without the cache" in str(w.message)
        ]
        assert len(io_warnings) == 1

    def test_store_failure_counter_via_monkeypatched_oserror(self, tmp_path, monkeypatch):
        # Disk-full style failure on the atomic replace, not on mkdir.
        import os as os_module

        from repro.grid import cache as cache_module

        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_module.os, "replace", explode)
        with pytest.warns(RuntimeWarning):
            report = run_grid(SERIAL_SPEC, cache_dir=str(tmp_path))
        assert report.ok
        assert report.cache.store_failures == 2
        assert report.cache.stores == 0


class TestCliFailureSemantics:
    CLI_ARGS = [
        "--grid", "tiny",
        "--algorithms", "hillclimb,navathe",
        "--workloads", "telemetry:small",
        "--cost-models", "hdd",
    ]
    FAULTS = FaultPlan.from_mapping(
        {"hillclimb/telemetry:small/hdd": {"kind": "raise", "message": "boom"}}
    )

    def test_keep_going_exits_zero_with_failure_summary(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(ENV_VAR, self.FAULTS.to_json())
        args = self.CLI_ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        captured = capsys.readouterr()
        assert "Failures (quarantined cells)" in captured.out
        assert "1 failed" in captured.out
        assert "1 of 2 cells failed" in captured.err
        assert "InjectedFaultError" in captured.err

    def test_fail_fast_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(ENV_VAR, self.FAULTS.to_json())
        args = self.CLI_ARGS + [
            "--cache-dir", str(tmp_path / "cache"), "--fail-fast",
        ]
        assert grid_main(args) == 1
        captured = capsys.readouterr()
        assert "fail-fast" in captured.err

    def test_retries_flag_recovers_transient_cell(self, tmp_path, monkeypatch, capsys):
        plan = FaultPlan.from_mapping(
            {
                "hillclimb/telemetry:small/hdd": {
                    "kind": "transient", "attempts": 2,
                }
            }
        )
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        args = self.CLI_ARGS + [
            "--cache-dir", str(tmp_path / "cache"),
            "--retries", "2",
            "--retry-backoff", "0",
        ]
        assert grid_main(args) == 0
        captured = capsys.readouterr()
        assert "2 computed" in captured.out
        assert captured.err == ""

    def test_keep_going_and_fail_fast_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            grid_main(self.CLI_ARGS + ["--keep-going", "--fail-fast"])

    def test_invalid_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit):
            grid_main(self.CLI_ARGS + ["--cell-timeout", "0"])

    def test_serial_timeout_note_is_printed(self, tmp_path, capsys):
        args = self.CLI_ARGS + [
            "--cache-dir", str(tmp_path / "cache"),
            "--cell-timeout", "30",
            "--workers", "1",
        ]
        assert grid_main(args) == 0
        assert "only enforced with --workers" in capsys.readouterr().err
