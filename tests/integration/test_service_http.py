"""End-to-end tests of the advisor HTTP service (repro.service).

The centrepiece is the PR's acceptance scenario: two concurrent HTTP clients
submit an identical tiny grid spec; exactly one computation runs (the obs
counters prove it), both receive identical results via job polling, and a
third submission after a server restart is a pure result-cache hit.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import metrics as obs_metrics
from repro.service import create_service

#: A one-cell grid: cheap enough for CI, real enough to exercise the whole
#: submit -> schedule -> run_grid -> cache -> poll pipeline.
TINY_COMPARE = {
    "algorithms": ["hillclimb"],
    "workloads": ["telemetry:small"],
    "cost_models": ["hdd"],
}


def _post(base: str, path: str, body: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _poll_until_done(base: str, job_id: str, timeout: float = 120.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, document = _get(base, f"/v1/jobs/{job_id}")
        if document["state"] in ("done", "failed"):
            return document
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} did not finish within {timeout:g}s")


@pytest.fixture
def service(tmp_path):
    instance = create_service(
        port=0, cache_dir=str(tmp_path / "cache"), workers=2
    )
    instance.serve_in_thread()
    yield instance
    instance.stop()


class TestAcceptance:
    def test_concurrent_identical_submissions_one_computation_then_cached_restart(
        self, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        service = create_service(port=0, cache_dir=cache_dir, workers=2)
        service.serve_in_thread()
        base = service.url
        baseline = obs_metrics.registry().snapshot()
        responses = []

        def submit() -> None:
            responses.append(_post(base, "/v1/compare", TINY_COMPARE))

        clients = [threading.Thread(target=submit) for _ in range(2)]
        for client in clients:
            client.start()
        for client in clients:
            client.join()

        assert [status for status, _ in responses] == [202, 202]
        ids = {document["job"]["id"] for _, document in responses}
        assert len(ids) == 1, "identical specs must share one job"
        job_id = ids.pop()
        # Exactly one submission created the job; the other deduped onto it.
        assert sorted(document["deduped"] for _, document in responses) == [
            False,
            True,
        ]

        polled = [_poll_until_done(base, job_id) for _ in range(2)]
        assert all(document["state"] == "done" for document in polled)
        results = [document["result"] for document in polled]
        assert results[0] == results[1]
        assert results[0]["cells"][0]["ok"] is True
        assert results[0]["cache"]["computed"] == 1
        service.stop()

        # The obs counters prove exactly one computation ran for two clients.
        delta = obs_metrics.registry().delta(baseline)["counters"]
        assert delta.get("grid.cells.computed") == 1
        assert delta.get("service.jobs.submitted") == 1
        assert delta.get("service.jobs.deduped") == 1
        assert delta.get("service.jobs.completed") == 1
        assert delta.get("service.http.requests", 0) >= 4

        # Restart: a fresh service over the same cache dir serves the same
        # spec as a pure cache hit — nothing recomputes.
        baseline = obs_metrics.registry().snapshot()
        revived = create_service(port=0, cache_dir=cache_dir, workers=2)
        revived.serve_in_thread()
        try:
            _, document = _post(revived.url, "/v1/compare", TINY_COMPARE)
            # New registry, so the job itself is fresh (not deduped) ...
            assert document["deduped"] is False
            final = _poll_until_done(revived.url, document["job"]["id"])
            result = final["result"]
            # ... but every cell comes straight from the persistent cache.
            assert result["cache"]["hits"] == 1
            assert result["cache"]["computed"] == 0
            assert result["cells"][0]["cached"] is True
            assert result["cells"][0]["estimated_cost"] == pytest.approx(
                results[0]["cells"][0]["estimated_cost"]
            )
        finally:
            revived.stop()
        delta = obs_metrics.registry().delta(baseline)["counters"]
        assert delta.get("grid.cells.computed") is None
        assert delta.get("grid.cache.hits") == 1


class TestEndpoints:
    def test_health_reports_jobs_and_configuration(self, service):
        status, document = _get(service.url, "/health")
        assert status == 200
        assert document["status"] == "ok"
        assert set(document["jobs"]) == {"queued", "running", "done", "failed"}
        assert document["job_workers"] == 2

    def test_recommend_job_end_to_end(self, service):
        _, document = _post(
            service.url,
            "/v1/recommend",
            {"workload": "telemetry:small", "algorithms": ["hillclimb", "navathe"]},
        )
        final = _poll_until_done(service.url, document["job"]["id"])
        assert final["state"] == "done"
        result = final["result"]
        assert result["best"]["algorithm"] in ("hillclimb", "navathe")
        assert result["best"]["layout"], "layout groups must be present"
        assert len(result["recommendations"]) == 2
        assert result["row_cost"] > 0

    def test_job_listing_paginates(self, service):
        first, _ = _post(service.url, "/v1/compare", TINY_COMPARE)
        _, listing = _get(service.url, "/v1/jobs?offset=0&limit=10")
        assert listing["total"] == 1
        assert listing["jobs"][0]["kind"] == "compare"
        assert "result" not in listing["jobs"][0]

    def test_error_envelopes(self, service):
        base = service.url
        # Unknown job id.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/jobs/compare-doesnotexist")
        assert excinfo.value.code == 404
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["type"] == "NotFound"
        # Unknown path.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v2/nope")
        assert excinfo.value.code == 404
        # Unknown job kind.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/v1/optimize", {})
        assert excinfo.value.code == 404
        # Malformed JSON body.
        request = urllib.request.Request(
            base + "/v1/compare",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["status"] == 400
        # Invalid spec.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/v1/compare", {"grid": "tiny", "algorithms": ["nope"]})
        assert excinfo.value.code == 400
        assert "unknown algorithm" in json.loads(excinfo.value.read())["error"][
            "message"
        ]

    def test_submissions_rejected_while_shutting_down(self, tmp_path):
        service = create_service(port=0, cache_dir=str(tmp_path), workers=1)
        service.serve_in_thread()
        base = service.url
        service.registry.shutdown(wait=True)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/v1/compare", TINY_COMPARE)
        assert excinfo.value.code == 503
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["type"] == "ServiceUnavailable"
        service.stop()


class TestTracing:
    def test_compare_job_writes_a_parseable_trace(self, tmp_path):
        from repro.obs.trace import read_trace

        trace_dir = tmp_path / "traces"
        service = create_service(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            workers=2,
            trace_dir=str(trace_dir),
        )
        service.serve_in_thread()
        try:
            _, document = _post(service.url, "/v1/compare", TINY_COMPARE)
            final = _poll_until_done(service.url, document["job"]["id"])
            assert final["state"] == "done"
            trace_path = final["result"]["trace_path"]
            assert trace_path == str(trace_dir / f"{document['job']['id']}.jsonl")
            _, records = read_trace(trace_path)
            names = {record.get("name") for record in records}
            assert "grid.execute" in names
        finally:
            service.stop()


class TestGracefulShutdown:
    def test_stop_drains_in_flight_jobs(self, tmp_path):
        service = create_service(
            port=0, cache_dir=str(tmp_path / "cache"), workers=1
        )
        service.serve_in_thread()
        # Two distinct jobs on one worker: the second queues behind the first.
        _, first = _post(service.url, "/v1/compare", TINY_COMPARE)
        _, second = _post(
            service.url,
            "/v1/compare",
            {**TINY_COMPARE, "cost_models": ["mainmemory"]},
        )
        assert first["job"]["id"] != second["job"]["id"]
        service.stop(drain=True)
        # Both jobs finished before the workers exited.
        for document in (first, second):
            job = service.registry.get(document["job"]["id"])
            assert job is not None and job.state == "done"
