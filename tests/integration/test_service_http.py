"""End-to-end tests of the advisor HTTP service (repro.service).

The centrepiece is the PR's acceptance scenario: two concurrent HTTP clients
submit an identical tiny grid spec; exactly one computation runs (the obs
counters prove it), both receive identical results via job polling, and a
third submission after a server restart is a pure result-cache hit.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import metrics as obs_metrics
from repro.service import create_service

#: A one-cell grid: cheap enough for CI, real enough to exercise the whole
#: submit -> schedule -> run_grid -> cache -> poll pipeline.
TINY_COMPARE = {
    "algorithms": ["hillclimb"],
    "workloads": ["telemetry:small"],
    "cost_models": ["hdd"],
}


def _post(base: str, path: str, body: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _delete(base: str, path: str):
    request = urllib.request.Request(base + path, method="DELETE")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _poll_until_done(base: str, job_id: str, timeout: float = 120.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, document = _get(base, f"/v1/jobs/{job_id}")
        if document["state"] in ("done", "failed", "cancelled"):
            return document
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} did not finish within {timeout:g}s")


@pytest.fixture
def service(tmp_path):
    instance = create_service(
        port=0, cache_dir=str(tmp_path / "cache"), workers=2
    )
    instance.serve_in_thread()
    yield instance
    instance.stop()


class TestAcceptance:
    def test_concurrent_identical_submissions_one_computation_then_cached_restart(
        self, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        service = create_service(port=0, cache_dir=cache_dir, workers=2)
        service.serve_in_thread()
        base = service.url
        baseline = obs_metrics.registry().snapshot()
        responses = []

        def submit() -> None:
            responses.append(_post(base, "/v1/compare", TINY_COMPARE))

        clients = [threading.Thread(target=submit) for _ in range(2)]
        for client in clients:
            client.start()
        for client in clients:
            client.join()

        assert [status for status, _ in responses] == [202, 202]
        ids = {document["job"]["id"] for _, document in responses}
        assert len(ids) == 1, "identical specs must share one job"
        job_id = ids.pop()
        # Exactly one submission created the job; the other deduped onto it.
        assert sorted(document["deduped"] for _, document in responses) == [
            False,
            True,
        ]

        polled = [_poll_until_done(base, job_id) for _ in range(2)]
        assert all(document["state"] == "done" for document in polled)
        results = [document["result"] for document in polled]
        assert results[0] == results[1]
        assert results[0]["cells"][0]["ok"] is True
        assert results[0]["cache"]["computed"] == 1
        service.stop()

        # The obs counters prove exactly one computation ran for two clients.
        delta = obs_metrics.registry().delta(baseline)["counters"]
        assert delta.get("grid.cells.computed") == 1
        assert delta.get("service.jobs.submitted") == 1
        assert delta.get("service.jobs.deduped") == 1
        assert delta.get("service.jobs.completed") == 1
        assert delta.get("service.http.requests", 0) >= 4

        # Restart: a fresh service over the same cache dir replays the job
        # journal, so the finished job is restored — result included — and a
        # resubmission dedups onto it without touching the grid at all.
        baseline = obs_metrics.registry().snapshot()
        revived = create_service(port=0, cache_dir=cache_dir, workers=2)
        revived.serve_in_thread()
        try:
            _, document = _post(revived.url, "/v1/compare", TINY_COMPARE)
            assert document["deduped"] is True
            final = _poll_until_done(revived.url, document["job"]["id"])
            result = final["result"]
            assert result["cells"][0]["ok"] is True
            assert result["cells"][0]["estimated_cost"] == pytest.approx(
                results[0]["cells"][0]["estimated_cost"]
            )
            # Journal-less restart over the same cache dir: the job is fresh
            # again, but every cell is a pure persistent-cache hit.
            bare = create_service(
                port=0, cache_dir=cache_dir, workers=2, journal=False
            )
            bare.serve_in_thread()
            try:
                _, document = _post(bare.url, "/v1/compare", TINY_COMPARE)
                assert document["deduped"] is False
                final = _poll_until_done(bare.url, document["job"]["id"])
                result = final["result"]
                assert result["cache"]["hits"] == 1
                assert result["cache"]["computed"] == 0
                assert result["cells"][0]["cached"] is True
            finally:
                bare.stop()
        finally:
            revived.stop()
        delta = obs_metrics.registry().delta(baseline)["counters"]
        assert delta.get("grid.cells.computed") is None
        assert delta.get("grid.cache.hits") == 1


class TestEndpoints:
    def test_health_reports_jobs_and_configuration(self, service):
        status, document = _get(service.url, "/health")
        assert status == 200
        assert document["status"] == "ok"
        assert set(document["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }
        assert document["job_workers"] == 2

    def test_recommend_job_end_to_end(self, service):
        _, document = _post(
            service.url,
            "/v1/recommend",
            {"workload": "telemetry:small", "algorithms": ["hillclimb", "navathe"]},
        )
        final = _poll_until_done(service.url, document["job"]["id"])
        assert final["state"] == "done"
        result = final["result"]
        assert result["best"]["algorithm"] in ("hillclimb", "navathe")
        assert result["best"]["layout"], "layout groups must be present"
        assert len(result["recommendations"]) == 2
        assert result["row_cost"] > 0

    def test_job_listing_paginates(self, service):
        first, _ = _post(service.url, "/v1/compare", TINY_COMPARE)
        _, listing = _get(service.url, "/v1/jobs?offset=0&limit=10")
        assert listing["total"] == 1
        assert listing["jobs"][0]["kind"] == "compare"
        assert "result" not in listing["jobs"][0]

    def test_error_envelopes(self, service):
        base = service.url
        # Unknown job id.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/jobs/compare-doesnotexist")
        assert excinfo.value.code == 404
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["type"] == "NotFound"
        # Unknown path.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v2/nope")
        assert excinfo.value.code == 404
        # Unknown job kind.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/v1/optimize", {})
        assert excinfo.value.code == 404
        # Malformed JSON body.
        request = urllib.request.Request(
            base + "/v1/compare",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["status"] == 400
        # Invalid spec.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/v1/compare", {"grid": "tiny", "algorithms": ["nope"]})
        assert excinfo.value.code == 400
        assert "unknown algorithm" in json.loads(excinfo.value.read())["error"][
            "message"
        ]

    def test_submissions_rejected_while_shutting_down(self, tmp_path):
        service = create_service(port=0, cache_dir=str(tmp_path), workers=1)
        service.serve_in_thread()
        base = service.url
        service.registry.shutdown(wait=True)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/v1/compare", TINY_COMPARE)
        assert excinfo.value.code == 503
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["type"] == "ServiceUnavailable"
        service.stop()


class TestRobustnessEndpoints:
    """PR 10: liveness/readiness, backpressure, cancellation, paging 400s."""

    def test_health_live_and_ready_when_idle(self, service):
        status, document = _get(service.url, "/health/live")
        assert status == 200 and document == {"status": "live"}
        status, document = _get(service.url, "/health/ready")
        assert status == 200
        assert document["status"] == "ready"
        assert document["draining"] is False and document["saturated"] is False

    def test_health_reports_journal_and_queue(self, service):
        _, document = _get(service.url, "/health")
        assert document["journal"] is not None
        assert document["journal"]["path"].endswith("service-journal.jsonl")
        assert document["queue"]["max_depth"] is None
        assert document["recovered_jobs"] == 0

    @pytest.mark.parametrize(
        "query", ["offset=-1", "limit=0", "limit=-3", "offset=abc", "limit=1.5"]
    )
    def test_paging_rejects_invalid_values_with_400(self, service, query):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(service.url, f"/v1/jobs?{query}")
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["type"] == "BadRequest"

    def test_saturated_queue_sheds_429_with_retry_after(self, tmp_path):
        from repro.service import faults as service_faults

        service = create_service(
            port=0, cache_dir=str(tmp_path / "cache"), workers=1,
            max_queue_depth=1,
        )
        service.serve_in_thread()
        try:
            # Slow the worker down so the first job pins it while the queue
            # fills (the service threads share this process's environment).
            with service_faults.injected(
                {"job.start": {"kind": "slow", "seconds": 1.0}}
            ):
                _post(service.url, "/v1/compare", TINY_COMPARE)
                _post(service.url, "/v1/compare",
                      {**TINY_COMPARE, "cost_models": ["mainmemory"]})
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(service.url, "/v1/compare",
                          {**TINY_COMPARE, "algorithms": ["navathe"]})
                assert excinfo.value.code == 429
                retry_after = excinfo.value.headers["Retry-After"]
                assert retry_after is not None and int(retry_after) >= 1
                envelope = json.loads(excinfo.value.read())
                assert envelope["error"]["type"] == "TooManyRequests"
                assert envelope["error"]["retry_after"] == int(retry_after)
                # Readiness flips while saturated; liveness does not.
                status, document = _get_allow_error(service.url, "/health/ready")
                assert status == 503 and document["saturated"] is True
                status, _ = _get(service.url, "/health/live")
                assert status == 200
        finally:
            service.stop()

    def test_delete_cancels_queued_job(self, tmp_path):
        from repro.service import faults as service_faults

        service = create_service(
            port=0, cache_dir=str(tmp_path / "cache"), workers=1
        )
        service.serve_in_thread()
        try:
            with service_faults.injected(
                {"job.start": {"kind": "slow", "seconds": 1.0}}
            ):
                _post(service.url, "/v1/compare", TINY_COMPARE)
                _, queued = _post(service.url, "/v1/compare",
                                  {**TINY_COMPARE, "cost_models": ["mainmemory"]})
                queued_id = queued["job"]["id"]
                status, document = _delete(service.url, f"/v1/jobs/{queued_id}")
                assert status == 202 and document["cancelled"] is True
                assert document["job"]["state"] == "cancelled"
                final = _poll_until_done(service.url, queued_id)
                assert final["state"] == "cancelled"
                assert final["result"] is None
        finally:
            service.stop()

    def test_delete_cancels_running_job_cooperatively(self, tmp_path):
        from repro.service import faults as service_faults

        service = create_service(
            port=0, cache_dir=str(tmp_path / "cache"), workers=1
        )
        service.serve_in_thread()
        try:
            # The injected slow fault holds the job at its pre-execution
            # checkpoint; the cancel must land within that window and the
            # job must come out `cancelled`, with nothing cached or served.
            with service_faults.injected(
                {"job.start": {"kind": "slow", "seconds": 1.5}}
            ):
                _, submitted = _post(service.url, "/v1/compare", TINY_COMPARE)
                job_id = submitted["job"]["id"]
                registry_job = service.registry.get(job_id)
                import time as _time
                deadline = _time.monotonic() + 5
                while registry_job.state != "running":
                    assert _time.monotonic() < deadline
                    _time.sleep(0.01)
                status, document = _delete(service.url, f"/v1/jobs/{job_id}")
                assert status == 202 and document["cancelled"] is True
                assert document["job"]["cancel_requested"] is True
                final = _poll_until_done(service.url, job_id)
                assert final["state"] == "cancelled"
                assert final["result"] is None
        finally:
            service.stop()

    def test_delete_unknown_and_finished_jobs(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _delete(service.url, "/v1/jobs/compare-doesnotexist")
        assert excinfo.value.code == 404
        _, submitted = _post(service.url, "/v1/compare", TINY_COMPARE)
        job_id = submitted["job"]["id"]
        final = _poll_until_done(service.url, job_id)
        assert final["state"] == "done"
        status, document = _delete(service.url, f"/v1/jobs/{job_id}")
        assert status == 200 and document["cancelled"] is False
        assert document["job"]["state"] == "done"  # undisturbed

    def test_ready_flips_unready_while_draining(self, tmp_path):
        service = create_service(
            port=0, cache_dir=str(tmp_path / "cache"), workers=1
        )
        service.serve_in_thread()
        stopper = threading.Thread(target=lambda: service.stop(drain=True))
        try:
            _, submitted = _post(service.url, "/v1/compare", TINY_COMPARE)
            stopper.start()
            import time as _time
            deadline = _time.monotonic() + 10
            status = 200
            while _time.monotonic() < deadline:
                try:
                    status, document = _get_allow_error(
                        service.url, "/health/ready"
                    )
                except (urllib.error.URLError, ConnectionError, OSError):
                    break  # socket already closed: drained and gone
                if status == 503 and document["draining"]:
                    break
                _time.sleep(0.01)
            assert status == 503 or service.registry.get(
                submitted["job"]["id"]
            ).finished
        finally:
            stopper.join(timeout=30)


def _get_allow_error(base: str, path: str):
    try:
        return _get(base, path)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestTracing:
    def test_compare_job_writes_a_parseable_trace(self, tmp_path):
        from repro.obs.trace import read_trace

        trace_dir = tmp_path / "traces"
        service = create_service(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            workers=2,
            trace_dir=str(trace_dir),
        )
        service.serve_in_thread()
        try:
            _, document = _post(service.url, "/v1/compare", TINY_COMPARE)
            final = _poll_until_done(service.url, document["job"]["id"])
            assert final["state"] == "done"
            trace_path = final["result"]["trace_path"]
            assert trace_path == str(trace_dir / f"{document['job']['id']}.jsonl")
            _, records = read_trace(trace_path)
            names = {record.get("name") for record in records}
            assert "grid.execute" in names
        finally:
            service.stop()


class TestGracefulShutdown:
    def test_stop_drains_in_flight_jobs(self, tmp_path):
        service = create_service(
            port=0, cache_dir=str(tmp_path / "cache"), workers=1
        )
        service.serve_in_thread()
        # Two distinct jobs on one worker: the second queues behind the first.
        _, first = _post(service.url, "/v1/compare", TINY_COMPARE)
        _, second = _post(
            service.url,
            "/v1/compare",
            {**TINY_COMPARE, "cost_models": ["mainmemory"]},
        )
        assert first["job"]["id"] != second["job"]["id"]
        service.stop(drain=True)
        # Both jobs finished before the workers exited.
        for document in (first, second):
            job = service.registry.get(document["job"]["id"])
            assert job is not None and job.state == "done"
