"""Integration tests: the analytical HDD cost model versus the storage simulator.

The simulator counts blocks and seeks by actually walking the column-group
files with a shared buffer; the analytical model predicts the same quantities
with closed formulas.  They should agree closely (identical block counts; the
seek counts may differ by the final partial refill per partition).
"""

import pytest

from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.cost.hdd import HDDCostModel
from repro.storage.engine import SimulatedDisk, StorageEngine
from repro.workload import tpch


@pytest.fixture(scope="module")
def workload():
    return tpch.tpch_workload("partsupp", scale_factor=1)


LAYOUT_BUILDERS = {
    "row": lambda schema: row_partitioning(schema),
    "column": lambda schema: column_partitioning(schema),
    "grouped": lambda schema: Partitioning(schema, [[0, 1], [2, 3], [4]]),
}


@pytest.mark.parametrize("layout_name", sorted(LAYOUT_BUILDERS))
class TestModelMatchesSimulator:
    def test_block_counts_agree(self, workload, layout_name):
        layout = LAYOUT_BUILDERS[layout_name](workload.schema)
        disk = DiskCharacteristics()
        model = HDDCostModel(disk)
        engine = StorageEngine(layout, disk=SimulatedDisk(disk))
        for query in workload:
            referenced = layout.referenced_partitions(query)
            predicted_blocks = sum(
                model.blocks_on_disk(partition, layout) for partition in referenced
            )
            simulated = engine.scan_query(query)
            assert simulated.blocks_read == predicted_blocks

    def test_elapsed_time_close_to_predicted_cost(self, workload, layout_name):
        layout = LAYOUT_BUILDERS[layout_name](workload.schema)
        disk = DiskCharacteristics(buffer_size=1 * MB)
        model = HDDCostModel(disk)
        engine = StorageEngine(layout, disk=SimulatedDisk(disk))
        for query in workload:
            predicted = model.query_cost(query, layout)
            simulated = engine.scan_query(query).io_seconds
            assert simulated == pytest.approx(predicted, rel=0.15)

    def test_workload_totals_close(self, workload, layout_name):
        layout = LAYOUT_BUILDERS[layout_name](workload.schema)
        disk = DiskCharacteristics()
        model = HDDCostModel(disk)
        engine = StorageEngine(layout, disk=SimulatedDisk(disk))
        predicted = model.workload_cost(workload, layout)
        simulated = engine.scan_workload(workload).io_seconds
        assert simulated == pytest.approx(predicted, rel=0.15)


#: Buffer sweep: from buffers small enough that every partition refills many
#: times, through the paper's 8 MB default, to one that swallows whole files.
SWEEP_BUFFERS = (64 * KB, 256 * KB, 1 * MB, 8 * MB, 64 * MB)

#: Partition-count sweep over partsupp's 5 attributes: 1 (row) to 5 (column).
SWEEP_LAYOUTS = {
    1: [[0, 1, 2, 3, 4]],
    2: [[0, 1, 4], [2, 3]],
    3: [[0, 1], [2, 3], [4]],
    4: [[0], [1], [2, 3], [4]],
    5: [[0], [1], [2], [3], [4]],
}


@pytest.mark.parametrize("buffer_size", SWEEP_BUFFERS)
@pytest.mark.parametrize("partition_count", sorted(SWEEP_LAYOUTS))
class TestSimulationAgreementSweep:
    """Regression: simulated elapsed time tracks the analytical cost tightly.

    The simulator and the model share their arithmetic building blocks but
    derive seek counts by different mechanisms (an actual buffered walk vs.
    closed formulas), so agreement here pins down the refill/seek accounting
    across the whole (buffer size x partition count) plane.  The bound is
    float-accumulation tight — any formula drift fails loudly.
    """

    REL_TOLERANCE = 1e-9

    def test_engine_elapsed_matches_query_cost(
        self, workload, buffer_size, partition_count
    ):
        disk = DiskCharacteristics(buffer_size=buffer_size)
        layout = Partitioning(workload.schema, SWEEP_LAYOUTS[partition_count])
        model = HDDCostModel(disk)
        engine = StorageEngine(layout, disk=SimulatedDisk(disk))
        for query in workload:
            predicted = model.query_cost(query, layout)
            simulated = engine.scan_query(query).io_seconds
            assert simulated == pytest.approx(predicted, rel=self.REL_TOLERANCE)

    def test_engine_workload_total_matches_workload_cost(
        self, workload, buffer_size, partition_count
    ):
        disk = DiskCharacteristics(buffer_size=buffer_size)
        layout = Partitioning(workload.schema, SWEEP_LAYOUTS[partition_count])
        model = HDDCostModel(disk)
        engine = StorageEngine(layout, disk=SimulatedDisk(disk))
        predicted = model.workload_cost(workload, layout)
        simulated = engine.scan_workload(workload).io_seconds
        assert simulated == pytest.approx(predicted, rel=self.REL_TOLERANCE)


class TestRelativeOrderings:
    def test_simulator_agrees_on_row_vs_column_ordering(self, workload):
        disk = DiskCharacteristics()
        row_engine = StorageEngine(row_partitioning(workload.schema), disk=SimulatedDisk(disk))
        column_engine = StorageEngine(
            column_partitioning(workload.schema), disk=SimulatedDisk(disk)
        )
        row_time = row_engine.scan_workload(workload).elapsed_seconds
        column_time = column_engine.scan_workload(workload).elapsed_seconds
        assert row_time > column_time

    def test_simulator_sees_the_buffer_size_effect(self, workload):
        """Lesson 2 holds in the simulator too, not just in the formulas."""
        layout = column_partitioning(workload.schema)
        small = StorageEngine(
            layout, disk=SimulatedDisk(DiskCharacteristics(buffer_size=64 * KB))
        )
        large = StorageEngine(
            layout, disk=SimulatedDisk(DiskCharacteristics(buffer_size=64 * MB))
        )
        assert (
            small.scan_workload(workload).elapsed_seconds
            > large.scan_workload(workload).elapsed_seconds
        )
