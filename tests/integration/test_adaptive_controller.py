"""Integration tests for the adaptive online partitioning subsystem.

The headline acceptance criterion of the dynamic-workload scenario: on a
seeded drifting synthetic stream, the drift-triggered, pay-off-gated
adaptive controller achieves lower cumulative (scan + re-organisation +
optimisation) cost than both the static hindsight-at-start layout and the
reorg-every-query policy.  All scan and creation costs are simulated
(deterministic); only the small optimisation wall-clock terms vary between
runs, and the margins are orders of magnitude larger.
"""

import pytest

from repro.core.advisor import LayoutAdvisor
from repro.cost.hdd import HDDCostModel
from repro.experiments.adaptive import (
    ADAPTIVE_DISK,
    DEFAULT_WINDOW,
    adaptive_policy_comparison,
    default_drifting_stream,
    run_policies,
)
from repro.online import AdaptiveAdvisor, run_policy


@pytest.fixture(scope="module")
def stream():
    return default_drifting_stream()


@pytest.fixture(scope="module")
def model():
    return HDDCostModel(ADAPTIVE_DISK)


@pytest.fixture(scope="module")
def results(stream, model):
    runs = run_policies(stream, model, window=DEFAULT_WINDOW)
    return {result.policy: result for result in runs}


class TestAdaptiveBeatsTheExtremes:
    def test_beats_static_hindsight(self, results):
        adaptive = results["adaptive"]
        hindsight = results["static-hindsight"]
        assert adaptive.total_cost < hindsight.total_cost

    def test_beats_reorg_every_query(self, results):
        adaptive = results["adaptive"]
        eager = results["reorg-every-query"]
        assert adaptive.total_cost < eager.total_cost

    def test_adaptive_actually_adapts(self, results):
        adaptive = results["adaptive"]
        # It re-partitioned at least once per drift phase boundary is not
        # guaranteed, but it must have reorganised more than the static
        # baseline and far less than the eager one.
        assert adaptive.reorg_count > 1
        assert adaptive.reorg_count < results["reorg-every-query"].reorg_count

    def test_eager_policy_pays_creation_churn(self, results):
        eager = results["reorg-every-query"]
        adaptive = results["adaptive"]
        assert eager.creation_cost > adaptive.creation_cost

    def test_accounting_adds_up(self, results):
        for result in results.values():
            assert result.total_cost == pytest.approx(
                result.scan_cost + result.creation_cost + result.optimization_time
            )
            assert result.scan_cost > 0.0
            assert result.arrivals == 400


class TestAdaptiveReportDriver:
    def test_report_rows_shape(self, stream, model):
        rows = adaptive_policy_comparison(stream, model)
        assert [row["policy"] for row in rows] == [
            "static-hindsight",
            "o2p-incremental",
            "adaptive",
            "reorg-every-query",
        ]
        by_policy = {row["policy"]: row for row in rows}
        assert (
            by_policy["adaptive"]["total_cost_s"]
            < by_policy["static-hindsight"]["total_cost_s"]
        )
        assert (
            by_policy["adaptive"]["total_cost_s"]
            < by_policy["reorg-every-query"]["total_cost_s"]
        )
        for row in rows:
            assert row["total_cost_s"] == pytest.approx(
                row["scan_cost_s"] + row["creation_cost_s"] + row["optimization_time_s"]
            )


class TestDeterminism:
    def test_simulated_costs_reproducible(self, stream, model):
        """Scan and creation costs are fully simulated: two runs of the same
        seeded stream produce identical numbers (wall-clock optimisation
        time is the only varying term and is accounted separately)."""
        first = run_policy(stream, AdaptiveAdvisor(model, window=DEFAULT_WINDOW), model)
        second = run_policy(stream, AdaptiveAdvisor(model, window=DEFAULT_WINDOW), model)
        assert first.scan_cost == second.scan_cost
        assert first.creation_cost == second.creation_cost
        assert [e.arrival for e in first.events] == [e.arrival for e in second.events]


class TestPolicyReuse:
    def test_default_policy_is_reusable_across_streams(self, stream, model):
        policy = AdaptiveAdvisor(model, window=DEFAULT_WINDOW)
        first = run_policy(stream, policy, model)
        second = run_policy(stream, policy, model)
        # start() rebuilds stats/detector, so the second run is identical.
        assert second.scan_cost == first.scan_cost
        assert second.creation_cost == first.creation_cost

    def test_user_supplied_stats_cannot_be_reused(self, stream, model):
        from repro.online import SlidingWindowStats

        policy = AdaptiveAdvisor(
            model, stats=SlidingWindowStats(stream.schema, DEFAULT_WINDOW)
        )
        run_policy(stream, policy, model)
        with pytest.raises(ValueError):
            run_policy(stream, policy, model)


class TestAdvisorOnlineEntryPoint:
    def test_recommend_online_runs_controller(self, stream, model):
        advisor = LayoutAdvisor(cost_model=model)
        result = advisor.recommend_online(stream, window=DEFAULT_WINDOW)
        assert result.policy == "adaptive"
        assert result.arrivals == len(stream)
        assert result.final_layout is not None
        # The controller moved off the initial row layout on this stream.
        assert result.final_layout.partition_count > 1
